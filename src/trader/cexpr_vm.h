// Bytecode VM for trader constraint and scoring expressions.
//
// Constraint ASTs and scoring expressions (trader/cexpr_ir.h) compile into a
// small flat register program so the offer store's selection loop does no
// tree walking, no per-offer name hashing, and no allocation:
//
//   * literals are pre-resolved into a constant pool at compile time
//     (including bare identifiers that can never be attributes — see below);
//   * every referenced attribute gets a *slot*; a per-offer bind step does
//     exactly one AttrMap::find per slot and the instructions address slots
//     by index;
//   * boolean code is an accumulator machine with short-circuit jumps; score
//     code is a flat double-register machine.
//
// Semantics are bit-for-bit those of the tree-walking evaluators in
// constraint.cpp (differential tests enforce this), including the forgiving
// corner cases: identifier fallback to a text literal, missing/mismatched
// kinds comparing false, and the NaN trichotomy quirk (NaN==x, NaN<=x and
// NaN>=x all hold because the three-way compare yields 0).
//
// Identifier folding: when compiling a *filter* for locally stored offers,
// an identifier operand whose name no registered service type has ever
// declared can be folded to a text literal outright — the type manager
// rejects offers carrying undeclared attributes, so per-offer resolution
// could never find it.  Folded programs are tagged with the type-layout
// epoch and recompiled when it moves (ConstraintCache handles this).  Score
// programs are never folded: they also score offers returned by *remote*
// traders, whose types this process may not know.
//
// Compilation is best-effort: a program that exceeds the (generous) encoding
// limits compiles to nullptr and callers fall back to the tree-walking
// evaluator, so correctness never depends on compilability.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "trader/attributes.h"
#include "trader/cexpr_ir.h"

namespace cosm::trader::cexpr {

/// A bound operand value: what resolve_operand produces, with views instead
/// of owned strings.  Slots bind per offer; constants bind at compile time.
struct RtVal {
  enum class Tag : std::uint8_t { Missing, Number, Text, Boolean };
  Tag tag = Tag::Missing;
  /// Attribute present on the offer (drives `exists`; structured attributes
  /// are present but Missing-tagged, i.e. they exist yet compare false).
  bool present = false;
  bool boolean = false;
  double number = 0.0;
  /// Into the offer's value storage or the program's own string pool —
  /// valid for the bind's lifetime / the program's lifetime respectively.
  std::string_view text;
};

enum class Op : std::uint8_t {
  // ---- boolean (accumulator) ----
  ConstBool,     // acc = a
  Exists,        // acc = bind[a].present
  Cmp,           // acc = compare(CmpOp(a), ref b, ref c)
  In,            // acc = any(compare(Eq, ref a, ref pool[d..d+b)))
  Not,           // acc = !acc
  JumpIfFalse,   // if (!acc) pc = d
  JumpIfTrue,    // if (acc) pc = d
  // ---- score (double registers) ----
  LoadConst,     // reg[a] = dconst[d]
  LoadAttr,      // reg[a] = bind[b] as number, else NaN
  Neg,           // reg[a] = -reg[b]
  Inv,           // reg[a] = 1.0 / reg[b]
  Abs,           // reg[a] = fabs(reg[b])
  Sqrt,          // reg[a] = sqrt(reg[b])
  Log,           // reg[a] = log(reg[b])
  Add,           // reg[a] = reg[b] + reg[c]
  Sub,           // reg[a] = reg[b] - reg[c]
  Mul,           // reg[a] = reg[b] * reg[c]
  Div,           // reg[a] = reg[b] / reg[c]
  Min,           // reg[a] = NaN-propagating min(reg[b], reg[c])
  Max,           // reg[a] = NaN-propagating max(reg[b], reg[c])
  PenaltySub,    // if (!acc) reg[a] -= dconst[d]
};

struct Instr {
  Op op;
  std::uint8_t a = 0, b = 0, c = 0;
  std::uint16_t d = 0;
};

/// Operand references in Cmp/In pack "constant or slot" into one byte:
/// high bit set = attribute slot, clear = constant-pool index.
constexpr std::uint8_t kSlotBit = 0x80;
constexpr std::size_t kMaxConsts = 128;
constexpr std::size_t kMaxSlots = 128;
constexpr std::size_t kMaxRegs = 256;
constexpr std::size_t kMaxCode = 65535;
constexpr std::size_t kMaxPool = 65535;

struct Program {
  Program() = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  std::vector<Instr> code;
  /// Pre-resolved literal operands (text views into text_pool, fixed up by
  /// finalize() once the pool stops growing).
  std::vector<RtVal> consts;
  std::vector<std::string> text_pool;
  std::vector<std::uint32_t> const_text_idx;  // consts[i].text = text_pool[idx]
  /// Attribute slots: bind_offer does one find() per entry.
  std::vector<std::string> attrs;
  /// In-set member operand refs, addressed by Instr::d spans.
  std::vector<std::uint8_t> opnd_pool;
  std::vector<double> dconsts;
  std::uint16_t num_regs = 0;

  /// Patch const text views after all pool strings are in place (string
  /// buffers move while the pool vector grows).
  void finalize();
};

using ProgramPtr = std::shared_ptr<const Program>;

/// Per-thread evaluation scratch, reused across offers (no allocation in
/// the loop once warmed to the program's sizes).
struct Scratch {
  std::vector<RtVal> bind;
  std::vector<double> regs;
};

/// Identifier-folding environment for compile_filter.  `declared` is the
/// cumulative set of attribute names any service type has ever declared;
/// null disables folding (always valid, just less constant-folded).
struct FoldEnv {
  const std::unordered_set<std::string>* declared = nullptr;
};

/// Compile a constraint AST (null root = always true) into a filter
/// program.  Returns nullptr when the expression exceeds encoding limits —
/// fall back to Constraint::eval.
ProgramPtr compile_filter(const detail::Node* root, const FoldEnv& env);

/// Compile a scoring expression.  Never identifier-folds (remote offers).
/// Returns nullptr when the expression exceeds encoding limits — fall back
/// to detail::eval_score.
ProgramPtr compile_score(const detail::ScoreIr& ir);

/// Resolve the program's attribute slots against one offer's attributes:
/// one map lookup per referenced name.  Must precede eval_* for that offer.
void bind_offer(const Program& p, const AttrMap& attrs, Scratch& s);

/// Run a filter program; result is the boolean accumulator.
bool eval_filter(const Program& p, const Scratch& s);

/// Run a score program; result is register 0 (NaN when any referenced
/// attribute is missing/non-numeric — collapse with detail::score_rank_key).
double eval_score(const Program& p, Scratch& s);

// ---- score-bound analysis (top-k pruning; operates on the IR) ----

/// Attribute value range across a candidate population.  `empty` means no
/// candidate carries a numeric value for the attribute.
struct AttrRange {
  double lo = 0.0, hi = 0.0;
  bool empty = true;
};

/// Upper bound of score_rank_key(eval_score(ir, attrs)) over every offer
/// population where each referenced attribute's numeric values lie within
/// the range reported by `range_of` (and offers missing a referenced
/// attribute score NaN -> -inf, so they never raise the bound).  Always
/// conservative: returns +inf when the expression defeats interval
/// analysis.  A bucket whose bound is strictly below the current k-th key
/// cannot contribute and may be skipped.
double score_upper_bound(
    const detail::ScoreIr& ir,
    const std::function<AttrRange(const std::string&)>& range_of);

/// score == a * attr + b detection for ordered-index-directed walks.  Valid
/// only when the expression references exactly one attribute exactly once,
/// combines it with finite constants through +,-,*,/,negation (no
/// functions, no penalties), and the slope is finite and nonzero — under
/// those conditions the *rounded* IEEE evaluation is weakly monotone in the
/// attribute over [-inf, +inf], so walking the ordered index from the
/// favourable end admits an early stop once the heap is full and the
/// current score falls strictly below the k-th key.
struct AffineForm {
  bool valid = false;
  std::string attr;
  double a = 0.0, b = 0.0;
};

AffineForm affine_of(const detail::ScoreIr& ir);

}  // namespace cosm::trader::cexpr
