// Differential and concurrency tests for the indexed offer store.
//
// The indexed matcher (per-type buckets + secondary indexes + delta tail)
// must return exactly what a naive "evaluate the constraint on every
// type-conforming offer, in export order" scan returns — including offers
// with dynamic attributes, federated merges, and every planner trap we
// know of (optional attributes, bare-identifier collisions with schema
// names, flipped operands, conjuncts hidden under ||/!).  The randomized
// test drives both engines over the same offer population and compares.

#include "trader/offer_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "trader/trader.h"

namespace cosm::trader {
namespace {

using sidl::TypeDesc;
using wire::Value;

// ---------------------------------------------------------------------------
// Shared fixture material: a two-level type hierarchy with a float, string,
// int and bool required attribute (one per index key kind), an optional
// attribute (index-ineligible), and a subtype adding its own required attr.

ServiceType sensor_type() {
  ServiceType t;
  t.name = "SensorService";
  t.attributes = {
      {"Price", TypeDesc::float_(), true},
      {"Region", TypeDesc::string_(), true},
      {"Capacity", TypeDesc::int_(), true},
      {"Active", TypeDesc::bool_(), true},
      {"Note", TypeDesc::string_(), false},
  };
  return t;
}

ServiceType edge_sensor_type() {
  ServiceType t;
  t.name = "EdgeSensorService";
  t.supertype = "SensorService";
  t.attributes = {{"Tier", TypeDesc::int_(), true}};
  return t;
}

sidl::ServiceRef mk_ref(std::uint64_t n) {
  return {"ref-" + std::to_string(n), "inproc://host", "SensorService"};
}

/// Deterministic stand-in for the runtime's RPC dynamic-property fetch.
double dynamic_price_of(const sidl::ServiceRef& ref) {
  std::uint64_t n = std::stoull(ref.id.substr(ref.id.find('-') + 1));
  return static_cast<double>((n * 37) % 100);
}

Value test_fetcher(const sidl::ServiceRef& ref, const std::string& operation) {
  if (operation == "price_fail") throw RpcError("exporter down");
  EXPECT_EQ(operation, "price_now");
  return Value::real(dynamic_price_of(ref));
}

// ---------------------------------------------------------------------------
// Naive reference model: offers mirrored in export order, matched by
// evaluating the full constraint on every type-conforming offer.

struct MirrorOffer {
  std::string id;
  std::string type;
  AttrMap attrs;     // static attributes as exported / last modified
  AttrMap resolved;  // attrs + fetched dynamic values (== attrs when static)
  bool dynamic = false;
  bool dynamic_fails = false;
};

bool naive_conforms(const std::string& offer_type, const std::string& requested) {
  return offer_type == requested ||
         (requested == "SensorService" && offer_type == "EdgeSensorService");
}

std::vector<std::string> naive_import(const std::vector<MirrorOffer>& mirror,
                                      const std::string& type,
                                      const std::string& constraint_text) {
  Constraint constraint = Constraint::parse(constraint_text);
  std::vector<std::string> ids;
  for (const auto& offer : mirror) {
    if (!naive_conforms(offer.type, type)) continue;
    if (offer.dynamic && offer.dynamic_fails) continue;
    if (constraint.eval(offer.resolved)) ids.push_back(offer.id);
  }
  return ids;
}

std::vector<std::string> ids_of(const std::vector<Offer>& offers) {
  std::vector<std::string> ids;
  ids.reserve(offers.size());
  for (const auto& offer : offers) ids.push_back(offer.id);
  return ids;
}

const std::vector<std::string> kRegions = {"east", "west", "north", "south"};
const std::vector<std::string> kNotes = {"hello", "world"};

/// Random offer population with interleaved withdraw/modify, mirrored.
void populate(Trader& trader, std::vector<MirrorOffer>& mirror, Rng& rng,
              std::size_t count) {
  std::uint64_t ref_counter = mirror.size() * 1000 + 7;
  for (std::size_t i = 0; i < count; ++i) {
    bool sub = rng.chance(0.3);
    const std::string type = sub ? "EdgeSensorService" : "SensorService";
    AttrMap attrs;
    attrs["Region"] = Value::string(rng.pick(kRegions));
    attrs["Capacity"] = Value::integer(rng.range(0, 1000));
    attrs["Active"] = Value::boolean(rng.chance(0.5));
    if (rng.chance(0.3)) attrs["Note"] = Value::string(rng.pick(kNotes));
    if (sub) attrs["Tier"] = Value::integer(rng.range(0, 4));

    MirrorOffer mirrored;
    mirrored.type = type;
    mirrored.dynamic = rng.chance(0.2);
    mirrored.dynamic_fails = mirrored.dynamic && rng.chance(0.25);
    sidl::ServiceRef ref = mk_ref(ref_counter++);
    if (mirrored.dynamic) {
      const std::string op = mirrored.dynamic_fails ? "price_fail" : "price_now";
      mirrored.id = trader.export_offer(type, ref, attrs, {{"Price", op}});
      mirrored.resolved = attrs;
      mirrored.resolved["Price"] = Value::real(dynamic_price_of(ref));
    } else {
      attrs["Price"] = Value::real(static_cast<double>(rng.range(0, 1000)) / 10.0);
      mirrored.id = trader.export_offer(type, ref, attrs);
      mirrored.resolved = attrs;
    }
    mirrored.attrs = attrs;
    mirror.push_back(std::move(mirrored));

    if (!mirror.empty() && rng.chance(0.08)) {
      std::size_t victim = rng.below(mirror.size());
      trader.withdraw(mirror[victim].id);
      mirror.erase(mirror.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    if (!mirror.empty() && rng.chance(0.08)) {
      std::size_t victim = rng.below(mirror.size());
      MirrorOffer& target = mirror[victim];
      if (!target.dynamic) {
        target.attrs["Price"] =
            Value::real(static_cast<double>(rng.range(0, 1000)) / 10.0);
        target.attrs["Region"] = Value::string(rng.pick(kRegions));
        trader.modify(target.id, target.attrs);
        target.resolved = target.attrs;
      }
    }
  }
}

/// Constraints covering every planner path and trap:
///  - eq/range conjuncts the indexes can serve,
///  - optional attribute subjects (ineligible: not in required_attrs),
///  - bare-identifier keys colliding with schema names (Region == Capacity),
///  - flipped operands, ||/! sub-exprs (no top-level hints), in-sets,
///  - attr-vs-attr comparisons, subtype-only attributes, empty constraint.
const std::vector<std::string> kConstraints = {
    "",
    "Region == east && Price < 50",
    "Price >= 10 && Price <= 90",
    "Capacity > 500",
    "Region in { east, west }",
    "exists Note",
    "Note == hello || Price < 20",
    "Active == true && Region != north",
    "Tier == 2",
    "Price < Capacity",
    "Region == Capacity",
    "east == Region",
    "Note == hello",
    "Price == 50",
    "Active == false",
    "!(Region == east)",
    "Region == east || Region == west",
    "50 > Price && Region == west",
};

void expect_differential(Trader& trader, const std::vector<MirrorOffer>& mirror,
                         const std::string& label) {
  for (const std::string& type : {std::string("SensorService"),
                                  std::string("EdgeSensorService")}) {
    for (const std::string& text : kConstraints) {
      SCOPED_TRACE(label + " type=" + type + " constraint='" + text + "'");
      ImportRequest request;
      request.service_type = type;
      request.constraint = text;
      std::vector<Offer> got = trader.import(request);
      EXPECT_EQ(ids_of(got), naive_import(mirror, type, text));
      // Importers must see the values that matched (fetched ones included).
      for (const auto& offer : got) {
        for (const auto& mirrored : mirror) {
          if (mirrored.id == offer.id) {
            EXPECT_EQ(offer.attributes, mirrored.resolved);
          }
        }
      }
    }
  }
}

TEST(TraderStoreDifferential, IndexedMatchesNaiveScan) {
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    Trader trader{"diff"};
    trader.types().add(sensor_type());
    trader.types().add(edge_sensor_type());
    trader.set_dynamic_fetcher(test_fetcher);

    std::vector<MirrorOffer> mirror;
    populate(trader, mirror, rng, 300);
    ASSERT_EQ(trader.offer_count(), mirror.size());

    expect_differential(trader, mirror, "indexed");

    // The linear-scan safety valve must agree bit-for-bit too.
    trader.set_tuning({.enable_indexes = false});
    expect_differential(trader, mirror, "scan");
    trader.set_tuning({.enable_indexes = true});

    // More churn after the first comparison pass, then compare again, so
    // tombstones/delta merges from withdraw+modify are exercised both ways.
    populate(trader, mirror, rng, 150);
    expect_differential(trader, mirror, "indexed-after-churn");
  }
}

TEST(TraderStoreDifferential, FederatedMergeMatchesNaive) {
  Rng rng(7);
  Trader local{"ta"};
  Trader remote{"tb"};
  for (Trader* trader : {&local, &remote}) {
    trader->types().add(sensor_type());
    trader->types().add(edge_sensor_type());
    trader->set_dynamic_fetcher(test_fetcher);
  }
  std::vector<MirrorOffer> local_mirror;
  std::vector<MirrorOffer> remote_mirror;
  populate(local, local_mirror, rng, 120);
  populate(remote, remote_mirror, rng, 120);
  local.link("tb", std::make_shared<LocalTraderGateway>(remote));

  for (const std::string& text : kConstraints) {
    SCOPED_TRACE("constraint='" + text + "'");
    ImportRequest request;
    request.service_type = "SensorService";
    request.constraint = text;
    request.hop_limit = 1;
    ImportResult result = local.import_ex(request);
    EXPECT_FALSE(result.degraded());
    // Merge order: local offers first, then link results, dedup by id
    // (ids are globally unique here, so it is plain concatenation).
    std::vector<std::string> expected =
        naive_import(local_mirror, "SensorService", text);
    for (std::string& id : naive_import(remote_mirror, "SensorService", text)) {
      expected.push_back(std::move(id));
    }
    EXPECT_EQ(ids_of(result.offers), expected);
  }
  // The forwarded constraint text is byte-identical, so the remote trader's
  // compiled-constraint cache serves repeats of the same federated import.
  std::uint64_t misses_before = remote.constraint_cache_misses();
  ImportRequest repeat;
  repeat.service_type = "SensorService";
  repeat.constraint = "Region == east && Price < 50";
  repeat.hop_limit = 1;
  local.import_ex(repeat);
  local.import_ex(repeat);
  EXPECT_EQ(remote.constraint_cache_misses(), misses_before);
  EXPECT_GE(remote.constraint_cache_hits(), 2u);
}

// ---------------------------------------------------------------------------
// Index effectiveness: narrowing shows up in the instrumentation, and the
// pre-index metric (offers_evaluated) keeps its historical meaning.

TEST(TraderIndexing, NarrowingShrinksScanAndCacheServesRepeats) {
  Trader trader{"idx"};
  trader.types().add(sensor_type());
  for (int i = 0; i < 400; ++i) {
    AttrMap attrs;
    attrs["Price"] = Value::real(static_cast<double>(i % 100));
    attrs["Region"] = Value::string(kRegions[i % kRegions.size()]);
    attrs["Capacity"] = Value::integer(i);
    attrs["Active"] = Value::boolean(i % 2 == 0);
    trader.export_offer("SensorService", mk_ref(static_cast<std::uint64_t>(i)),
                        attrs);
  }

  ImportRequest request;
  request.service_type = "SensorService";
  request.constraint = "Region == east && Price < 10";
  std::vector<Offer> first = trader.import(request);
  EXPECT_EQ(trader.offers_evaluated(), 400u);  // type-conforming candidates
  std::uint64_t narrowed = trader.offers_scanned();
  EXPECT_LT(narrowed, 200u);  // far fewer actually evaluated
  EXPECT_GT(trader.index_lookups(), 0u);
  EXPECT_EQ(trader.constraint_cache_misses(), 1u);

  std::vector<Offer> second = trader.import(request);
  EXPECT_EQ(ids_of(second), ids_of(first));
  EXPECT_EQ(trader.constraint_cache_hits(), 1u);

  // With indexes off the same import degenerates to the full bucket scan.
  trader.set_tuning({.enable_indexes = false});
  std::uint64_t scanned_before = trader.offers_scanned();
  std::vector<Offer> scanned = trader.import(request);
  EXPECT_EQ(ids_of(scanned), ids_of(first));
  EXPECT_EQ(trader.offers_scanned() - scanned_before, 400u);
}

// ---------------------------------------------------------------------------
// OfferStore unit behaviour: O(1) withdraw via tombstones, replace keeping
// export order, delta merges rebuilding the index.

std::vector<AttributeDef> sensor_schema() {
  return sensor_type().attributes;
}

OfferPtr store_offer(std::uint64_t n, double price, const std::string& region) {
  Offer offer;
  offer.id = "o" + std::to_string(n);
  offer.service_type = "SensorService";
  offer.ref = mk_ref(n);
  offer.attributes = {{"Price", Value::real(price)},
                      {"Region", Value::string(region)},
                      {"Capacity", Value::integer(static_cast<std::int64_t>(n))},
                      {"Active", Value::boolean(true)}};
  return std::make_shared<const Offer>(std::move(offer));
}

TEST(OfferStore, ReplaceKeepsExportOrderAndEraseTombstones) {
  OfferStore store;
  auto schema = sensor_schema();
  for (std::uint64_t n = 0; n < 3; ++n) {
    store.insert(store_offer(n, 10.0 * static_cast<double>(n + 1), "east"),
                 schema);
  }
  ASSERT_TRUE(store.replace("o1", store_offer(1, 99.0, "west")));
  std::vector<StoredOffer> all = store.collect_all({"SensorService"});
  ASSERT_EQ(all.size(), 3u);
  std::sort(all.begin(), all.end(),
            [](const StoredOffer& a, const StoredOffer& b) { return a.seq < b.seq; });
  EXPECT_EQ(all[1].offer->id, "o1");  // replace kept its slot in the order
  EXPECT_DOUBLE_EQ(all[1].offer->attributes.at("Price").as_real(), 99.0);

  EXPECT_TRUE(store.erase("o0"));
  EXPECT_FALSE(store.erase("o0"));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.find("o0"), nullptr);
  EXPECT_NE(store.find("o2"), nullptr);
  EXPECT_FALSE(store.replace("o0", store_offer(0, 1.0, "east")));
}

TEST(OfferStore, DeltaMergesBuildIndexesAndNarrowLookups) {
  OfferStore store;
  auto schema = sensor_schema();
  for (std::uint64_t n = 0; n < 200; ++n) {
    store.insert(store_offer(n, static_cast<double>(n % 10),
                             kRegions[n % kRegions.size()]),
                 schema);
  }
  EXPECT_GE(store.base_rebuilds(), 1u);  // delta outgrew its threshold

  Constraint constraint = Constraint::parse("Price == 5");
  MatchStats stats;
  std::vector<StoredOffer> candidates =
      store.collect({"SensorService"}, constraint, &stats);
  EXPECT_TRUE(stats.index_used);
  EXPECT_EQ(stats.type_candidates, 200u);
  EXPECT_LT(stats.scanned, 100u);  // equality posting + unindexed delta tail
  EXPECT_GT(store.index_lookups(), 0u);
  std::size_t matches = 0;
  for (const auto& candidate : candidates) {
    if (constraint.eval(candidate.offer->attributes)) ++matches;
  }
  EXPECT_EQ(matches, 20u);

  std::size_t swept = store.erase_if([](const Offer& offer) {
    return offer.attributes.at("Capacity").as_int() < 100;
  });
  EXPECT_EQ(swept, 100u);
  EXPECT_EQ(store.size(), 100u);
  EXPECT_EQ(store.collect_all({"SensorService"}).size(), 100u);
}

// ---------------------------------------------------------------------------
// Compiled-constraint extraction and the LRU cache.

TEST(ConstraintHints, ExtractedFromTopLevelConjunctsOnly) {
  Constraint c = Constraint::parse("Price < 50 && Region == east && Active == true");
  // ident == ident emits both orientations (either side may be the
  // attribute in a given bucket), so Region == east contributes two hints.
  ASSERT_EQ(c.index_hints().size(), 4u);
  EXPECT_EQ(c.index_hints()[0].kind, IndexHint::Kind::Range);
  EXPECT_EQ(c.index_hints()[0].attr, "Price");
  EXPECT_EQ(c.index_hints()[0].bound, IndexHint::Bound::Lt);
  EXPECT_DOUBLE_EQ(c.index_hints()[0].number, 50.0);
  EXPECT_EQ(c.index_hints()[1].kind, IndexHint::Kind::Equality);
  EXPECT_EQ(c.index_hints()[1].attr, "Region");
  EXPECT_EQ(c.index_hints()[1].key_kind, IndexHint::KeyKind::Text);
  EXPECT_TRUE(c.index_hints()[1].text_is_bare_ident);
  EXPECT_EQ(c.index_hints()[2].attr, "east");
  EXPECT_EQ(c.index_hints()[2].text, "Region");
  EXPECT_EQ(c.index_hints()[3].key_kind, IndexHint::KeyKind::Boolean);
  EXPECT_TRUE(c.index_hints()[3].boolean);

  // Flipped operands normalise to subject-on-the-left.
  Constraint flipped = Constraint::parse("50 > Price");
  ASSERT_EQ(flipped.index_hints().size(), 1u);
  EXPECT_EQ(flipped.index_hints()[0].attr, "Price");
  EXPECT_EQ(flipped.index_hints()[0].bound, IndexHint::Bound::Lt);

  // Quoted string keys are not bare identifiers.
  Constraint quoted = Constraint::parse("Region == \"east\"");
  ASSERT_EQ(quoted.index_hints().size(), 1u);
  EXPECT_FALSE(quoted.index_hints()[0].text_is_bare_ident);

  // Nothing under ||, !, !=, or non-literal bounds.
  EXPECT_TRUE(Constraint::parse("Region == east || Price < 5").index_hints().empty());
  EXPECT_TRUE(Constraint::parse("!(Price < 5)").index_hints().empty());
  EXPECT_TRUE(Constraint::parse("Price != 5").index_hints().empty());
  EXPECT_TRUE(Constraint::parse("Price < Capacity").index_hints().empty());
  EXPECT_TRUE(Constraint::parse("").index_hints().empty());
}

TEST(ConstraintCache, LruEvictionAndSharing) {
  ConstraintCache cache(2);
  auto a = cache.get("Price < 1");
  auto a_again = cache.get("Price < 1");
  EXPECT_EQ(a, a_again);  // shared compiled object
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  cache.get("Price < 2");
  cache.get("Price < 3");  // evicts "Price < 1" (LRU)
  EXPECT_EQ(cache.size(), 2u);
  cache.get("Price < 1");
  EXPECT_EQ(cache.misses(), 4u);

  // Evicted compiled constraints stay usable by holders.
  EXPECT_TRUE(a->eval({{"Price", Value::real(0.5)}}));

  // Parse errors propagate and are never cached.
  EXPECT_THROW(cache.get("Price <"), ParseError);
  EXPECT_THROW(cache.get("Price <"), ParseError);
  EXPECT_EQ(cache.size(), 2u);

  ConstraintCache disabled(0);
  disabled.get("Price < 1");
  disabled.get("Price < 1");
  EXPECT_EQ(disabled.size(), 0u);
  EXPECT_EQ(disabled.hits(), 0u);
  EXPECT_EQ(disabled.misses(), 2u);
}

// ---------------------------------------------------------------------------
// Concurrency: exports, withdraws, modifies, lease sweeps and imports race
// on one trader.  Run under TSan via tools/run_sanitizers.sh; the snapshot
// design means importers read a consistent store at every instant.

TEST(TraderStoreStress, ConcurrentExportImportWithdrawModify) {
  Trader trader{"stress"};
  trader.types().add(sensor_type());
  trader.types().add(edge_sensor_type());
  trader.set_dynamic_fetcher(test_fetcher);

  std::vector<std::string> seeded;
  for (std::uint64_t n = 0; n < 200; ++n) {
    AttrMap attrs;
    attrs["Price"] = Value::real(static_cast<double>(n % 100));
    attrs["Region"] = Value::string(kRegions[n % kRegions.size()]);
    attrs["Capacity"] = Value::integer(static_cast<std::int64_t>(n));
    attrs["Active"] = Value::boolean(true);
    seeded.push_back(trader.export_offer("SensorService", mk_ref(n), attrs));
  }

  std::atomic<std::size_t> imports_ok{0};
  std::vector<std::thread> threads;

  for (int worker = 0; worker < 2; ++worker) {
    threads.emplace_back([&trader, worker] {
      for (std::uint64_t i = 0; i < 250; ++i) {
        std::uint64_t n = 1000 + static_cast<std::uint64_t>(worker) * 1000 + i;
        AttrMap attrs;
        attrs["Region"] = Value::string(kRegions[n % kRegions.size()]);
        attrs["Capacity"] = Value::integer(static_cast<std::int64_t>(n));
        attrs["Active"] = Value::boolean(n % 2 == 0);
        if (i % 10 == 0) {
          trader.export_offer("SensorService", mk_ref(n), attrs,
                              {{"Price", "price_now"}});
        } else {
          attrs["Price"] = Value::real(static_cast<double>(n % 100));
          trader.export_offer("SensorService", mk_ref(n), attrs);
        }
      }
    });
  }

  threads.emplace_back([&trader, &seeded] {
    for (std::size_t i = 0; i < 100; ++i) {
      try {
        trader.withdraw(seeded[i]);
      } catch (const NotFound&) {
      }
    }
  });

  threads.emplace_back([&trader, &seeded] {
    for (int round = 0; round < 3; ++round) {
      for (std::size_t i = 100; i < 180; ++i) {
        AttrMap attrs;
        attrs["Price"] = Value::real(static_cast<double>(round * 10 + 1));
        attrs["Region"] = Value::string(kRegions[i % kRegions.size()]);
        attrs["Capacity"] = Value::integer(static_cast<std::int64_t>(i));
        attrs["Active"] = Value::boolean(false);
        try {
          trader.modify(seeded[i], attrs);
        } catch (const NotFound&) {
        }
      }
    }
  });

  threads.emplace_back([&trader, &seeded] {
    for (std::size_t i = 180; i < 200; ++i) {
      try {
        trader.set_lease(seeded[i], 1);
      } catch (const NotFound&) {
      }
    }
    trader.advance_clock(2);  // sweeps the leased offers
  });

  for (int worker = 0; worker < 2; ++worker) {
    threads.emplace_back([&trader, &imports_ok] {
      const std::vector<std::string> constraints = {
          "", "Region == east && Price < 50", "Capacity > 500",
          "Active == true"};
      for (int i = 0; i < 150; ++i) {
        ImportRequest request;
        request.service_type = "SensorService";
        request.constraint = constraints[static_cast<std::size_t>(i) %
                                         constraints.size()];
        std::vector<Offer> offers = trader.import(request);
        for (const auto& offer : offers) {
          // Every result is a complete, consistent offer snapshot.
          ASSERT_EQ(offer.service_type, "SensorService");
          ASSERT_TRUE(offer.attributes.count("Price"));
          ASSERT_TRUE(offer.attributes.count("Region"));
        }
        imports_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& thread : threads) thread.join();
  EXPECT_EQ(imports_ok.load(), 300u);

  // Quiescent consistency: an unconstrained import sees exactly the live
  // offers (the dynamic fetcher always succeeds here).
  ImportRequest everything;
  everything.service_type = "SensorService";
  EXPECT_EQ(trader.import(everything).size(), trader.offer_count());
  EXPECT_EQ(trader.offers_expired_total(), 20u);
}

}  // namespace
}  // namespace cosm::trader
