#include <gtest/gtest.h>

#include "common/error.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "trader/facade.h"
#include "trader/trader.h"

namespace cosm::trader {
namespace {

using sidl::TypeDesc;
using wire::Value;

ServiceType rental_type() {
  ServiceType t;
  t.name = "CarRentalService";
  t.attributes = {{"ChargePerDay", TypeDesc::float_(), true}};
  return t;
}

AttrMap charge(double c) { return {{"ChargePerDay", Value::real(c)}}; }

sidl::ServiceRef mk_ref(const std::string& id) {
  return {id, "inproc://host", "CarRentalService"};
}

std::unique_ptr<Trader> make_trader(const std::string& name) {
  auto t = std::make_unique<Trader>(name);
  t->types().add(rental_type());
  return t;
}

ImportRequest all_rentals(int hops) {
  ImportRequest r;
  r.service_type = "CarRentalService";
  r.hop_limit = hops;
  return r;
}

TEST(Federation, HopLimitZeroStaysLocal) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->export_offer("CarRentalService", mk_ref("local"), charge(10));
  b->export_offer("CarRentalService", mk_ref("remote"), charge(20));

  EXPECT_EQ(a->import(all_rentals(0)).size(), 1u);
  EXPECT_EQ(a->import(all_rentals(1)).size(), 2u);
}

TEST(Federation, HopLimitBoundsChainDepth) {
  // a -> b -> c: offers only at c.
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto c = make_trader("c");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  b->link("c", std::make_shared<LocalTraderGateway>(*c));
  c->export_offer("CarRentalService", mk_ref("deep"), charge(5));

  EXPECT_EQ(a->import(all_rentals(1)).size(), 0u);
  EXPECT_EQ(a->import(all_rentals(2)).size(), 1u);
}

TEST(Federation, DiamondTopologyDeduplicates) {
  // a -> {b, c} -> d: d's offer reachable twice, returned once.
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto c = make_trader("c");
  auto d = make_trader("d");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->link("c", std::make_shared<LocalTraderGateway>(*c));
  b->link("d", std::make_shared<LocalTraderGateway>(*d));
  c->link("d", std::make_shared<LocalTraderGateway>(*d));
  d->export_offer("CarRentalService", mk_ref("shared"), charge(7));

  auto offers = a->import(all_rentals(2));
  EXPECT_EQ(offers.size(), 1u);
}

TEST(Federation, CyclesTerminateViaHopLimit) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  b->link("a", std::make_shared<LocalTraderGateway>(*a));
  a->export_offer("CarRentalService", mk_ref("at-a"), charge(1));
  b->export_offer("CarRentalService", mk_ref("at-b"), charge(2));

  auto offers = a->import(all_rentals(5));
  EXPECT_EQ(offers.size(), 2u);  // dedup despite ping-pong
}

TEST(Federation, MergedResultsAreRankedGlobally) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->export_offer("CarRentalService", mk_ref("pricey"), charge(90));
  b->export_offer("CarRentalService", mk_ref("bargain"), charge(15));

  ImportRequest request = all_rentals(1);
  request.preference = "min ChargePerDay";
  auto offers = a->import(request);
  ASSERT_EQ(offers.size(), 2u);
  EXPECT_EQ(offers[0].ref.id, "bargain");  // remote offer can win
}

TEST(Federation, MaxMatchesAppliedAfterMerge) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  for (int i = 0; i < 5; ++i) {
    a->export_offer("CarRentalService", mk_ref("a" + std::to_string(i)), charge(50 + i));
    b->export_offer("CarRentalService", mk_ref("b" + std::to_string(i)), charge(10 + i));
  }
  ImportRequest request = all_rentals(1);
  request.preference = "min ChargePerDay";
  request.max_matches = 3;
  auto offers = a->import(request);
  ASSERT_EQ(offers.size(), 3u);
  for (const auto& o : offers) {
    EXPECT_EQ(o.ref.id[0], 'b');  // the three cheapest live at b
  }
}

TEST(Federation, UnknownTypeAtLinkedTraderIsNotFatal) {
  auto a = make_trader("a");
  Trader bare("bare");  // never learned CarRentalService
  a->link("bare", std::make_shared<LocalTraderGateway>(bare));
  a->export_offer("CarRentalService", mk_ref("local"), charge(10));
  EXPECT_EQ(a->import(all_rentals(1)).size(), 1u);
}

TEST(Federation, RemoteGatewayOverRpc) {
  rpc::InProcNetwork net;
  auto local = make_trader("local");
  auto remote = make_trader("remote");
  remote->export_offer("CarRentalService", mk_ref("over-the-wire"), charge(33));

  rpc::RpcServer server(net, "remote-host");
  auto remote_ref = server.add(make_trader_service(*remote));
  local->link("remote", std::make_shared<RemoteTraderGateway>(net, remote_ref));

  auto offers = local->import(all_rentals(1));
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].ref.id, "over-the-wire");
  EXPECT_DOUBLE_EQ(offers[0].attributes.at("ChargePerDay").as_real(), 33.0);
}

TEST(Federation, UnreachableRemoteTraderSkipped) {
  rpc::InProcNetwork net;
  auto local = make_trader("local");
  local->export_offer("CarRentalService", mk_ref("here"), charge(1));
  sidl::ServiceRef dead{"ghost", "inproc://nowhere", "TraderService"};
  local->link("dead", std::make_shared<RemoteTraderGateway>(net, dead));
  EXPECT_EQ(local->import(all_rentals(1)).size(), 1u);
}

TEST(Federation, GatewayDescribe) {
  auto t = make_trader("x");
  EXPECT_EQ(LocalTraderGateway(*t).describe(), "local:x");
}

}  // namespace
}  // namespace cosm::trader
