#include "trader/preference.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>

#include "common/error.h"
#include "trader/cexpr_ir.h"
#include "trader/cexpr_vm.h"

namespace cosm::trader {

std::string to_string(PreferenceKind kind) {
  switch (kind) {
    case PreferenceKind::First: return "first";
    case PreferenceKind::Random: return "random";
    case PreferenceKind::Min: return "min";
    case PreferenceKind::Max: return "max";
    case PreferenceKind::Score: return "score";
  }
  return "?";
}

Preference Preference::parse(const std::string& text) {
  // "score:" introduces the scoring language; everything after the keyword
  // belongs to its own grammar (cexpr_ir.h), not the word-based parser.
  auto first_nonspace = text.find_first_not_of(" \t\r\n");
  if (first_nonspace != std::string::npos &&
      text.compare(first_nonspace, 6, "score:") == 0) {
    Preference p;
    p.kind_ = PreferenceKind::Score;
    p.score_ = std::make_shared<const detail::ScoreIr>(
        detail::parse_score(text.substr(first_nonspace + 6)));
    return p;
  }
  std::istringstream in(text);
  std::string word, attr, extra;
  in >> word >> attr >> extra;
  if (!extra.empty()) {
    throw ParseError("preference: trailing input '" + extra + "'", 1, 1);
  }
  Preference p;
  if (word.empty() || word == "first") {
    p.kind_ = PreferenceKind::First;
  } else if (word == "random") {
    p.kind_ = PreferenceKind::Random;
  } else if (word == "min" || word == "max") {
    p.kind_ = word == "min" ? PreferenceKind::Min : PreferenceKind::Max;
    if (attr.empty()) {
      throw ParseError("preference: '" + word + "' needs an attribute name", 1, 1);
    }
    p.attr_ = attr;
    attr.clear();
  } else {
    throw ParseError("preference: unknown policy '" + word + "'", 1, 1);
  }
  if (!attr.empty()) {
    throw ParseError("preference: unexpected '" + attr + "' after '" + word + "'",
                     1, 1);
  }
  return p;
}

namespace {

std::optional<double> numeric_attr(const AttrMap& attrs, const std::string& name) {
  auto it = attrs.find(name);
  if (it == attrs.end()) return std::nullopt;
  switch (it->second.kind()) {
    case wire::ValueKind::Int:
      return static_cast<double>(it->second.as_int());
    case wire::ValueKind::Float:
      return it->second.as_real();
    default:
      return std::nullopt;
  }
}

}  // namespace

std::vector<std::size_t> Preference::rank(const std::vector<const AttrMap*>& offers,
                                          Rng& rng) const {
  std::vector<std::size_t> order(offers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  switch (kind_) {
    case PreferenceKind::First:
    case PreferenceKind::Score:  // ranked by the trader's scored top-k path
      return order;
    case PreferenceKind::Random: {
      // Fisher-Yates with the trader's deterministic generator.
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.below(i)]);
      }
      return order;
    }
    case PreferenceKind::Min:
    case PreferenceKind::Max: {
      const bool want_min = kind_ == PreferenceKind::Min;
      std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        auto vx = numeric_attr(*offers[x], attr_);
        auto vy = numeric_attr(*offers[y], attr_);
        if (vx.has_value() != vy.has_value()) return vx.has_value();
        if (!vx.has_value()) return false;
        return want_min ? *vx < *vy : *vx > *vy;
      });
      return order;
    }
  }
  return order;
}

PreferenceCache::PreferenceCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const CompiledPreference> PreferenceCache::build(
    const std::string& text) {
  auto compiled = std::make_shared<CompiledPreference>();
  compiled->preference = Preference::parse(text);
  if (compiled->preference.kind() == PreferenceKind::Score) {
    compiled->score_prog = cexpr::compile_score(*compiled->preference.score());
  }
  return compiled;
}

std::shared_ptr<const CompiledPreference> PreferenceCache::get(
    const std::string& text) {
  {
    std::lock_guard lock(mutex_);
    auto it = entries_.find(text);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.compiled;
    }
  }
  // Parse + compile outside the lock: two threads racing on the same text
  // just means one redundant build.
  auto t0 = std::chrono::steady_clock::now();
  auto compiled = build(text);
  auto dt = std::chrono::steady_clock::now() - t0;
  compile_ns_.fetch_add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count(),
      std::memory_order_relaxed);
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  if (capacity_ == 0) return compiled;
  auto it = entries_.find(text);
  if (it != entries_.end()) {
    return it->second.compiled;  // lost the race to an equivalent build
  }
  lru_.push_front(text);
  entries_.emplace(text, Entry{compiled, lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return compiled;
}

void PreferenceCache::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity;
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t PreferenceCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace cosm::trader
