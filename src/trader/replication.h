// Federation v2: subscription-based offer replication between linked
// traders (registry cooperation instead of per-query fan-out — the design
// space of Miraz, "On the Cooperation of Independent Registries", and the
// Grid Market Directory's hierarchical publication).
//
// Protocol (publisher = the trader whose offers are copied, subscriber =
// the trader holding the replica):
//
//   * A subscriber upgrades an existing federation link to a
//     *subscription*, optionally scoped by service type and/or constraint.
//     The publisher answers with a subscription id and immediately pushes
//     a full snapshot.
//   * From then on the publisher enqueues insert/withdraw/modify deltas
//     (sequenced per subscription) as its local offers change, and pushes
//     them in bounded batches through a ReplicationSink — in-process for
//     LocalTraderGateway federations, over the trader facade RPC for
//     RemoteTraderGateway links.
//   * Both sides exchange periodic anti-entropy digests: the publisher
//     summarises its in-scope offers per service type as (count, hash);
//     the subscriber compares against its replica and answers with the
//     divergent types, which the publisher repairs with per-type reset
//     batches.  Digests catch everything sequencing cannot — dropped
//     batches past the retry budget, queue overflow on the publisher,
//     subscriber-side apply failures — so replicas converge after faults
//     and quarantine windows without operator intervention.
//
// Consistency model: a replica is eventually consistent with the
// publisher, with staleness bounded by the flush interval under normal
// operation and by one digest interval after a fault.  Sequence gaps are
// detected on apply (the subscriber reports its high-water mark back) and
// demoted to a full snapshot; content divergence is detected by digest.
// Replicated offers keep their origin offer ids, so federated merges and
// offer-id dedupe behave exactly as they do for deep-search results.

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "trader/offer_store.h"

namespace cosm::trader {

/// What a subscription replicates.  Empty `service_types` means every
/// type; a named type covers its whole subtype closure on the publisher.
/// A non-empty `constraint` restricts replication to statically matching
/// offers (offers with dynamic attributes always replicate — their values
/// only exist at import time, so the subscriber re-evaluates them).
struct SubscriptionScope {
  std::vector<std::string> service_types;
  std::string constraint;

  bool everything() const noexcept {
    return service_types.empty() && constraint.empty();
  }
};

/// One replicated mutation.  Upsert carries the full offer (insert and
/// modify collapse — applying an upsert twice is idempotent); Remove
/// carries only the id.
struct OfferDelta {
  enum class Kind : std::uint8_t { Upsert, Remove };
  Kind kind = Kind::Upsert;
  Offer offer;     ///< Upsert payload (Remove leaves it empty).
  std::string id;  ///< Offer id (set for both kinds).
};

/// A batch of deltas pushed publisher -> subscriber.
///
/// Incremental batches are sequenced: `first_seq` is the subscription
/// sequence number of deltas.front(), and the subscriber only applies the
/// batch when it extends its high-water mark contiguously.  A `snapshot`
/// batch replaces the whole replica (the subscriber clears every bucket of
/// this subscription first) and resets the high-water mark to
/// `snapshot_seq`; a batch with non-empty `reset_types` is a digest
/// repair — the subscriber clears exactly those type buckets, applies the
/// upserts, and leaves the sequence high-water mark alone.
///
/// `reset_seq` marks a *re-arm* repair: a publisher recovering from a
/// restart restarts its delta stream at a sequence past everything the
/// subscriber may have acked (the recovered counter plus journal-tail
/// slack), repairs divergent types in this batch, and tells the subscriber
/// to adopt `snapshot_seq` as its new high-water mark — one anti-entropy
/// round instead of a full resnapshot.
struct DeltaBatch {
  std::string publisher;
  std::uint64_t subscription_id = 0;
  bool snapshot = false;
  std::uint64_t first_seq = 0;
  std::uint64_t snapshot_seq = 0;
  bool reset_seq = false;
  std::vector<std::string> reset_types;
  std::vector<OfferDelta> deltas;
};

/// Anti-entropy summary of one service type's in-scope offers.
struct TypeDigest {
  std::string service_type;
  std::uint64_t count = 0;
  std::uint64_t hash = 0;  ///< order-independent fold of offer content hashes
};

/// Periodic anti-entropy digest, publisher -> subscriber.  `last_seq` is
/// the publisher's last assigned delta sequence (feeds the subscriber's
/// replication-lag gauge).
struct ReplicationDigest {
  std::string publisher;
  std::uint64_t subscription_id = 0;
  std::uint64_t last_seq = 0;
  std::vector<TypeDigest> types;
};

/// Publisher -> subscriber transport of one subscription.  In-process
/// federations use LocalReplicationSink (trader.h); RPC federations use
/// RemoteReplicationSink (facade.h).  Calls may throw cosm::Error — the
/// publisher then keeps the queue and retries on the next flush, and the
/// digest exchange repairs whatever was lost in the meantime.
class ReplicationSink {
 public:
  virtual ~ReplicationSink() = default;

  /// Apply a delta batch; returns the subscriber's sequence high-water
  /// mark afterwards.  A returned mark short of the batch's end signals a
  /// gap — the publisher demotes the subscription to a full snapshot.
  virtual std::uint64_t apply(const DeltaBatch& batch) = 0;

  /// Exchange an anti-entropy digest; returns the service types whose
  /// replica content diverges (the publisher repairs them).
  virtual std::vector<std::string> digest(const ReplicationDigest& digest) = 0;

  virtual std::string describe() const = 0;
};

/// Replication tuning (RuntimeOptions::replication / Trader).
struct ReplicationOptions {
  /// Deltas per apply() call; bigger batches amortise the wire, smaller
  /// ones bound per-call latency at the subscriber.
  std::size_t max_batch = 512;
  /// Queued deltas per subscription before the queue is dropped and the
  /// subscription demoted to a full snapshot (publisher memory bound when
  /// a subscriber is slow or quarantined).
  std::size_t max_pending = 65536;
  /// Replication pump cadence (Trader::start_replication_pump): queued
  /// deltas are flushed every flush_interval, digests exchanged every
  /// digest_interval.  The pump is opt-in; without it, callers drive
  /// flush_replication()/anti_entropy_tick() explicitly.
  std::chrono::milliseconds flush_interval{20};
  std::chrono::milliseconds digest_interval{1000};
};

/// Stable content hash of one offer (FNV-1a over id, type, reference,
/// static attributes, dynamic-attribute operations, and the lease expiry —
/// offers replicate verbatim, so the hash covers every replicated field).
/// Both sides of the digest exchange hash the same fields, so equal
/// replicas hash equal regardless of how the offers got there.
std::uint64_t offer_content_hash(const Offer& offer);

/// Order-independent fold of offer hashes into a bucket digest: XOR and
/// wrapping-sum accumulators mixed at the end, so insertion order (which
/// differs between publisher store and replica) cannot affect the result.
struct DigestFold {
  std::uint64_t acc_xor = 0;
  std::uint64_t acc_sum = 0;
  void add(std::uint64_t h) noexcept {
    acc_xor ^= h;
    acc_sum += h * 0x9e3779b97f4a7c15ULL;
  }
  std::uint64_t value() const noexcept {
    return acc_xor ^ (acc_sum * 0x100000001b3ULL);
  }
};

}  // namespace cosm::trader
