#include "services/image_conversion.h"

#include <memory>
#include <sstream>

#include "common/error.h"
#include "core/generic_client.h"
#include "sidl/parser.h"

namespace cosm::services {

namespace {

std::string image_type_block() {
  return "  typedef struct {\n"
         "    string name;\n"
         "    string format;\n"
         "    long width;\n"
         "    long height;\n"
         "    string data;\n"
         "  } Image_t;\n";
}

/// Synthetic pixel stream: each format uses a distinct alphabet so a
/// conversion is observable and testable.
char format_symbol(const std::string& format) {
  if (format == "PBM") return '#';
  if (format == "PGM") return '%';
  if (format == "XBM") return '@';
  throw ContractError("unknown image format '" + format + "'");
}

}  // namespace

std::string convert_image_data(const std::string& data,
                               const std::string& from_format,
                               const std::string& to_format) {
  char from = format_symbol(from_format);
  char to = format_symbol(to_format);
  std::string out = data;
  for (char& c : out) {
    if (c == from) c = to;
  }
  return out;
}

std::string image_server_sidl(const ImageServerConfig& config) {
  std::ostringstream os;
  os << "module " << config.name << " {\n"
     << image_type_block()
     << "  interface COSM_Operations {\n"
        "    Image_t GetImage([in] string name);\n"
        "    sequence<string> ListImages();\n"
        "  };\n"
        "  module COSM_Annotations {\n"
        "    annotate " << config.name << " \"Image archive serving "
     << config.format << " images\";\n"
        "    annotate GetImage \"Fetch an image by name\";\n"
        "  };\n"
        "};\n";
  return os.str();
}

rpc::ServiceObjectPtr make_image_server(const ImageServerConfig& config) {
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(image_server_sidl(config)));
  auto object = std::make_shared<rpc::ServiceObject>(std::move(sid));

  auto make_image = [config](const std::string& name) {
    // Deterministic synthetic pixels: rows of the format's symbol broken by
    // a diagonal derived from the image name.
    std::string data;
    std::size_t seed = std::hash<std::string>{}(name);
    char symbol = format_symbol(config.format);
    for (std::int64_t y = 0; y < config.height; ++y) {
      for (std::int64_t x = 0; x < config.width; ++x) {
        data.push_back(
            static_cast<std::size_t>(x + y) % 7 == seed % 7 ? '.' : symbol);
      }
    }
    return wire::Value::structure(
        "Image_t", {{"name", wire::Value::string(name)},
                    {"format", wire::Value::string(config.format)},
                    {"width", wire::Value::integer(config.width)},
                    {"height", wire::Value::integer(config.height)},
                    {"data", wire::Value::string(data)}});
  };

  object->on("GetImage", [make_image](const std::vector<wire::Value>& args) {
    return make_image(args.at(0).as_string());
  });
  object->on("ListImages", [](const std::vector<wire::Value>&) {
    std::vector<wire::Value> names;
    for (const char* n : {"lena", "peppers", "baboon"}) {
      names.push_back(wire::Value::string(n));
    }
    return wire::Value::sequence(std::move(names));
  });
  return object;
}

std::string format_converter_sidl(const FormatConverterConfig& config) {
  std::ostringstream os;
  os << "module " << config.name << " {\n"
     << image_type_block()
     << "  interface COSM_Operations {\n"
        "    Image_t GetImageAs([in] string name, [in] string format);\n"
        "    ServiceReference Upstream();\n"
        "  };\n"
        "  module COSM_Annotations {\n"
        "    annotate " << config.name
     << " \"Value-adding converter: serves upstream images re-coded to "
     << config.target_format << "\";\n"
        "    annotate GetImageAs \"Fetch an image converted to the requested format\";\n"
        "    annotate Upstream \"The image server this converter adds value to\";\n"
        "  };\n"
        "};\n";
  return os.str();
}

rpc::ServiceObjectPtr make_format_converter(rpc::Network& network,
                                            const sidl::ServiceRef& upstream,
                                            const FormatConverterConfig& config) {
  auto sid =
      std::make_shared<sidl::Sid>(sidl::parse_sid(format_converter_sidl(config)));
  auto object = std::make_shared<rpc::ServiceObject>(std::move(sid));

  // The converter is a generic client of its upstream: it binds through the
  // same SID-transfer mechanism as any end user (§2.3 — value-adding
  // services pay no special adaptation cost either).
  struct Chain {
    core::GenericClient client;
    core::Binding upstream;
    Chain(rpc::Network& net, const sidl::ServiceRef& up)
        : client(net), upstream(client.bind(up)) {}
  };
  auto chain = std::make_shared<Chain>(network, upstream);
  sidl::ServiceRef upstream_ref = upstream;

  object->on("GetImageAs", [chain](const std::vector<wire::Value>& args) {
    const std::string& name = args.at(0).as_string();
    const std::string& format = args.at(1).as_string();
    wire::Value image =
        chain->upstream.invoke("GetImage", {wire::Value::string(name)});
    std::string converted = convert_image_data(
        image.at("data").as_string(), image.at("format").as_string(), format);
    return wire::Value::structure(
        "Image_t", {{"name", image.at("name")},
                    {"format", wire::Value::string(format)},
                    {"width", image.at("width")},
                    {"height", image.at("height")},
                    {"data", wire::Value::string(converted)}});
  });
  object->on("Upstream", [upstream_ref](const std::vector<wire::Value>&) {
    return wire::Value::service_ref(upstream_ref);
  });
  return object;
}

}  // namespace cosm::services
