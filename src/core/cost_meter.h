// Transition-cost accounting (§2.3).
//
// The paper's economic argument is that COSM drives the *transition costs*
// of an open service market toward zero: making a service available,
// switching providers, adding value-adding services, extending interfaces.
// The meter gives those costs units so experiments C1/C2 can compare the
// pre-COSM baseline (hand-written stubs, manual reconfiguration) with the
// COSM path (SID registration, generic client).
//
// Units are deliberately simple and favour the *baseline* where judgement
// is needed: one "stub unit" per operation a developer must hand-code, one
// "configuration unit" per manual wiring step, one "registration unit" per
// registry interaction.  What matters is the shape — which curve grows with
// the number of providers — not the absolute magnitudes.

#pragma once

#include <cstdint>
#include <string>

namespace cosm::core {

class TransitionCostMeter {
 public:
  /// Developer hand-writes marshalling/stub code for one operation.
  void count_stub_units(std::uint64_t operations) { stub_units_ += operations; }
  /// Manual configuration action (editing an address, rebuilding a client).
  void count_configuration() { ++configuration_units_; }
  /// Registry interaction (trader export, type registration, browser
  /// registration).
  void count_registration() { ++registration_units_; }
  /// Automatic SID transfer (costless for the developer, counted for
  /// completeness).
  void count_sid_transfer() { ++sid_transfers_; }

  std::uint64_t stub_units() const noexcept { return stub_units_; }
  std::uint64_t configuration_units() const noexcept { return configuration_units_; }
  std::uint64_t registration_units() const noexcept { return registration_units_; }
  std::uint64_t sid_transfers() const noexcept { return sid_transfers_; }

  /// Developer-borne total: the §2.3 "transition cost".
  std::uint64_t developer_cost() const noexcept {
    return stub_units_ + configuration_units_ + registration_units_;
  }

  void reset() { *this = TransitionCostMeter{}; }

  std::string summary() const;

 private:
  std::uint64_t stub_units_ = 0;
  std::uint64_t configuration_units_ = 0;
  std::uint64_t registration_units_ = 0;
  std::uint64_t sid_transfers_ = 0;
};

}  // namespace cosm::core
