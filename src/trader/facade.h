// RPC facade for the trader and the remote federation gateway.
//
// The facade exposes the full computational interface of §2.1 — export,
// withdraw, modify, import, list — plus the management interface (service
// type insertion/deletion) over the COSM RPC substrate, described in SIDL
// like any other service.  RemoteTraderGateway lets one trader's federation
// link point at another trader across the network.
//
// Federation v2 additions (replication.h): Subscribe / Unsubscribe upgrade
// a remote link to a replication subscription, and ReplicaApply /
// ReplicaDigest are the subscriber-side ops the publisher's
// RemoteReplicationSink pushes delta batches and anti-entropy digests
// through.  Offer_t carries dynamic-attribute bindings and the lease on
// the wire so replicated offers round-trip verbatim.

#pragma once

#include <memory>

#include "rpc/network.h"
#include "rpc/retry.h"
#include "rpc/service_object.h"
#include "trader/trader.h"

namespace cosm::trader {

/// SIDL text of the trader's interface.
const std::string& trader_sidl();

/// Wrap a Trader in a ServiceObject.  The trader must outlive the object.
/// Without a network the replication ops still serve the subscriber side
/// (ReplicaApply / ReplicaDigest); Subscribe needs `network` to construct
/// the sink that reaches back to the subscriber, and throws
/// cosm::ContractError otherwise.
rpc::ServiceObjectPtr make_trader_service(Trader& trader);
rpc::ServiceObjectPtr make_trader_service(Trader& trader, rpc::Network* network,
                                          rpc::RetryPolicy sink_retry = {});

/// Offer <-> wire conversions (shared by facade and gateway).
wire::Value offer_to_value(const Offer& offer);
Offer offer_from_value(const wire::Value& value);

/// Publisher -> subscriber replication transport over RPC: pushes delta
/// batches and digests at the subscriber trader's facade.  Both ops are
/// idempotent at the subscriber (sequence overlap is skipped on apply), so
/// the retry policy may reissue them on transport failure.
class RemoteReplicationSink final : public ReplicationSink {
 public:
  RemoteReplicationSink(rpc::Network& network, sidl::ServiceRef subscriber_ref,
                        rpc::RetryPolicy retry = {});

  std::uint64_t apply(const DeltaBatch& batch) override;
  std::vector<std::string> digest(const ReplicationDigest& digest) override;
  std::string describe() const override;

 private:
  rpc::Network& network_;
  sidl::ServiceRef ref_;
  rpc::RetryPolicy retry_;
};

/// Federation link target reachable over RPC.  Import is read-only, so a
/// retry policy (when given) reissues it on transport failure; the server's
/// replay cache dedupes any request that did reach it.
class RemoteTraderGateway final : public TraderGateway {
 public:
  RemoteTraderGateway(rpc::Network& network, sidl::ServiceRef trader_ref,
                      rpc::RetryPolicy retry = {});

  std::vector<Offer> import(const ImportRequest& request) override;
  std::string describe() const override;

  /// The service reference under which the *subscriber* trader is served —
  /// what the publisher's replication sink will push to.  Must be set
  /// before subscribe() (Trader::subscribe_link); there is no in-process
  /// path back from an arbitrary remote publisher.
  void set_subscriber_ref(sidl::ServiceRef ref);

  SubscriptionInfo subscribe(Trader& subscriber,
                             const SubscriptionScope& scope) override;
  void unsubscribe(std::uint64_t subscription_id) override;

 private:
  rpc::Network& network_;
  sidl::ServiceRef ref_;
  sidl::ServiceRef subscriber_ref_;
  rpc::RetryPolicy retry_;
};

}  // namespace cosm::trader
