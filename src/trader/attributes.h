// Service-property attribute maps and their wire representation.
//
// An offer's attributes are named scalar values ("ChargePerDay" -> 80.0).
// On the wire they travel as a sequence of Attribute_t structs whose value
// field is `any` — the trader facade works for every service type without
// per-type stubs.

#pragma once

#include <map>
#include <string>

#include "wire/value.h"

namespace cosm::trader {

using AttrMap = std::map<std::string, wire::Value>;

/// AttrMap -> sequence of Attribute_t{ name, value } structs.
wire::Value attrs_to_value(const AttrMap& attrs);

/// Inverse of attrs_to_value; throws cosm::TypeError on malformed input.
AttrMap attrs_from_value(const wire::Value& value);

}  // namespace cosm::trader
