// Trader constraint language (§2.1: "retrieve a list of services which
// conforms to any given client request").
//
// Importers filter offers with boolean expressions over service properties:
//
//     ChargePerDay < 100 && ChargeCurrency == USD && exists AverageMilage
//
// Grammar:
//     expr   := or
//     or     := and ( "||" and )*
//     and    := unary ( "&&" unary )*
//     unary  := "!" unary | primary
//     primary:= "(" expr ")" | "exists" IDENT | "true" | "false"
//            |  operand "in" "{" operand ("," operand)* "}" | cmp
//     cmp    := operand ( "==" | "!=" | "<" | "<=" | ">" | ">=" ) operand
//     operand:= IDENT | NUMBER | STRING        (NUMBER may be "-"-prefixed)
//
// Semantics (deliberately forgiving — an offer that cannot satisfy a
// comparison simply does not match):
//   * a bare identifier names the offer's attribute when one exists,
//     otherwise it denotes itself as an enum-label/string literal;
//   * numbers compare numerically across long/double;
//   * enum values compare by label, including against strings;
//   * a comparison over a missing attribute or incomparable kinds is false;
//   * `exists A` tests attribute presence;
//   * `A in { x, y, z }` holds iff A equals one of the set members.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trader/attributes.h"

namespace cosm::trader {

namespace detail {
struct Node;
}
namespace cexpr {
struct Program;
using ProgramPtr = std::shared_ptr<const Program>;
}

/// One top-level AND conjunct the offer store's index planner can serve
/// from a secondary index instead of evaluating per offer.  Extracted once
/// at parse time; whether a hint is actually *usable* depends on the
/// bucket it is applied to (the subject must be an attribute every static
/// offer carries, and a bare-identifier key must not collide with an
/// attribute name), so eligibility is decided by the store per bucket.
struct IndexHint {
  enum class Kind { Equality, Range };
  enum class KeyKind { Number, Text, Boolean };
  enum class Bound { Lt, Le, Gt, Ge };

  Kind kind = Kind::Equality;
  /// Subject attribute name.
  std::string attr;

  // Equality key (KeyKind selects which member is meaningful).
  KeyKind key_kind = KeyKind::Number;
  double number = 0.0;  // also the Range bound
  std::string text;
  bool boolean = false;
  /// Text key came from an unquoted identifier (`Currency == USD`): only
  /// usable against a bucket whose schema declares no attribute `USD`,
  /// because per-offer identifier resolution would otherwise differ.
  bool text_is_bare_ident = false;

  /// Range comparison direction, subject on the left (Range only).
  Bound bound = Bound::Lt;
};

class Constraint {
 public:
  /// Parse a constraint expression; throws cosm::ParseError.  An empty or
  /// all-whitespace string yields the always-true constraint.
  static Constraint parse(const std::string& text);

  Constraint();  // always-true
  ~Constraint();
  Constraint(Constraint&&) noexcept;
  Constraint& operator=(Constraint&&) noexcept;
  Constraint(const Constraint&) = delete;
  Constraint& operator=(const Constraint&) = delete;

  /// Evaluate against an offer's attributes.
  bool eval(const AttrMap& attrs) const;

  /// Attribute names the expression references (for match diagnostics).
  std::vector<std::string> referenced_attributes() const;

  /// Indexable top-level AND conjuncts, extracted at parse time.
  const std::vector<IndexHint>& index_hints() const noexcept { return hints_; }

  const std::string& text() const noexcept { return text_; }

  /// Parsed AST root (null = always true).  Internal: feeds the bytecode
  /// compiler in trader/cexpr_vm.h.
  const detail::Node* root() const noexcept { return root_.get(); }

 private:
  std::string text_;
  std::unique_ptr<detail::Node> root_;  // null = always true
  std::vector<IndexHint> hints_;
};

/// A constraint together with its compiled filter bytecode.  The program is
/// compiled against a type-layout epoch: identifier operands whose names no
/// registered service type has *ever* declared are folded to text literals
/// at compile time (per-offer resolution can never turn them into attribute
/// reads — the type manager rejects offers with undeclared attributes), so
/// the program must be recompiled when the layout epoch moves.
struct CompiledConstraint {
  Constraint constraint;
  cexpr::ProgramPtr filter;
  std::uint64_t layout_epoch = 0;
};

/// LRU cache of compiled constraints, keyed by constraint text.  Imports —
/// local or federation-forwarded (the facade hands the constraint text
/// through verbatim, so a forwarded import presents the byte-identical
/// key) — share one compiled AST *and* one compiled filter program instead
/// of re-parsing and re-compiling per request.  Compiled constraints are
/// immutable, so pointers handed out stay valid after eviction.
/// Thread-safe; parse errors are not cached.
class ConstraintCache {
 public:
  explicit ConstraintCache(std::size_t capacity = 128);

  /// Compiled constraint for `text`; parses (and caches) on miss.
  /// Throws cosm::ParseError like Constraint::parse.  With capacity 0 the
  /// cache is disabled and every call parses.
  std::shared_ptr<const Constraint> get(const std::string& text);

  /// Like get(), but returns the AST together with its filter bytecode,
  /// compiled against the caller's type-layout epoch.  `declared` is the
  /// cumulative set of attribute names any service type has ever declared
  /// (null compiles without identifier folding, which is always valid); an
  /// entry compiled at a different epoch is recompiled in place (counted
  /// as an eviction + miss).
  std::shared_ptr<const CompiledConstraint> get_compiled(
      const std::string& text, std::uint64_t layout_epoch,
      std::shared_ptr<const std::unordered_set<std::string>> declared);

  void set_capacity(std::size_t capacity);

  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Entries dropped by LRU pressure plus entries invalidated by a
  /// type-layout epoch change.
  std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Nanoseconds spent parsing + compiling (cache misses only).
  std::uint64_t compile_ns() const noexcept {
    return compile_ns_.load(std::memory_order_relaxed);
  }
  /// Zero the hit/miss/eviction/compile-time counters (entries stay).
  void reset_stats() noexcept {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    compile_ns_.store(0, std::memory_order_relaxed);
  }
  std::size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const CompiledConstraint> compiled;
    std::list<std::string>::iterator lru_pos;
  };

  std::shared_ptr<const CompiledConstraint> build(
      const std::string& text, std::uint64_t layout_epoch,
      const std::shared_ptr<const std::unordered_set<std::string>>& declared);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> compile_ns_{0};
};

}  // namespace cosm::trader
