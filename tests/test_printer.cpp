#include "sidl/printer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sidl/parser.h"
#include "support/generators.h"

namespace cosm::sidl {
namespace {

Sid reparse(const Sid& sid) { return parse_sid(print_sid(sid)); }

TEST(Printer, CarRentalRoundTrip) {
  Sid sid = parse_sid(R"(
    module CarRentalService {
      typedef enum { AUDI, FIAT_Uno, VW_Golf } CarModel_t;
      typedef struct { CarModel_t model; string date; long days; } SelectCar_t;
      typedef struct { boolean ok; double charge; } Return_t;
      interface COSM_Operations {
        Return_t SelectCar([in] SelectCar_t selection);
        void Reset();
      };
      module COSM_TraderExport {
        const string TOD = "CarRentalService";
        const double ChargePerDay = 80.5;
        const CarModel_t Model = FIAT_Uno;
      };
      module COSM_FSM {
        states { INIT, SELECTED };
        initial INIT;
        transition INIT SelectCar SELECTED;
        transition SELECTED Reset INIT;
      };
      module COSM_Annotations {
        annotate SelectCar "quote a rental";
      };
      module VendorSpecific { const long Magic = 99; };
    };
  )");
  Sid again = reparse(sid);
  EXPECT_EQ(sid, again);
}

TEST(Printer, UnknownExtensionsSurviveTwoHops) {
  Sid sid = parse_sid(R"(
    module M {
      interface I { void Op(); };
      module Mystery { const string Key = "v\"alue"; module Inner { }; };
    };
  )");
  // Print -> parse -> print -> parse: the extension body must be stable
  // (this is what lets a base-only component forward an extended SID).
  Sid hop1 = reparse(sid);
  Sid hop2 = reparse(hop1);
  EXPECT_EQ(hop1, hop2);
  ASSERT_EQ(hop2.unknown_extensions.size(), 1u);
  EXPECT_NE(hop2.unknown_extensions[0].raw_body.find("Inner"), std::string::npos);
}

TEST(Printer, EmptySidPrintsAndReparses) {
  Sid sid;
  sid.name = "Empty";
  Sid again = reparse(sid);
  EXPECT_EQ(again.name, "Empty");
  EXPECT_TRUE(again.operations.empty());
}

TEST(Printer, FloatConstantsKeepPrecision) {
  Sid sid;
  sid.name = "M";
  sid.constants.emplace_back("Pi", Literal(3.141592653589793));
  sid.constants.emplace_back("Tiny", Literal(1e-15));
  sid.constants.emplace_back("Whole", Literal(80.0));
  Sid again = reparse(sid);
  EXPECT_EQ(sid.constants, again.constants);
}

TEST(Printer, PrintTypeFormats) {
  EXPECT_EQ(print_type(*TypeDesc::int_()), "long");
  EXPECT_EQ(print_type(*TypeDesc::sequence(TypeDesc::string_())),
            "sequence<string>");
  auto e = TypeDesc::enum_("E", {"A", "B"});
  EXPECT_EQ(print_type(*e), "enum E { A, B }");
}

TEST(Printer, AnnotationQuotesEscaped) {
  Sid sid;
  sid.name = "M";
  sid.operations.push_back({"Op", TypeDesc::void_(), {}});
  sid.annotations["Op"] = "say \"hi\" \\ slash";
  Sid again = reparse(sid);
  EXPECT_EQ(again.annotations["Op"], "say \"hi\" \\ slash");
}

/// The big property: print -> parse is the identity on the model, for many
/// random SIDs.  This is exactly the mechanism SID transfer relies on.
class PrintParseRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrintParseRoundTrip, Identity) {
  cosm::Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    Sid sid = cosm::testing::random_sid(rng);
    std::string text = print_sid(sid);
    Sid again;
    ASSERT_NO_THROW(again = parse_sid(text)) << text;
    EXPECT_EQ(sid, again) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrintParseRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace cosm::sidl
