// CosmConfig validation: invalid combinations throw up front, benign
// clamps are applied-and-counted (never silent), the fluent builders
// compose, and a durable runtime assembled from a config restarts with
// its market intact.

#include "core/config.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.h"
#include "core/runtime.h"
#include "rpc/inproc.h"
#include "sidl/type_desc.h"

namespace cosm::core {
namespace {

namespace fs = std::filesystem;

using sidl::TypeDesc;
using wire::Value;

TEST(CosmConfig, DefaultIsValidWithZeroAdjustments) {
  std::size_t adjusted = 99;
  CosmConfig out = CosmConfig().validated(&adjusted);
  EXPECT_EQ(adjusted, 0u);
  EXPECT_FALSE(out.durable);
  EXPECT_EQ(out.trader_tuning.store_shards, CosmConfig{}.trader_tuning.store_shards);
}

TEST(CosmConfig, StoreShardsOutOfRangeThrows) {
  CosmConfig cfg;
  cfg.trader_tuning.store_shards = 0;
  EXPECT_THROW(cfg.validated(), ContractError);
  cfg.trader_tuning.store_shards = 65;
  EXPECT_THROW(cfg.validated(), ContractError);
  cfg.trader_tuning.store_shards = 64;
  EXPECT_NO_THROW(cfg.validated());
}

TEST(CosmConfig, SelectionVmWithZeroConstraintCacheThrows) {
  CosmConfig cfg;
  cfg.trader_tuning.enable_selection_vm = true;
  cfg.trader_tuning.constraint_cache_capacity = 0;
  EXPECT_THROW(cfg.validated(), ContractError);
  // Turning the VM off makes the zero-capacity cache a legal choice.
  cfg.trader_tuning.enable_selection_vm = false;
  EXPECT_NO_THROW(cfg.validated());
}

TEST(CosmConfig, DurableWithoutDirectoryThrows) {
  CosmConfig cfg;
  cfg.durable = true;
  EXPECT_THROW(cfg.validated(), ContractError);
  cfg.storage.directory = "/tmp/somewhere";
  EXPECT_NO_THROW(cfg.validated());
}

TEST(CosmConfig, AtMostOnceWithZeroReplayCapacityThrows) {
  CosmConfig cfg;
  cfg.server.at_most_once = true;
  cfg.server.replay_cache_capacity = 0;
  EXPECT_THROW(cfg.validated(), ContractError);
}

TEST(CosmConfig, BenignClampsAreAppliedAndCounted) {
  CosmConfig cfg;
  cfg.replication.max_batch = 0;
  cfg.replication.max_pending = 0;
  cfg.observability.tracing = true;
  cfg.observability.trace_capacity = 0;
  cfg.durable = true;
  cfg.storage.directory = "/tmp/somewhere";
  cfg.storage.segment_bytes = 0;

  std::size_t adjusted = 0;
  CosmConfig out = cfg.validated(&adjusted);
  EXPECT_EQ(adjusted, 4u);
  EXPECT_EQ(out.replication.max_batch, 1u);
  EXPECT_EQ(out.replication.max_pending, 1u);
  EXPECT_EQ(out.observability.trace_capacity, 4096u);
  EXPECT_EQ(out.storage.segment_bytes, 64ull << 20);
  // The original is untouched (validated returns a normalised copy).
  EXPECT_EQ(cfg.replication.max_batch, 0u);
}

TEST(CosmConfig, FluentBuildersCompose) {
  rpc::RetryPolicy retry;
  retry.max_attempts = 3;
  auto cfg = CosmConfig()
                 .with_durability("/var/lib/cosm", /*fsync=*/true)
                 .with_at_most_once(128)
                 .with_store_shards(16)
                 .with_replication_pump()
                 .with_metrics()
                 .with_tracing(true, 512)
                 .with_retry(retry)
                 .with_trader_name("pinned");
  EXPECT_TRUE(cfg.durable);
  EXPECT_EQ(cfg.storage.directory, "/var/lib/cosm");
  EXPECT_TRUE(cfg.storage.fsync);
  EXPECT_TRUE(cfg.server.at_most_once);
  EXPECT_EQ(cfg.server.replay_cache_capacity, 128u);
  EXPECT_EQ(cfg.trader_tuning.store_shards, 16u);
  EXPECT_TRUE(cfg.replication_pump);
  EXPECT_TRUE(cfg.observability.metrics);
  EXPECT_TRUE(cfg.observability.tracing);
  EXPECT_EQ(cfg.observability.trace_capacity, 512u);
  EXPECT_EQ(cfg.retry.max_attempts, 3);
  EXPECT_EQ(cfg.trader_name, "pinned");
}

TEST(CosmConfig, RuntimeRejectsInvalidConfig) {
  rpc::InProcNetwork net;
  CosmConfig cfg;
  cfg.trader_tuning.store_shards = 0;
  EXPECT_THROW(CosmRuntime(net, cfg), ContractError);
}

TEST(CosmConfig, RuntimeCountsAdjustmentsAndKeepsNormalisedConfig) {
  rpc::InProcNetwork net;
  CosmConfig cfg;
  cfg.replication.max_batch = 0;
  CosmRuntime runtime(net, cfg);
  EXPECT_EQ(runtime.config_adjustments(), 1u);
  EXPECT_EQ(runtime.config().replication.max_batch, 1u);
}

TEST(CosmConfig, ExplicitTraderNameAppliesToRuntime) {
  rpc::InProcNetwork net;
  CosmRuntime runtime(net, CosmConfig().with_trader_name("market-7"));
  EXPECT_EQ(runtime.trader().name(), "market-7");
}

#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
TEST(CosmConfig, DeprecatedRuntimeOptionsAliasStillWorks) {
  // Old call sites keep compiling: RuntimeOptions is CosmConfig with the
  // same field names.
  RuntimeOptions options;
  options.observability.metrics = false;
  options.trader_tuning.store_shards = 4;
  rpc::InProcNetwork net;
  CosmRuntime runtime(net, options);
  EXPECT_EQ(runtime.config().trader_tuning.store_shards, 4u);
}
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

class DurableRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir = fs::temp_directory_path() /
          ("cosm-config-" + std::to_string(::getpid()) + "-" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir);
  }
  void TearDown() override { fs::remove_all(dir); }

  fs::path dir;
};

TEST_F(DurableRuntimeTest, DurableRuntimeRestartsWithMarketIntact) {
  rpc::InProcNetwork net;
  auto cfg = CosmConfig().with_durability(dir.string());

  trader::ServiceType type;
  type.name = "CarRentalService";
  type.attributes = {{"ChargePerDay", TypeDesc::float_(), true}};
  sidl::ServiceRef ref{"p1", "inproc://host", "CarRentalService"};

  std::string durable_name;
  {
    CosmRuntime runtime(net, cfg);
    durable_name = runtime.trader().name();
    runtime.trader().types().add(type);
    for (int i = 0; i < 3; ++i) {
      runtime.trader().export_offer("CarRentalService", ref,
                                    {{"ChargePerDay", Value::real(40.0 + i)}});
    }
    EXPECT_EQ(runtime.trader().offer_count(), 3u);
  }

  CosmRuntime runtime(net, cfg);
  // Stable replication identity: the recovered trader is the same publisher.
  EXPECT_EQ(runtime.trader().name(), durable_name);
  EXPECT_EQ(runtime.trader().offer_count(), 3u);
  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = "ChargePerDay < 42";
  EXPECT_EQ(runtime.trader().import(request).size(), 2u);
}

}  // namespace
}  // namespace cosm::core
