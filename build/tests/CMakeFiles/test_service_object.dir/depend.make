# Empty dependencies file for test_service_object.
# This may be replaced when dependencies are built.
