#include "sidl/service_ref.h"

#include "common/error.h"

namespace cosm::sidl {

ServiceRef ServiceRef::from_string(const std::string& s) {
  auto first = s.find('|');
  if (first == std::string::npos) {
    throw WireError("malformed service reference: '" + s + "'");
  }
  auto second = s.find('|', first + 1);
  if (second == std::string::npos) {
    throw WireError("malformed service reference: '" + s + "'");
  }
  ServiceRef ref;
  ref.id = s.substr(0, first);
  ref.endpoint = s.substr(first + 1, second - first - 1);
  ref.interface_name = s.substr(second + 1);
  return ref;
}

}  // namespace cosm::sidl
