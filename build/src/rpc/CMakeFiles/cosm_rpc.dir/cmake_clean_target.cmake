file(REMOVE_RECURSE
  "libcosm_rpc.a"
)
