// Literal constant values as they appear in SIDL `const` declarations —
// notably inside COSM_TraderExport extension modules, where they carry the
// service-property values an ODP trader matches on (§4.1).

#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace cosm::sidl {

/// An enumeration label used as a constant value, e.g. `Model = FIAT_Uno`.
struct EnumLabel {
  std::string label;
  bool operator==(const EnumLabel&) const = default;
};

/// Constant value: boolean, integer, float, string or enum label.
class Literal {
 public:
  using Storage = std::variant<bool, std::int64_t, double, std::string, EnumLabel>;

  Literal() : v_(std::int64_t{0}) {}
  explicit Literal(bool b) : v_(b) {}
  explicit Literal(std::int64_t i) : v_(i) {}
  explicit Literal(double d) : v_(d) {}
  explicit Literal(std::string s) : v_(std::move(s)) {}
  explicit Literal(EnumLabel e) : v_(std::move(e)) {}

  bool is_bool() const noexcept { return std::holds_alternative<bool>(v_); }
  bool is_int() const noexcept { return std::holds_alternative<std::int64_t>(v_); }
  bool is_float() const noexcept { return std::holds_alternative<double>(v_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(v_); }
  bool is_enum() const noexcept { return std::holds_alternative<EnumLabel>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  double as_float() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const EnumLabel& as_enum() const { return std::get<EnumLabel>(v_); }

  const Storage& storage() const noexcept { return v_; }

  bool operator==(const Literal&) const = default;

  /// SIDL source form: `true`, `4711`, `80.5`, `"USD"`, `FIAT_Uno`.
  std::string to_sidl() const;

 private:
  Storage v_;
};

}  // namespace cosm::sidl
