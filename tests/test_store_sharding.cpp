// Sharded offer store: epoch publication, batch APIs, hot-type splitting,
// and the consistency regressions from the sharding bugfix sweep.
//
// The sharded store must be observationally identical to the unsharded one
// (shard_count=1): the randomized differential drives both over the same
// operation sequence and compares every read surface.  The stress test runs
// concurrent per-shard writers and epoch-pinned readers under TSan.  The
// regression tests pin three specific fixes: erase() cleaning stale id-map
// entries on its mismatch path, NaN range bounds matching nothing instead
// of corrupting the ord-index binary search, and required_attrs refusing to
// reset (widen) while dead-but-unmerged base slots remain.

#include "trader/offer_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "sidl/type_desc.h"
#include "trader/trader.h"

namespace cosm::trader {

/// White-box access for regression tests: fabricate states the public API
/// cannot reach (stale id-map entries, dead-but-unmerged buckets) and hold
/// reader pins open to exercise epoch reclamation.
struct OfferStoreTestPeer {
  using ReadGuard = OfferStore::ReadGuard;

  static std::unique_ptr<ReadGuard> pin(const OfferStore& store) {
    return std::make_unique<ReadGuard>(store);
  }

  static bool id_map_has(const OfferStore& store, const std::string& id) {
    OfferStore::IdShard& slice = store.id_shard(id);
    std::lock_guard lock(slice.mutex);
    return slice.map.count(id) != 0;
  }

  /// Plant an id-map entry whose bucket does not know the id — the stale
  /// state the erase() mismatch path must clean up.
  static void inject_stale_id(OfferStore& store, const std::string& id,
                              const std::string& type, std::uint32_t shard) {
    OfferStore::IdShard& slice = store.id_shard(id);
    std::lock_guard lock(slice.mutex);
    slice.map[id] = OfferStore::IdEntry{type, shard};
  }

  /// Fabricate a bucket whose base slots are all dead but unmerged (live
  /// == 0, delta empty, dead non-empty) with the given required_attrs —
  /// unreachable through the public API (the too-dead merge policy always
  /// collapses it first), which is exactly why the reset guard is
  /// defensive.
  static void plant_dead_bucket(OfferStore& store, OfferPtr offer,
                                std::unordered_set<std::string> required) {
    ReadGuard guard(store);
    OfferStore::Shard& shard = *guard.table().shards[0];
    std::lock_guard writer(shard.writer_mutex);
    auto next = store.clone_state(shard);
    auto bucket = std::make_shared<OfferStore::Bucket>();
    OfferStore::Bucket staging;
    staging.base = std::make_shared<OfferStore::IndexedBase>();
    staging.delta.push_back(StoredOffer{1, offer});
    bucket->base = store.rebuild_base(staging);
    bucket->dead.insert(offer->id);
    bucket->live = 0;
    bucket->required_attrs = std::move(required);
    for (const auto& name : bucket->required_attrs) {
      bucket->declared_attrs.insert(name);
    }
    next->buckets[offer->service_type] = std::move(bucket);
    store.publish_shard(shard, std::move(next));
  }

  static std::unordered_set<std::string> required_attrs_of(
      const OfferStore& store, const std::string& type) {
    ReadGuard guard(store);
    std::unordered_set<std::string> out;
    for (std::size_t s = 0; s < guard.shards(); ++s) {
      const auto* state = guard.state(s);
      auto it = state->buckets.find(type);
      if (it == state->buckets.end()) continue;
      for (const auto& name : it->second->required_attrs) out.insert(name);
    }
    return out;
  }
};

namespace {

using sidl::TypeDesc;
using wire::Value;

std::vector<AttributeDef> plain_schema() {
  return {
      {"Price", TypeDesc::float_(), true},
      {"Region", TypeDesc::string_(), true},
      {"Capacity", TypeDesc::int_(), true},
  };
}

OfferPtr mk_offer(const std::string& id, const std::string& type, double price,
                  const std::string& region, std::int64_t capacity) {
  Offer offer;
  offer.id = id;
  offer.service_type = type;
  offer.ref = {"ref-" + id, "inproc://host", type};
  offer.attributes["Price"] = Value::real(price);
  offer.attributes["Region"] = Value::string(region);
  offer.attributes["Capacity"] = Value::integer(capacity);
  return std::make_shared<const Offer>(std::move(offer));
}

/// Canonical view of a store's contents for equivalence checks: (seq, id,
/// attrs) of every live offer of the given types, seq-ascending.
std::vector<std::pair<std::uint64_t, std::string>> contents(
    const OfferStore& store, const std::vector<std::string>& types) {
  std::vector<StoredOffer> stored = store.collect_all(types);
  std::sort(stored.begin(), stored.end(),
            [](const StoredOffer& a, const StoredOffer& b) {
              return a.seq < b.seq;
            });
  std::vector<std::pair<std::uint64_t, std::string>> out;
  out.reserve(stored.size());
  for (const StoredOffer& so : stored) {
    out.emplace_back(so.seq, so.offer->id);
  }
  return out;
}

const std::vector<std::string> kDiffTypes = {"TypeA", "TypeB", "TypeC",
                                             "TypeD"};
const std::vector<std::string> kDiffRegions = {"east", "west", "north"};
const std::vector<std::string> kDiffConstraints = {
    "",
    "Price < 50",
    "Region == east && Price >= 25",
    "Capacity > 500 && Capacity <= 800",
    "Region == west || Price == 10",
};

// ---------------------------------------------------------------------------
// Randomized differential: sharded (hot-splitting) == unsharded, op for op.

TEST(StoreSharding, ShardedMatchesUnsharded) {
  for (std::uint64_t seed : {3u, 17u, 71u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    OfferStore::Tuning sharded_tuning;
    sharded_tuning.shard_count = 8;
    sharded_tuning.hot_split_threshold = 16;  // low: split mid-test
    sharded_tuning.min_delta = 4;             // frequent merges
    OfferStore sharded(sharded_tuning);
    OfferStore::Tuning flat_tuning;
    flat_tuning.shard_count = 1;
    flat_tuning.hot_split_threshold = 0;
    flat_tuning.min_delta = 4;
    OfferStore flat(flat_tuning);

    const auto schema = plain_schema();
    std::vector<std::string> live_ids;
    std::uint64_t next_id = 1;

    auto random_offer = [&](const std::string& id) {
      return mk_offer(id, rng.pick(kDiffTypes),
                      static_cast<double>(rng.range(0, 1000)) / 10.0,
                      rng.pick(kDiffRegions), rng.range(0, 1000));
    };

    for (int round = 0; round < 60; ++round) {
      double dice = rng.uniform();
      if (dice < 0.35 || live_ids.empty()) {
        // Single insert or a batch of 1-20.
        std::size_t n = rng.chance(0.5) ? 1 : rng.below(20) + 1;
        std::vector<OfferPtr> batch;
        for (std::size_t i = 0; i < n; ++i) {
          std::string id = "o" + std::to_string(next_id++);
          batch.push_back(random_offer(id));
          live_ids.push_back(id);
        }
        if (batch.size() == 1 && rng.chance(0.5)) {
          sharded.insert(batch[0], schema);
          flat.insert(batch[0], schema);
        } else {
          sharded.insert_batch(batch, schema);
          flat.insert_batch(batch, schema);
        }
      } else if (dice < 0.55) {
        // Withdraw: single, batch, or a miss.
        if (rng.chance(0.2)) {
          EXPECT_FALSE(sharded.erase("missing"));
          EXPECT_FALSE(flat.erase("missing"));
        } else if (rng.chance(0.5)) {
          std::size_t victim = rng.below(live_ids.size());
          EXPECT_TRUE(sharded.erase(live_ids[victim]));
          EXPECT_TRUE(flat.erase(live_ids[victim]));
          live_ids.erase(live_ids.begin() +
                         static_cast<std::ptrdiff_t>(victim));
        } else {
          std::size_t n = std::min<std::size_t>(rng.below(8) + 1,
                                                live_ids.size());
          std::vector<std::string> victims(live_ids.end() -
                                               static_cast<std::ptrdiff_t>(n),
                                           live_ids.end());
          victims.push_back("missing-batch");
          EXPECT_EQ(sharded.withdraw_batch(victims), n);
          EXPECT_EQ(flat.withdraw_batch(victims), n);
          live_ids.resize(live_ids.size() - n);
        }
      } else if (dice < 0.8) {
        // Modify: replace() or modify_batch with fresh attributes.
        std::size_t n = std::min<std::size_t>(rng.below(6) + 1,
                                              live_ids.size());
        std::vector<std::pair<std::string, OfferPtr>> changes;
        for (std::size_t i = 0; i < n; ++i) {
          const std::string& id = live_ids[rng.below(live_ids.size())];
          OfferPtr current = sharded.find(id);
          ASSERT_TRUE(current);
          Offer changed = *current;
          changed.attributes["Price"] =
              Value::real(static_cast<double>(rng.range(0, 1000)) / 10.0);
          changes.emplace_back(id,
                               std::make_shared<const Offer>(std::move(changed)));
        }
        if (changes.size() == 1 && rng.chance(0.5)) {
          EXPECT_TRUE(sharded.replace(changes[0].first, changes[0].second));
          EXPECT_TRUE(flat.replace(changes[0].first, changes[0].second));
        } else {
          // Duplicate ids in one batch are fine (last write wins within the
          // batch on the same bucket clone); both stores see the same list.
          EXPECT_EQ(sharded.modify_batch(changes), flat.modify_batch(changes));
        }
      } else {
        // Lease-style sweep over a random price band.
        double cut = static_cast<double>(rng.range(0, 100));
        auto pred = [cut](const Offer& offer) {
          return offer.attributes.at("Price").as_real() < cut;
        };
        EXPECT_EQ(sharded.erase_if(pred), flat.erase_if(pred));
        std::erase_if(live_ids, [&](const std::string& id) {
          return flat.find(id) == nullptr;
        });
      }

      ASSERT_EQ(sharded.size(), flat.size());
      ASSERT_EQ(contents(sharded, kDiffTypes), contents(flat, kDiffTypes));
    }

    // Full read-surface comparison at the end: finds, per-type listings,
    // and constraint-narrowed collects (sharded results merge on seq).
    for (const std::string& id : live_ids) {
      OfferPtr a = sharded.find(id);
      OfferPtr b = flat.find(id);
      ASSERT_TRUE(a && b) << id;
      EXPECT_EQ(*a, *b);
    }
    for (const std::string& type : kDiffTypes) {
      EXPECT_EQ(contents(sharded, {type}), contents(flat, {type}));
    }
    for (const std::string& text : kDiffConstraints) {
      SCOPED_TRACE("constraint='" + text + "'");
      if (text.empty()) continue;
      Constraint constraint = Constraint::parse(text);
      auto canon = [&](const OfferStore& store) {
        std::vector<StoredOffer> got =
            store.collect(kDiffTypes, constraint, nullptr);
        std::vector<std::pair<std::uint64_t, std::string>> ids;
        for (const StoredOffer& so : got) {
          if (constraint.eval(so.offer->attributes)) {
            ids.emplace_back(so.seq, so.offer->id);
          }
        }
        std::sort(ids.begin(), ids.end());
        return ids;
      };
      EXPECT_EQ(canon(sharded), canon(flat));
    }
  }
}

// ---------------------------------------------------------------------------
// Batch APIs: amortised application, same visible result as single ops.

TEST(StoreSharding, BatchApisMatchSingleOps) {
  OfferStore::Tuning tuning;
  tuning.shard_count = 4;
  OfferStore batched(tuning);
  OfferStore single(tuning);
  const auto schema = plain_schema();

  std::vector<OfferPtr> offers;
  for (int i = 0; i < 100; ++i) {
    offers.push_back(mk_offer("b" + std::to_string(i), "TypeA",
                              static_cast<double>(i), "east", i));
  }
  batched.insert_batch(offers, schema);
  for (const auto& offer : offers) single.insert(offer, schema);
  EXPECT_EQ(batched.size(), 100u);
  EXPECT_EQ(contents(batched, {"TypeA"}), contents(single, {"TypeA"}));

  std::vector<std::string> victims;
  for (int i = 0; i < 40; ++i) victims.push_back("b" + std::to_string(i * 2));
  victims.push_back("no-such-offer");
  EXPECT_EQ(batched.withdraw_batch(victims), 40u);
  for (const auto& id : victims) single.erase(id);
  EXPECT_EQ(contents(batched, {"TypeA"}), contents(single, {"TypeA"}));

  std::vector<std::pair<std::string, OfferPtr>> changes;
  for (int i = 0; i < 20; ++i) {
    std::string id = "b" + std::to_string(i * 2 + 1);
    changes.emplace_back(id, mk_offer(id, "TypeA", 1000.0 + i, "west", i));
  }
  changes.emplace_back("no-such-offer",
                       mk_offer("no-such-offer", "TypeA", 0.0, "east", 0));
  EXPECT_EQ(batched.modify_batch(changes), 20u);
  changes.pop_back();
  for (auto& [id, offer] : changes) EXPECT_TRUE(single.replace(id, offer));
  EXPECT_EQ(contents(batched, {"TypeA"}), contents(single, {"TypeA"}));

  // Batches must keep the store-wide export order: ids came out seq-sorted
  // identical above; also sanity-check modify kept its original position.
  auto view = contents(batched, {"TypeA"});
  EXPECT_TRUE(std::is_sorted(view.begin(), view.end()));
}

// ---------------------------------------------------------------------------
// Hot-type splitting: above the threshold one type spreads over shards.

TEST(StoreSharding, HotTypeSplitsAcrossShards) {
  OfferStore::Tuning tuning;
  tuning.shard_count = 8;
  tuning.hot_split_threshold = 32;
  OfferStore store(tuning);
  const auto schema = plain_schema();

  for (int i = 0; i < 200; ++i) {
    store.insert(mk_offer("h" + std::to_string(i), "HotType",
                          static_cast<double>(i), "east", i),
                 schema);
  }
  auto stats = store.shard_stats();
  ASSERT_EQ(stats.size(), 8u);
  std::size_t shards_with_offers = 0;
  std::size_t total = 0;
  for (const auto& s : stats) {
    if (s.offers > 0) ++shards_with_offers;
    total += s.offers;
  }
  EXPECT_EQ(total, 200u);
  // 32 land on the home shard, the next 168 hash-split by id: expect a
  // real spread, not a single hot shard.
  EXPECT_GE(shards_with_offers, 4u);

  // Reads see the split type whole, in export order, on every surface.
  auto view = contents(store, {"HotType"});
  ASSERT_EQ(view.size(), 200u);
  EXPECT_TRUE(std::is_sorted(view.begin(), view.end()));
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(store.find("h" + std::to_string(i)));
  }
  // A cold type keeps homing on one shard.
  for (int i = 0; i < 8; ++i) {
    store.insert(mk_offer("c" + std::to_string(i), "ColdType",
                          static_cast<double>(i), "west", i),
                 schema);
  }
  stats = store.shard_stats();
  std::size_t cold_shards = 0;
  for (const auto& s : stats) {
    if (s.types >= 2) ++cold_shards;  // shard holding both types
  }
  EXPECT_LE(cold_shards, 1u);
}

// ---------------------------------------------------------------------------
// Epoch reclamation: limbo stays bounded without readers, drains after
// pinned readers unpin, and pinned readers keep retired states reachable.

TEST(StoreSharding, EpochReclamationBoundsLimbo) {
  OfferStore::Tuning tuning;
  tuning.shard_count = 2;
  OfferStore store(tuning);
  const auto schema = plain_schema();

  for (int i = 0; i < 500; ++i) {
    store.insert(mk_offer("e" + std::to_string(i), "TypeA",
                          static_cast<double>(i), "east", i),
                 schema);
  }
  EXPECT_GE(store.epoch(), 500u);
  EXPECT_EQ(store.epoch_lag(), 0u);
  for (const auto& s : store.shard_stats()) {
    // A writer cannot reclaim its own retirement (it pins an epoch below
    // its own publication tag), so one state per shard may linger until
    // the next write — but nothing accumulates.
    EXPECT_LE(s.limbo, 2u);
  }

  // A pinned reader blocks reclamation past its epoch...
  auto pin = OfferStoreTestPeer::pin(store);
  for (int i = 0; i < 50; ++i) {
    store.insert(mk_offer("p" + std::to_string(i), "TypeA",
                          static_cast<double>(i), "west", i),
                 schema);
  }
  EXPECT_GT(store.epoch_lag(), 0u);
  std::size_t limbo_pinned = 0;
  for (const auto& s : store.shard_stats()) limbo_pinned += s.limbo;
  EXPECT_GE(limbo_pinned, 25u);  // most retirements parked behind the pin

  // ...and releasing it lets the next publication drain the backlog.
  pin.reset();
  EXPECT_EQ(store.epoch_lag(), 0u);
  store.insert(mk_offer("drain-a", "TypeA", 1.0, "east", 1), schema);
  store.insert(mk_offer("drain-b", "TypeB", 1.0, "east", 1), schema);
  std::size_t limbo_after = 0;
  for (const auto& s : store.shard_stats()) limbo_after += s.limbo;
  EXPECT_LE(limbo_after, 4u);
}

TEST(StoreSharding, ReaderSlotExhaustionFallsBackSafely) {
  OfferStore store(OfferStore::Tuning{});
  const auto schema = plain_schema();
  store.insert(mk_offer("x1", "TypeA", 1.0, "east", 1), schema);

  // Saturate all 64 reader slots, plus a few fallback pins on top.
  std::vector<std::unique_ptr<OfferStoreTestPeer::ReadGuard>> pins;
  for (int i = 0; i < 70; ++i) pins.push_back(OfferStoreTestPeer::pin(store));

  // Reads and writes still work while every slot is taken.
  EXPECT_TRUE(store.find("x1"));
  store.insert(mk_offer("x2", "TypeA", 2.0, "west", 2), schema);
  EXPECT_TRUE(store.find("x2"));
  EXPECT_EQ(contents(store, {"TypeA"}).size(), 2u);

  pins.clear();
  store.insert(mk_offer("x3", "TypeA", 3.0, "east", 3), schema);
  EXPECT_EQ(store.epoch_lag(), 0u);
}

// ---------------------------------------------------------------------------
// Regression (bugfix sweep): erase()'s mismatch path must clean the id map.

TEST(StoreSharding, EraseCleansStaleIdMapEntry) {
  OfferStore store(OfferStore::Tuning{});
  const auto schema = plain_schema();
  store.insert(mk_offer("real", "TypeA", 1.0, "east", 1), schema);

  // A stale map entry pointing at an existing bucket that never had the id.
  OfferStoreTestPeer::inject_stale_id(store, "ghost-a", "TypeA", 0);
  ASSERT_TRUE(OfferStoreTestPeer::id_map_has(store, "ghost-a"));
  EXPECT_FALSE(store.erase("ghost-a"));
  // The fix: the mismatch path cleans the entry instead of leaving every
  // later find/erase probing a bucket that will never know the id.
  EXPECT_FALSE(OfferStoreTestPeer::id_map_has(store, "ghost-a"));
  EXPECT_FALSE(store.erase("ghost-a"));  // now a plain miss
  EXPECT_FALSE(store.find("ghost-a"));

  // Same for an entry pointing at a type with no bucket at all.
  OfferStoreTestPeer::inject_stale_id(store, "ghost-b", "NoSuchType", 0);
  EXPECT_FALSE(store.erase("ghost-b"));
  EXPECT_FALSE(OfferStoreTestPeer::id_map_has(store, "ghost-b"));

  // And for an id whose base slot is already tombstoned: re-appearing in
  // the map (e.g. a stale entry surviving a sweep) must not double-count
  // the withdrawal or resurrect the offer.
  store.insert(mk_offer("dead1", "TypeA", 2.0, "west", 2), schema);
  // Push it into the base so erase tombstones instead of delta-removal:
  for (int i = 0; i < 64; ++i) {
    store.insert(mk_offer("fill" + std::to_string(i), "TypeA", 1.0, "east", 1),
                 schema);
  }
  ASSERT_TRUE(store.erase("dead1"));
  const std::size_t size_after = store.size();
  OfferStoreTestPeer::inject_stale_id(store, "dead1", "TypeA", 0);
  EXPECT_FALSE(store.erase("dead1"));  // dead slot = mismatch, not a removal
  EXPECT_FALSE(OfferStoreTestPeer::id_map_has(store, "dead1"));
  EXPECT_FALSE(store.find("dead1"));  // find checks tombstones too
  EXPECT_EQ(store.size(), size_after);

  // The real offer was untouched throughout.
  EXPECT_TRUE(store.find("real"));
}

// ---------------------------------------------------------------------------
// Regression (bugfix sweep): NaN range bounds match nothing.

TEST(StoreSharding, OrdRangeNaNBoundMatchesNothing) {
  std::vector<std::pair<double, std::uint32_t>> ord = {
      {1.0, 0}, {2.0, 1}, {2.0, 2}, {5.0, 3}, {8.0, 4}};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (auto bound : {IndexHint::Bound::Lt, IndexHint::Bound::Le,
                     IndexHint::Bound::Gt, IndexHint::Bound::Ge}) {
    auto [lo, hi] = store_detail::ord_range(ord, static_cast<int>(bound), nan);
    EXPECT_EQ(lo, hi) << "NaN bound must select the empty span";
  }
  // Infinities keep working as saturated bounds.
  auto [lo_inf, hi_inf] = store_detail::ord_range(
      ord, static_cast<int>(IndexHint::Bound::Lt),
      std::numeric_limits<double>::infinity());
  EXPECT_EQ(lo_inf, 0u);
  EXPECT_EQ(hi_inf, ord.size());
}

TEST(StoreSharding, OrdRangeDifferentialVsNaiveScan) {
  Rng rng(99);
  const double kSpecials[] = {std::numeric_limits<double>::quiet_NaN(),
                              std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity(), 0.0,
                              -0.0};
  for (int round = 0; round < 200; ++round) {
    std::vector<std::pair<double, std::uint32_t>> ord;
    const std::size_t n = rng.below(20);
    for (std::size_t i = 0; i < n; ++i) {
      ord.emplace_back(static_cast<double>(rng.range(-50, 50)),
                       static_cast<std::uint32_t>(i));
    }
    std::sort(ord.begin(), ord.end());
    double bound_value = rng.chance(0.3)
                             ? kSpecials[rng.below(5)]
                             : static_cast<double>(rng.range(-60, 60));
    for (auto bound : {IndexHint::Bound::Lt, IndexHint::Bound::Le,
                       IndexHint::Bound::Gt, IndexHint::Bound::Ge}) {
      auto [lo, hi] =
          store_detail::ord_range(ord, static_cast<int>(bound), bound_value);
      ASSERT_LE(lo, hi);
      ASSERT_LE(hi, ord.size());
      std::multiset<std::uint32_t> got;
      for (std::size_t i = lo; i < hi; ++i) got.insert(ord[i].second);
      std::multiset<std::uint32_t> want;
      for (const auto& [value, slot] : ord) {
        bool match = false;
        switch (bound) {
          case IndexHint::Bound::Lt: match = value < bound_value; break;
          case IndexHint::Bound::Le: match = value <= bound_value; break;
          case IndexHint::Bound::Gt: match = value > bound_value; break;
          case IndexHint::Bound::Ge: match = value >= bound_value; break;
        }
        if (match) want.insert(slot);
      }
      EXPECT_EQ(got, want) << "bound kind " << static_cast<int>(bound)
                           << " value " << bound_value;
    }
  }
}

TEST(StoreSharding, OverflowingNumericLiteralsDoNotEscapeParser) {
  // The lexer has no exponent notation, but a 400-digit plain decimal
  // still overflows double: std::stod would throw std::out_of_range
  // straight through import(); the parser must saturate to infinity
  // instead (strtod semantics) so the constraint still evaluates.
  const std::string huge = "1" + std::string(400, '0') + ".0";
  Constraint c = Constraint::parse("Price < " + huge);
  AttrMap attrs;
  attrs["Price"] = Value::real(1.0);
  EXPECT_TRUE(c.eval(attrs));
  Constraint c2 = Constraint::parse("Price > -" + huge);
  EXPECT_TRUE(c2.eval(attrs));
  // An out-of-range integer literal is a parse error, not a std::logic_error.
  EXPECT_THROW(Constraint::parse("Capacity == 99999999999999999999"),
               ParseError);
}

// ---------------------------------------------------------------------------
// Regression (bugfix sweep): required_attrs must not reset (widen) while
// dead-but-unmerged base slots remain.

TEST(StoreSharding, RequiredAttrsResetWaitsForDeadSlots) {
  OfferStore::Tuning tuning;
  tuning.shard_count = 1;
  OfferStore store(tuning);

  // Bucket state: one dead-but-unmerged base slot, live == 0, delta empty,
  // and required_attrs narrowed to {P} by some earlier laxer schema.
  Offer stale;
  stale.id = "stale";
  stale.service_type = "GuardType";
  stale.ref = {"ref-stale", "inproc://host", "GuardType"};
  stale.attributes["P"] = Value::real(1.0);
  OfferStoreTestPeer::plant_dead_bucket(
      store, std::make_shared<const Offer>(std::move(stale)), {"P"});

  // A new insert under a stricter schema (P and Q required): the bucket is
  // NOT empty (the dead slot is still indexed), so the intersection rule
  // applies — required_attrs stays {P}.  The pre-fix reset would have
  // widened it to {P, Q}, promising the planner an exactness the unmerged
  // base cannot honour.
  std::vector<AttributeDef> strict = {
      {"P", TypeDesc::float_(), true},
      {"Q", TypeDesc::float_(), true},
  };
  Offer fresh;
  fresh.id = "fresh";
  fresh.service_type = "GuardType";
  fresh.ref = {"ref-fresh", "inproc://host", "GuardType"};
  fresh.attributes["P"] = Value::real(2.0);
  fresh.attributes["Q"] = Value::real(3.0);
  store.insert(std::make_shared<const Offer>(std::move(fresh)), strict);

  EXPECT_EQ(OfferStoreTestPeer::required_attrs_of(store, "GuardType"),
            (std::unordered_set<std::string>{"P"}));

  // Once the bucket is *fully* empty (erase drains delta, no dead slots
  // linger after the too-dead merge), the reset applies again.
  ASSERT_TRUE(store.erase("fresh"));
  Offer fresh2;
  fresh2.id = "fresh2";
  fresh2.service_type = "GuardType";
  fresh2.ref = {"ref-fresh2", "inproc://host", "GuardType"};
  fresh2.attributes["P"] = Value::real(4.0);
  fresh2.attributes["Q"] = Value::real(5.0);
  store.insert(std::make_shared<const Offer>(std::move(fresh2)), strict);
  // The fabricated dead slot merged away on the erase (too-dead policy), so
  // by now the bucket was genuinely empty and the stricter schema applies.
  EXPECT_EQ(OfferStoreTestPeer::required_attrs_of(store, "GuardType"),
            (std::unordered_set<std::string>{"P", "Q"}));
}

// ---------------------------------------------------------------------------
// Concurrency: per-shard writers + epoch-pinned readers under TSan.

TEST(StoreShardingStress, ConcurrentWritersReadersAndSweeps) {
  OfferStore::Tuning tuning;
  tuning.shard_count = 4;
  tuning.hot_split_threshold = 64;
  tuning.min_delta = 8;  // frequent merges: exercise rebuild under load
  OfferStore store(tuning);
  const auto schema = plain_schema();

  constexpr int kWriters = 2;
  constexpr int kOpsPerWriter = 400;
  std::atomic<bool> stop{false};
  std::mutex ids_mutex;
  std::vector<std::string> shared_ids;
  std::atomic<std::uint64_t> inserted{0}, removed{0};

  auto writer = [&](int w) {
    Rng rng(1000 + static_cast<std::uint64_t>(w));
    std::uint64_t n = 0;
    for (int op = 0; op < kOpsPerWriter; ++op) {
      double dice = rng.uniform();
      const std::string type = rng.chance(0.5) ? "Hot" : ("Cold" + std::to_string(w));
      if (dice < 0.5) {
        std::size_t batch = rng.chance(0.3) ? rng.below(8) + 2 : 1;
        std::vector<OfferPtr> offers;
        std::vector<std::string> ids;
        for (std::size_t i = 0; i < batch; ++i) {
          std::string id =
              "w" + std::to_string(w) + "-" + std::to_string(n++);
          offers.push_back(mk_offer(id, type,
                                    static_cast<double>(rng.range(0, 1000)),
                                    rng.pick(kDiffRegions), rng.range(0, 100)));
          ids.push_back(std::move(id));
        }
        if (offers.size() == 1) {
          store.insert(offers[0], schema);
        } else {
          store.insert_batch(offers, schema);
        }
        inserted.fetch_add(offers.size());
        std::lock_guard lock(ids_mutex);
        for (auto& id : ids) shared_ids.push_back(std::move(id));
      } else if (dice < 0.75) {
        std::vector<std::string> victims;
        {
          std::lock_guard lock(ids_mutex);
          std::size_t take = std::min<std::size_t>(rng.below(4) + 1,
                                                   shared_ids.size());
          for (std::size_t i = 0; i < take; ++i) {
            victims.push_back(shared_ids.back());
            shared_ids.pop_back();
          }
        }
        if (victims.empty()) continue;
        if (victims.size() == 1 && rng.chance(0.5)) {
          if (store.erase(victims[0])) removed.fetch_add(1);
        } else {
          removed.fetch_add(store.withdraw_batch(victims));
        }
      } else {
        std::vector<std::pair<std::string, OfferPtr>> changes;
        {
          std::lock_guard lock(ids_mutex);
          if (shared_ids.empty()) continue;
          // Modify ids we still own (they may race a withdraw; both
          // outcomes are legal, modify_batch just skips the missing).
          for (std::size_t i = 0; i < 2 && i < shared_ids.size(); ++i) {
            const std::string& id =
                shared_ids[rng.below(shared_ids.size())];
            changes.emplace_back(
                id, mk_offer(id, "Hot",
                             static_cast<double>(rng.range(0, 1000)),
                             rng.pick(kDiffRegions), rng.range(0, 100)));
          }
        }
        store.modify_batch(std::move(changes));
      }
    }
  };

  auto reader = [&](int r) {
    Rng rng(2000 + static_cast<std::uint64_t>(r));
    Constraint constraint = Constraint::parse("Price < 500");
    std::vector<std::string> types = {"Hot", "Cold0", "Cold1"};
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<StoredOffer> got = store.collect(types, constraint, nullptr);
      for (const StoredOffer& so : got) {
        // Epoch-pinned reads must always see complete, immutable offers.
        ASSERT_FALSE(so.offer->id.empty());
        ASSERT_EQ(so.offer->attributes.count("Price"), 1u);
      }
      store.collect_all(types);
      std::string probe;
      {
        std::lock_guard lock(ids_mutex);
        if (!shared_ids.empty()) probe = shared_ids[rng.below(shared_ids.size())];
      }
      if (!probe.empty()) store.find(probe);
      store.shard_stats();
      store.epoch_lag();
      store.size();
    }
  };

  auto sweeper = [&] {
    Rng rng(3000);
    while (!stop.load(std::memory_order_acquire)) {
      double cut = static_cast<double>(rng.range(0, 50));
      std::size_t swept = store.erase_if([cut](const Offer& offer) {
        return offer.attributes.at("Price").as_real() < cut;
      });
      removed.fetch_add(swept);
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) threads.emplace_back(writer, w);
  for (int r = 0; r < 2; ++r) threads.emplace_back(reader, r);
  threads.emplace_back(sweeper);
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // Quiescent consistency: the id map, the buckets, and the op counters
  // all agree.  (The sweeper may have raced the final erases; recount.)
  std::vector<std::string> types = {"Hot", "Cold0", "Cold1"};
  auto view = contents(store, types);
  EXPECT_EQ(view.size(), store.size());
  EXPECT_EQ(view.size(), inserted.load() - removed.load());
  std::set<std::string> seen;
  for (const auto& [seq, id] : view) {
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
    OfferPtr found = store.find(id);
    ASSERT_TRUE(found) << id;
    EXPECT_EQ(found->id, id);
  }
  EXPECT_EQ(store.epoch_lag(), 0u);
  // Reclamation only piggy-backs on publication, so retirements parked
  // while the readers were pinned stay in limbo once the threads stop —
  // an explicit maintenance sweep must free every one of them now that
  // nothing is pinned.
  EXPECT_EQ(store.reclaim_retired(), 0u);
  std::size_t limbo = 0;
  for (const auto& s : store.shard_stats()) limbo += s.limbo;
  EXPECT_EQ(limbo, 0u);
}

}  // namespace
}  // namespace cosm::trader
