// Deadline-aware retry with jittered exponential backoff.
//
// A RetryPolicy describes how a failed call may be reissued: how many
// attempts in total, how the backoff between them grows, how much jitter
// de-synchronises retrying clients, and whether non-idempotent requests are
// eligible at all.  Every decision honours the caller's CallContext — a
// retry is never attempted once the deadline has passed, and a backoff that
// would sleep past the deadline aborts instead, surfacing the last failure.
//
// Two layers use it differently:
//   * TcpNetwork retries *sends* (dial + frame write).  A request that never
//     reached the wire is always safe to reissue, so the transport policy
//     ignores the idempotency flag.
//   * RpcChannel retries whole round trips.  A reissued request re-uses the
//     original request id and session, so against an at-most-once server
//     (ServerOptions::at_most_once) the replay cache answers duplicates from
//     the cached response frame and the handler runs at most once.  Without
//     that guarantee only calls marked idempotent are retried (the
//     `only_idempotent` flag).

#pragma once

#include <chrono>
#include <cstdint>

#include "common/rng.h"

namespace cosm::rpc {

struct RetryPolicy {
  /// Total attempts including the first; 1 = retries disabled.
  int max_attempts = 1;
  /// Backoff before the first retry; doubles (see `multiplier`) per retry.
  std::chrono::milliseconds initial_backoff{5};
  /// Growth factor of the backoff between consecutive retries.
  double multiplier = 2.0;
  /// Upper bound on a single backoff sleep.
  std::chrono::milliseconds max_backoff{250};
  /// Jitter fraction: the actual sleep is uniform in
  /// [nominal*(1-jitter), nominal*(1+jitter)).
  double jitter = 0.5;
  /// Cap on how long any single attempt may wait before it is abandoned and
  /// retried (0 = each attempt may consume the whole remaining deadline).
  /// Without it a *dropped* request burns the entire budget on attempt one.
  std::chrono::milliseconds attempt_timeout{0};
  /// When true, requests not marked idempotent are never reissued.
  bool only_idempotent = true;

  bool enabled() const noexcept { return max_attempts > 1; }

  /// Jittered backoff before the retry following attempt number `attempt`
  /// (1-based count of attempts already made).
  std::chrono::milliseconds backoff_for(int attempt, Rng& rng) const;

  /// Sensible default for request-level retries: 3 attempts, 5 ms..250 ms.
  static RetryPolicy standard();

  /// Default for transport send retries (dial + write): 3 quick attempts,
  /// 1 ms..20 ms, idempotency irrelevant (the request never hit the wire).
  static RetryPolicy transport();
};

/// Outcome bookkeeping for one retried call (instrumentation).
struct RetryStats {
  int attempts = 0;
  std::chrono::milliseconds backoff_total{0};
};

}  // namespace cosm::rpc
