// Concurrency behaviour of the async call core: parallel dispatch on both
// transports, deadline expiry and propagation, parallel federation fan-out
// and parallel multicast.  Run under -DCOSM_SANITIZE=thread by
// tools/run_sanitizers.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/error.h"
#include "rpc/channel.h"
#include "rpc/inproc.h"
#include "rpc/multicast.h"
#include "rpc/server.h"
#include "rpc/tcp.h"
#include "sidl/parser.h"
#include "trader/trader.h"

namespace cosm::rpc {
namespace {

using wire::Value;
using namespace std::chrono_literals;

/// Tracks how many handler executions overlap in time.
struct ConcurrencyGauge {
  std::atomic<int> current{0};
  std::atomic<int> peak{0};

  void enter() {
    int now = current.fetch_add(1, std::memory_order_acq_rel) + 1;
    int seen = peak.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak.compare_exchange_weak(seen, now, std::memory_order_acq_rel)) {
    }
  }
  void leave() { current.fetch_sub(1, std::memory_order_acq_rel); }
};

sidl::SidPtr conc_sid() {
  return std::make_shared<sidl::Sid>(sidl::parse_sid(R"(
    module Conc {
      interface I {
        long Add([in] long a, [in] long b);
        long Work([in] long ms);
      };
    };
  )"));
}

ServiceObjectPtr conc_service(ConcurrencyGauge* gauge = nullptr) {
  auto object = std::make_shared<ServiceObject>(conc_sid());
  object->on("Add", [](const std::vector<Value>& args) {
    return Value::integer(args.at(0).as_int() + args.at(1).as_int());
  });
  object->on("Work", [gauge](const std::vector<Value>& args) {
    if (gauge) gauge->enter();
    std::this_thread::sleep_for(std::chrono::milliseconds(args.at(0).as_int()));
    if (gauge) gauge->leave();
    return Value::integer(args.at(0).as_int());
  });
  return object;
}

/// N client threads, each with its own channel, hammering one server.
void hammer(Network& net, std::size_t threads, std::size_t calls_per_thread) {
  RpcServer server(net, "host");
  auto ref = server.add(conc_service());
  std::atomic<std::size_t> wrong{0};
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&net, &ref, &wrong, t, calls_per_thread] {
      RpcChannel channel(net, ref);
      for (std::size_t i = 0; i < calls_per_thread; ++i) {
        auto a = static_cast<std::int64_t>(t), b = static_cast<std::int64_t>(i);
        Value sum = channel.call("Add", {Value::integer(a), Value::integer(b)});
        if (sum.as_int() != a + b) wrong.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(server.requests_handled(), threads * calls_per_thread);
  EXPECT_EQ(server.faults_returned(), 0u);
}

TEST(Concurrency, ManyClientsOneServerInProc) {
  InProcNetwork net;
  hammer(net, 8, 25);
}

TEST(Concurrency, ManyClientsOneServerTcp) {
  TcpNetwork net;
  hammer(net, 8, 10);
}

/// Blocking callers must overlap inside the server, not serialise.
void expect_overlap(Network& net) {
  ConcurrencyGauge gauge;
  RpcServer server(net, "host");
  auto ref = server.add(conc_service(&gauge));
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&net, &ref] {
      RpcChannel channel(net, ref);
      channel.call("Work", {Value::integer(100)});
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_GE(gauge.peak.load(), 2);
}

TEST(Concurrency, DispatchOverlapsInProc) {
  InProcNetwork net;
  expect_overlap(net);
}

TEST(Concurrency, DispatchOverlapsTcp) {
  TcpNetwork net;
  expect_overlap(net);
}

/// A call whose deadline passes must return a timeout error, not hang, and
/// must not tear down the transport for later calls.
void expect_timeout(Network& net) {
  RpcServer server(net, "host");
  auto ref = server.add(conc_service());
  RpcChannel slow(net, ref, ChannelOptions{50ms});
  auto start = std::chrono::steady_clock::now();
  try {
    slow.call("Work", {Value::integer(400)});
    FAIL() << "expected a timeout";
  } catch (const RpcError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 350ms);  // returned before the handler even finished

  // The transport survives the abandoned call.
  RpcChannel ok(net, ref);
  EXPECT_EQ(ok.call("Add", {Value::integer(2), Value::integer(3)}).as_int(), 5);
}

TEST(Concurrency, DeadlineExpiryReturnsTimeoutInProc) {
  InProcNetwork net;
  expect_timeout(net);
}

TEST(Concurrency, DeadlineExpiryReturnsTimeoutTcp) {
  TcpNetwork net;
  expect_timeout(net);
}

TEST(Concurrency, DeadlineShrinksAcrossNestedCalls) {
  // front's handler calls back over a channel with the default (5 s)
  // timeout.  The client gives the whole chain 150 ms; the propagated
  // context must shrink the nested call's budget so the chain fails fast
  // instead of waiting out the nested timeout.
  InProcNetwork net;
  RpcServer server(net, "host");
  auto back_ref = server.add(conc_service());

  auto front = std::make_shared<ServiceObject>(conc_sid());
  front->on("Add", [](const std::vector<Value>&) { return Value::integer(0); });
  front->on("Work", [&net, &back_ref](const std::vector<Value>& args) {
    RpcChannel nested(net, back_ref);  // default 5 s timeout
    return nested.call("Work", {args.at(0)});
  });
  auto front_ref = server.add(front);

  RpcChannel channel(net, front_ref, ChannelOptions{150ms});
  auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(channel.call("Work", {Value::integer(2000)}), Error);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 1500ms);  // far below the nested 5 s / 2 s sleep
}

TEST(Concurrency, ParallelMulticastOverlaps) {
  InProcNetwork net;
  ConcurrencyGauge gauge;
  RpcServer server(net, "host");
  std::vector<sidl::ServiceRef> members;
  for (int i = 0; i < 3; ++i) members.push_back(server.add(conc_service(&gauge)));

  auto start = std::chrono::steady_clock::now();
  auto outcomes = multicast_call(net, members, "Work", {Value::integer(100)});
  auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_EQ(outcomes.size(), 3u);
  for (const auto& outcome : outcomes) EXPECT_TRUE(outcome.ok());
  EXPECT_GE(gauge.peak.load(), 2);
  EXPECT_LT(elapsed, 290ms);  // three sequential 100 ms sleeps would exceed
}

// --- federation fan-out ---

/// Gateway stub: sleeps, records overlap and the forwarded hop limit, then
/// returns canned offers.
class StubGateway final : public trader::TraderGateway {
 public:
  StubGateway(std::string offer_id, ConcurrencyGauge& gauge,
              std::atomic<int>& seen_hop_limit)
      : offer_id_(std::move(offer_id)),
        gauge_(gauge),
        seen_hop_limit_(seen_hop_limit) {}

  std::vector<trader::Offer> import(const trader::ImportRequest& request) override {
    gauge_.enter();
    std::this_thread::sleep_for(100ms);
    gauge_.leave();
    seen_hop_limit_.store(request.hop_limit);
    trader::Offer offer;
    offer.id = offer_id_;
    offer.service_type = request.service_type;
    offer.ref = sidl::ServiceRef{"svc-" + offer_id_, "inproc://x", "I"};
    return {offer};
  }
  std::string describe() const override { return "stub:" + offer_id_; }

 private:
  std::string offer_id_;
  ConcurrencyGauge& gauge_;
  std::atomic<int>& seen_hop_limit_;
};

TEST(Concurrency, ParallelFederationFanOut) {
  trader::Trader root("root");
  root.types().add({"Svc", "", {}});
  ConcurrencyGauge gauge;
  std::atomic<int> hop_a{-7}, hop_b{-7}, hop_c{-7};
  root.link("a", std::make_shared<StubGateway>("A/1", gauge, hop_a));
  root.link("b", std::make_shared<StubGateway>("B/1", gauge, hop_b));
  root.link("c", std::make_shared<StubGateway>("C/1", gauge, hop_c));

  trader::ImportRequest request;
  request.service_type = "Svc";
  request.hop_limit = 3;
  auto start = std::chrono::steady_clock::now();
  auto offers = root.import(request);
  auto elapsed = std::chrono::steady_clock::now() - start;

  // All three links answered, merged in link order, hop budget decremented.
  ASSERT_EQ(offers.size(), 3u);
  EXPECT_EQ(offers[0].id, "A/1");
  EXPECT_EQ(offers[1].id, "B/1");
  EXPECT_EQ(offers[2].id, "C/1");
  EXPECT_EQ(hop_a.load(), 2);
  EXPECT_EQ(hop_b.load(), 2);
  EXPECT_EQ(hop_c.load(), 2);
  // ...and they were queried concurrently, not one after another.
  EXPECT_GE(gauge.peak.load(), 2);
  EXPECT_LT(elapsed, 290ms);

  // hop_limit 0 keeps the import local: the stubs are not consulted again.
  hop_a.store(-7);
  request.hop_limit = 0;
  EXPECT_EQ(root.import(request).size(), 0u);
  EXPECT_EQ(hop_a.load(), -7);
}

TEST(Concurrency, ExpiredImportDeadlineThrows) {
  trader::Trader root("root");
  root.types().add({"Svc", "", {}});
  trader::ImportRequest request;
  request.service_type = "Svc";
  request.deadline = std::chrono::steady_clock::now() - 1ms;
  EXPECT_THROW(root.import(request), RpcError);
}

}  // namespace
}  // namespace cosm::rpc
