# Empty dependencies file for test_dynamic_properties.
# This may be replaced when dependencies are built.
