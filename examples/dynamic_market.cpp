// Dynamic service properties: the trader consults exporters at import time.
//
// Two rental providers export offers whose CarsAvailable property is
// *dynamic*: instead of a stored value, the offer names an operation
// (CurrentAvailability) that the trader invokes on the live service during
// matching.  An importer asking for "CarsAvailable > 0" therefore sees the
// market as it is *now* — bookings made between imports change the result
// with no re-export.  Offers also carry leases: an expired offer vanishes
// from the market when the trader's clock passes it.

#include <iostream>

#include "core/generic_client.h"
#include "core/runtime.h"
#include "rpc/inproc.h"
#include "services/car_rental.h"
#include "sidl/parser.h"
#include "uims/editor.h"

using namespace cosm;
using wire::Value;

namespace {

/// A car-rental provider extended with a CurrentAvailability operation the
/// trader can poll.
rpc::ServiceObjectPtr availability_provider(const services::CarRentalConfig& config,
                                            std::shared_ptr<std::int64_t> fleet) {
  std::string sidl_text = services::car_rental_sidl(config);
  // Extend the generated SID with the side-band availability operation.
  sidl_text.insert(sidl_text.rfind("};"),
                   "  interface COSM_Management {\n"
                   "    long CurrentAvailability();\n"
                   "  };\n");
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(sidl_text));
  auto object = std::make_shared<rpc::ServiceObject>(sid);

  object->on("CurrentAvailability", [fleet](const std::vector<Value>&) {
    return Value::integer(*fleet);
  });
  object->on("SelectCar", [fleet, config](const std::vector<Value>& args) {
    bool available = *fleet > 0 && args.at(0).at("days").as_int() > 0;
    return Value::structure(
        "SelectCarReturn_t",
        {{"available", Value::boolean(available)},
         {"total_charge",
          Value::real(config.charge_per_day *
                      static_cast<double>(args.at(0).at("days").as_int()))},
         {"offer_code", Value::string(available ? "quote-" + config.name : "")}});
  });
  object->on("BookCar", [fleet](const std::vector<Value>&) {
    bool ok = *fleet > 0;
    if (ok) --*fleet;
    return Value::structure("BookCarResult_t",
                            {{"confirmed", Value::boolean(ok)},
                             {"booking_id", Value::integer(ok ? *fleet + 1 : 0)}});
  });
  object->on("ListModels", [config](const std::vector<Value>&) {
    std::vector<Value> models;
    for (const auto& m : config.models) {
      models.push_back(Value::enumerated("CarModel_t", m));
    }
    return Value::sequence(std::move(models));
  });
  return object;
}

std::size_t live_offers(core::CosmRuntime& runtime) {
  trader::ImportRequest request;
  request.service_type = services::car_rental_service_type_name();
  request.constraint = "CarsAvailable > 0";
  request.preference = "min ChargePerDay";
  return runtime.trader().import(request).size();
}

}  // namespace

int main() {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);

  // Canonical type, with CarsAvailable declared (it will be dynamic).
  trader::ServiceType type = services::canonical_car_rental_type();
  type.attributes.push_back({"CarsAvailable", sidl::TypeDesc::int_(), true});
  runtime.trader().types().add(type);

  // Two providers with tiny live fleets.
  auto fleet_a = std::make_shared<std::int64_t>(2);
  auto fleet_b = std::make_shared<std::int64_t>(1);
  services::CarRentalConfig a, b;
  a.name = "AlsterCars";
  a.charge_per_day = 55;
  b.name = "ElbeMobil";
  b.charge_per_day = 70;

  auto ref_a = runtime.host(availability_provider(a, fleet_a));
  auto ref_b = runtime.host(availability_provider(b, fleet_b));

  auto export_with_availability = [&](const services::CarRentalConfig& cfg,
                                      const sidl::ServiceRef& ref) {
    trader::AttrMap attrs = {
        {"CarModel", Value::enumerated("CarModel_t", cfg.models.front())},
        {"AverageMilage", Value::integer(cfg.average_milage)},
        {"ChargePerDay", Value::real(cfg.charge_per_day)},
        {"ChargeCurrency", Value::string(cfg.currency)},
    };
    return runtime.trader().export_offer(
        services::car_rental_service_type_name(), ref, std::move(attrs),
        {{"CarsAvailable", "CurrentAvailability"}});
  };
  auto offer_a = export_with_availability(a, ref_a);
  export_with_availability(b, ref_b);

  std::cout << "offers with live availability: " << live_offers(runtime)
            << " (fleets: " << *fleet_a << " + " << *fleet_b << ")\n";

  // Book AlsterCars dry through the generic client.
  core::GenericClient client = runtime.make_client();
  core::Binding rental = client.bind(ref_a);
  for (int i = 0; i < 2; ++i) {
    uims::FormEditor select = rental.edit("SelectCar");
    select.set("selection.model", "AUDI");
    select.set("selection.booking_date", "1994-07-01");
    select.set("selection.days", "2");
    Value quote = rental.invoke_form(select);
    uims::FormEditor book = rental.edit("BookCar");
    book.set("booking.offer_code", quote.at("offer_code").as_string());
    book.set("booking.customer", "walk-in");
    rental.invoke_form(book);
  }
  std::cout << "after booking AlsterCars out (fleet " << *fleet_a
            << "): matching offers: " << live_offers(runtime) << "\n";
  std::cout << "trader issued " << runtime.trader().dynamic_fetches()
            << " dynamic property fetches so far\n";

  // Leases: AlsterCars' offer expires at hour 24; ElbeMobil renews.
  runtime.trader().set_lease(offer_a, 24);
  runtime.trader().advance_clock(25);
  std::cout << "\nafter 25h (AlsterCars lease expired): offers in market: "
            << runtime.trader().offer_count() << ", swept total: "
            << runtime.trader().offers_expired_total() << "\n";
  return 0;
}
