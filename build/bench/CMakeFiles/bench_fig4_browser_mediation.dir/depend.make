# Empty dependencies file for bench_fig4_browser_mediation.
# This may be replaced when dependencies are built.
