// Per-call context: deadline and hop budget, propagated along the call path.
//
// A CallContext travels with every RPC: the client stamps the remaining
// deadline budget (milliseconds) into the request frame, the server
// reconstructs an absolute deadline on arrival and installs it in a
// thread-local scope around dispatch.  Any call the handler issues downstream
// (trader federation hops, dynamic-property fetches, cascaded browsers)
// inherits the shrunken remainder automatically — a chain of hops shares one
// budget instead of multiplying per-hop timeouts.
//
// The hop budget mirrors the trader's federation hop limit at the transport
// level: each forwarded hop decrements it, and a server refuses requests
// whose budget is exhausted, bounding propagation even if an upper layer
// forgets to.

#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace cosm::rpc {

struct CallContext {
  using Clock = std::chrono::steady_clock;

  /// Absolute deadline; time_point{} (the epoch) means "no deadline".
  Clock::time_point deadline{};
  /// Remaining federation/forwarding hops; negative means "unlimited".
  int hop_budget = -1;
  /// Trace correlation (see obs/trace.h); 0 = no active trace.  The ids
  /// ride the context exactly like the deadline: the client stamps them
  /// into the wire header, the server installs them around dispatch, so
  /// every downstream call joins the same trace.
  std::uint64_t trace_id = 0;
  /// The enclosing span downstream spans should name as parent; 0 = root.
  std::uint64_t span_id = 0;
  /// Replay identity of the request being dispatched (empty session =
  /// outside any at-most-once dispatch).  The durable trader tags every
  /// journalled mutation with these, so a record doubles as the replay
  /// high-water mark for its session — executing a request and marking it
  /// executed become one atomic commit.
  std::string session;
  std::uint64_t request_id = 0;

  bool has_deadline() const noexcept { return deadline != Clock::time_point{}; }
  bool expired() const noexcept {
    return has_deadline() && Clock::now() >= deadline;
  }

  /// Budget left on the clock; a large sentinel (24 h) when no deadline is
  /// set, zero when already expired.
  std::chrono::milliseconds remaining() const noexcept;

  /// Context expiring `timeout` from now (non-positive timeout = none).
  static CallContext with_timeout(std::chrono::milliseconds timeout);

  /// This context tightened so its deadline is at most `cap` from now.
  /// A context with no deadline gains one; a nearer deadline is kept.
  CallContext shrunk(std::chrono::milliseconds cap) const;

  /// This context with one hop consumed (no-op when unlimited).
  CallContext after_hop() const;
};

/// The context of the request currently being dispatched on this thread
/// (default-constructed when outside any dispatch).  Set by the RpcServer
/// around handler execution so downstream calls inherit the deadline.
CallContext current_call_context() noexcept;

/// RAII: installs `ctx` as the thread's current call context.
class CallContextScope {
 public:
  explicit CallContextScope(const CallContext& ctx) noexcept;
  ~CallContextScope();

  CallContextScope(const CallContextScope&) = delete;
  CallContextScope& operator=(const CallContextScope&) = delete;

 private:
  CallContext previous_;
};

}  // namespace cosm::rpc
