// Browser mediation (§3, Fig. 4): innovative services with no standardised
// type register their SIDs at browsers; a cascaded browser (a browser
// registered at another browser) extends the reachable market; the generic
// client enforces each service's FSM locally.

#include <iostream>

#include "common/error.h"
#include "core/mediation.h"
#include "core/runtime.h"
#include "rpc/inproc.h"
#include "services/stock_quote.h"
#include "services/weather.h"

int main() {
  using namespace cosm;

  rpc::InProcNetwork network;
  core::CosmRuntime runtime(network);

  // A second, specialised browser hosting financial services...
  core::ServiceBrowser finance_browser("finance-browser");
  auto finance_browser_ref =
      runtime.server().add(core::make_browser_service(finance_browser));

  // ...registered at the main browser: the Fig. 4 cascade.
  runtime.browser().register_service(
      "FinanceServices",
      runtime.server().find(finance_browser_ref.id)->sid(),
      finance_browser_ref);

  // Innovative services go straight to the browsers — no service type, no
  // standardisation, no trader.
  runtime.offer_mediated("WeatherOracle",
                         services::make_weather_service({}));
  auto ticker_ref = runtime.host(services::make_stock_quote_service({}));
  finance_browser.register_service("TickerService",
                                   runtime.repository().get(ticker_ref.id),
                                   ticker_ref);

  // --- the human-user stand-in browses ---
  core::GenericClient client = runtime.make_client();
  core::MediationSession root(client, runtime.browser_ref());
  std::cout << "root browser entries:\n";
  for (const auto& item : root.browse()) {
    std::cout << "  - " << item.name << "\n";
  }

  // Keyword search over annotations.
  auto hits = root.search("forecast");
  std::cout << "\nsearch 'forecast': " << hits.size() << " hit(s): "
            << hits.at(0).name << "\n";

  // Use the weather service through the generic client.
  core::Binding weather = root.select("WeatherOracle");
  wire::Value forecast = weather.invoke(
      "GetForecast", {wire::Value::string("Hamburg"), wire::Value::integer(2)});
  std::cout << "forecast: " << forecast.to_debug_string() << "\n";

  // Descend into the cascaded browser (depth 1) and bind the ticker.
  core::MediationSession finance = root.enter("FinanceServices");
  std::cout << "\nfinance browser (cascade depth " << finance.depth() << "):\n";
  for (const auto& item : finance.browse()) {
    std::cout << "  - " << item.name << "\n";
  }

  core::Binding ticker = finance.select("TickerService");
  std::cout << "\nticker state: " << ticker.state()
            << "; allowed now:";
  for (const auto& op : ticker.allowed_operations()) std::cout << " " << op;
  std::cout << "\n";

  // §4.2: an out-of-protocol call is rejected *locally* — no RPC happens.
  try {
    ticker.invoke("GetQuote", {wire::Value::string("IBM")});
  } catch (const ProtocolError& e) {
    std::cout << "local rejection: " << e.what() << "\n";
  }

  ticker.invoke("Login", {wire::Value::string("mueller")});
  wire::Value quote = ticker.invoke("GetQuote", {wire::Value::string("IBM")});
  std::cout << "after login: " << quote.to_debug_string() << "\n";
  ticker.invoke("Logout", {});
  std::cout << "state after logout: " << ticker.state()
            << "; local rejections: " << ticker.local_rejections() << "\n";
  return 0;
}
