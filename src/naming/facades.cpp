#include "naming/facades.h"

#include <memory>

#include "common/error.h"
#include "sidl/parser.h"

namespace cosm::naming {

namespace {

using rpc::ServiceObject;
using rpc::ServiceObjectPtr;
using wire::Value;

sidl::SidPtr parse_shared(const std::string& text) {
  return std::make_shared<sidl::Sid>(sidl::parse_sid(text));
}

}  // namespace

const std::string& name_server_sidl() {
  static const std::string text = R"(
module NameServerService {
  typedef struct { string name; ServiceReference ref; } Binding_t;
  interface COSM_Operations {
    void BindName([in] string name, [in] ServiceReference ref);
    void UnbindName([in] string name);
    ServiceReference Resolve([in] string name);
    sequence<Binding_t> List([in] string prefix);
  };
  module COSM_Annotations {
    annotate NameServerService "Maps hierarchical names to service references";
    annotate BindName "Bind or rebind a name to a service reference";
    annotate UnbindName "Remove a name binding";
    annotate Resolve "Look up the reference bound to a name";
    annotate List "Enumerate bindings under a name prefix";
  };
};
)";
  return text;
}

const std::string& group_manager_sidl() {
  static const std::string text = R"(
module GroupManagerService {
  interface COSM_Operations {
    void Join([in] string group, [in] ServiceReference member);
    void Leave([in] string group, [in] ServiceReference member);
    sequence<ServiceReference> Members([in] string group);
    sequence<string> Groups();
  };
  module COSM_Annotations {
    annotate GroupManagerService "Maintains named multicast groups of services";
  };
};
)";
  return text;
}

const std::string& interface_repository_sidl() {
  static const std::string text = R"(
module InterfaceRepositoryService {
  interface COSM_Operations {
    void Put([in] string id, [in] SID description);
    SID Get([in] string id);
    sequence<string> Ids();
    sequence<string> ConformingTo([in] SID base);
  };
  module COSM_Annotations {
    annotate InterfaceRepositoryService "Stores and serves service interface descriptions";
    annotate Put "Store a new version of a service's interface description";
    annotate Get "Fetch the latest interface description of a service";
    annotate ConformingTo "List services structurally conforming to a base description";
  };
};
)";
  return text;
}

ServiceObjectPtr make_name_server_service(NameServer& ns) {
  auto object = std::make_shared<ServiceObject>(parse_shared(name_server_sidl()));

  object->on("BindName", [&ns](const std::vector<Value>& args) {
    ns.bind_name(args.at(0).as_string(), args.at(1).as_ref());
    return Value::null();
  });
  object->on("UnbindName", [&ns](const std::vector<Value>& args) {
    ns.unbind_name(args.at(0).as_string());
    return Value::null();
  });
  object->on("Resolve", [&ns](const std::vector<Value>& args) {
    return Value::service_ref(ns.resolve(args.at(0).as_string()));
  });
  object->on("List", [&ns](const std::vector<Value>& args) {
    std::vector<Value> out;
    for (auto& [name, ref] : ns.list(args.at(0).as_string())) {
      out.push_back(Value::structure(
          "Binding_t",
          {{"name", Value::string(name)}, {"ref", Value::service_ref(ref)}}));
    }
    return Value::sequence(std::move(out));
  });
  return object;
}

ServiceObjectPtr make_group_manager_service(GroupManager& gm) {
  auto object = std::make_shared<ServiceObject>(parse_shared(group_manager_sidl()));

  object->on("Join", [&gm](const std::vector<Value>& args) {
    gm.join(args.at(0).as_string(), args.at(1).as_ref());
    return Value::null();
  });
  object->on("Leave", [&gm](const std::vector<Value>& args) {
    gm.leave(args.at(0).as_string(), args.at(1).as_ref());
    return Value::null();
  });
  object->on("Members", [&gm](const std::vector<Value>& args) {
    std::vector<Value> out;
    for (auto& member : gm.members(args.at(0).as_string())) {
      out.push_back(Value::service_ref(member));
    }
    return Value::sequence(std::move(out));
  });
  object->on("Groups", [&gm](const std::vector<Value>&) {
    std::vector<Value> out;
    for (auto& name : gm.groups()) out.push_back(Value::string(name));
    return Value::sequence(std::move(out));
  });
  return object;
}

ServiceObjectPtr make_interface_repository_service(InterfaceRepository& repo) {
  auto object =
      std::make_shared<ServiceObject>(parse_shared(interface_repository_sidl()));

  object->on("Put", [&repo](const std::vector<Value>& args) {
    repo.put(args.at(0).as_string(), args.at(1).as_sid());
    return Value::null();
  });
  object->on("Get", [&repo](const std::vector<Value>& args) {
    return Value::sid(repo.get(args.at(0).as_string()));
  });
  object->on("Ids", [&repo](const std::vector<Value>&) {
    std::vector<Value> out;
    for (auto& id : repo.ids()) out.push_back(Value::string(id));
    return Value::sequence(std::move(out));
  });
  object->on("ConformingTo", [&repo](const std::vector<Value>& args) {
    std::vector<Value> out;
    for (auto& id : repo.conforming_to(*args.at(0).as_sid())) {
      out.push_back(Value::string(id));
    }
    return Value::sequence(std::move(out));
  });
  return object;
}

}  // namespace cosm::naming
