#include "common/bytes.h"

#include <bit>

#include "common/error.h"

namespace cosm {

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  static_assert(sizeof(double) == 8);
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  u64(bits);
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::svarint(std::int64_t v) {
  varint((static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::str(std::string_view s) {
  varint(s.size());
  raw(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void ByteWriter::raw(const std::uint8_t* data, std::size_t n) {
  bytes_.insert(bytes_.end(), data, data + n);
}

std::size_t ByteWriter::varint_slot() {
  std::size_t slot = bytes_.size();
  bytes_.resize(bytes_.size() + kVarintSlotWidth);
  return slot;
}

void ByteWriter::patch_varint(std::size_t slot, std::uint64_t v) {
  if (slot + kVarintSlotWidth > bytes_.size()) {
    throw ContractError("patch_varint: slot beyond buffer");
  }
  if (v >= (std::uint64_t{1} << (7 * kVarintSlotWidth))) {
    throw ContractError("patch_varint: value does not fit the slot");
  }
  // Padded LEB128: every byte but the last carries a continuation bit, so
  // the slot always occupies exactly kVarintSlotWidth bytes regardless of
  // the value.  Readers accept non-minimal varints.
  for (std::size_t i = 0; i + 1 < kVarintSlotWidth; ++i) {
    bytes_[slot + i] = static_cast<std::uint8_t>(v & 0x7F) | 0x80;
    v >>= 7;
  }
  bytes_[slot + kVarintSlotWidth - 1] = static_cast<std::uint8_t>(v & 0x7F);
}

void ByteReader::need(std::size_t n) const {
  if (size_ - pos_ < n) {
    throw WireError("byte reader underrun: need " + std::to_string(n) +
                    " bytes, have " + std::to_string(size_ - pos_));
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double ByteReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw WireError("malformed varint: too many bytes");
    std::uint8_t b = u8();
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::int64_t ByteReader::svarint() {
  std::uint64_t z = varint();
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

std::string ByteReader::str() {
  std::string_view v = str_view();
  return std::string(v);
}

std::string_view ByteReader::str_view() {
  std::uint64_t n = varint();
  need(n);
  std::string_view s(reinterpret_cast<const char*>(data_ + pos_),
                     static_cast<std::size_t>(n));
  pos_ += n;
  return s;
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

BytesView ByteReader::view(std::size_t n) {
  need(n);
  BytesView out(data_ + pos_, n);
  pos_ += n;
  return out;
}

std::string to_hex(const Bytes& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 3);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i) out.push_back(' ');
    out.push_back(digits[bytes[i] >> 4]);
    out.push_back(digits[bytes[i] & 0xF]);
  }
  return out;
}

}  // namespace cosm
