#include "rpc/replay_cache.h"

#include "common/error.h"
#include "obs/metrics.h"

namespace cosm::rpc {

ReplayCache::ReplayCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw ContractError("ReplayCache capacity must be > 0");
}

ReplayCache::Lookup ReplayCache::lookup(const Key& key, Bytes* frame_out) {
  Lookup outcome;
  {
    std::lock_guard lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency, O(1)
      ++hits_;
      if (frame_out != nullptr) *frame_out = it->second->frame;
      outcome = Lookup::Hit;
    } else {
      // No frame — but a recovered journal mark can still prove the
      // request executed before the restart.
      auto mark = recovered_marks_.find(key.first);
      if (mark != recovered_marks_.end() && key.second <= mark->second) {
        ++lost_;
        outcome = Lookup::DuplicateLost;
      } else {
        ++misses_;
        outcome = Lookup::Miss;
      }
    }
  }
  auto& reg = obs::metrics();
  if (reg.enabled()) {
    static obs::Counter& hits = reg.counter("replay.hits");
    static obs::Counter& misses = reg.counter("replay.misses");
    static obs::Counter& lost = reg.counter("replay.duplicates_lost");
    (outcome == Lookup::Hit ? hits
                            : outcome == Lookup::DuplicateLost ? lost : misses)
        .add();
  }
  return outcome;
}

void ReplayCache::seed_marks(
    const std::unordered_map<std::string, std::uint64_t>& marks) {
  std::lock_guard lock(mutex_);
  for (const auto& [session, hwm] : marks) {
    auto [it, inserted] = recovered_marks_.emplace(session, hwm);
    if (!inserted && it->second < hwm) it->second = hwm;
  }
}

void ReplayCache::insert(const Key& key, Bytes frame) {
  bool duplicate = false;
  bool evicted = false;
  {
    std::lock_guard lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      // Keep the original response, but record the save: a duplicate that
      // raced past the pre-dispatch lookup was still answered exactly once.
      ++duplicates_;
      duplicate = true;
    } else {
      lru_.push_front(Entry{key, std::move(frame)});
      index_[key] = lru_.begin();
      if (index_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++evictions_;
        evicted = true;
      }
    }
  }
  auto& reg = obs::metrics();
  if (reg.enabled()) {
    if (duplicate) {
      static obs::Counter& dups = reg.counter("replay.duplicates_suppressed");
      dups.add();
    } else {
      static obs::Counter& inserts = reg.counter("replay.inserts");
      inserts.add();
    }
    if (evicted) {
      static obs::Counter& evictions = reg.counter("replay.evictions");
      evictions.add();
    }
  }
}

std::size_t ReplayCache::size() const {
  std::lock_guard lock(mutex_);
  return index_.size();
}

}  // namespace cosm::rpc
