# Empty dependencies file for cosm_rpc.
# This may be replaced when dependencies are built.
