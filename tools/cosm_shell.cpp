// cosm_shell — the interactive generic client.
//
// The paper's mediation story puts a *human user* in the loop: browsing,
// reading generated forms, entering typed values, binding onward.  This
// shell is that user interface, driving a demo COSM market (car rental,
// weather, stock ticker, image conversion chain) entirely through the
// generic client — no compiled-in service knowledge.
//
// Commands (also `help`):
//   ls                      browse the current browser
//   search <keyword>        keyword search (deep across cascades)
//   info <entry>            summary of an entry's SID
//   form <entry>            render the generated UI (Fig. 7)
//   bind <entry>            bind; the binding becomes current
//   state                   FSM state + allowed operations
//   op <operation>          open the form editor for an operation
//   set <path> <value...>   fill a form field (e.g. set selection.days 3)
//   invoke                  invoke the currently edited operation
//   call <operation>        invoke a no-argument operation directly
//   quit
//
// Reads commands from stdin, so it works interactively and scripted:
//   printf 'ls\nbind HanseRentACar\nstate\nquit\n' | cosm_shell

#include <iostream>
#include <optional>
#include <sstream>

#include "common/error.h"
#include "core/mediation.h"
#include "core/runtime.h"
#include "rpc/inproc.h"
#include "services/car_rental.h"
#include "services/image_conversion.h"
#include "services/stock_quote.h"
#include "services/weather.h"
#include "uims/editor.h"
#include "uims/form.h"

using namespace cosm;

namespace {

void build_demo_market(core::CosmRuntime& runtime, rpc::Network& net) {
  services::CarRentalConfig rental;
  rental.name = "HanseRentACar";
  rental.charge_per_day = 65.0;
  rental.currency = "DEM";
  rental.tradable = true;
  auto [rental_ref, offer] =
      runtime.offer_traded(services::make_car_rental_service(rental));
  (void)offer;
  runtime.browser().register_service(
      "HanseRentACar", runtime.repository().get(rental_ref.id), rental_ref);

  runtime.offer_mediated("WeatherOracle", services::make_weather_service({}));
  runtime.offer_mediated("TickerService", services::make_stock_quote_service({}));

  auto archive_ref =
      runtime.offer_mediated("ImageArchive", services::make_image_server({}));
  runtime.offer_mediated(
      "ImageConverter", services::make_format_converter(net, archive_ref, {}));
}

class Shell {
 public:
  Shell(core::GenericClient& client, const sidl::ServiceRef& browser_ref)
      : client_(client), session_(client, browser_ref) {}

  int run(std::istream& in, std::ostream& out) {
    out << "COSM generic client — type 'help' for commands\n";
    std::string line;
    while (out << "cosm> " << std::flush, std::getline(in, line)) {
      std::istringstream words(line);
      std::string command;
      words >> command;
      if (command.empty()) continue;
      if (command == "quit" || command == "exit") break;
      try {
        dispatch(command, words, out);
      } catch (const Error& e) {
        out << "error: " << e.what() << "\n";
      }
    }
    out << "bye\n";
    return 0;
  }

 private:
  void dispatch(const std::string& command, std::istringstream& words,
                std::ostream& out) {
    if (command == "help") {
      out << "ls | search <kw> | info <entry> | form <entry> | bind <entry>\n"
             "state | op <operation> | set <path> <value> | invoke | "
             "call <operation> | quit\n";
    } else if (command == "ls") {
      for (const auto& item : session_.browse()) {
        out << "  " << item.name << "\n";
      }
    } else if (command == "search") {
      std::string keyword;
      words >> keyword;
      for (const auto& hit : session_.deep_search(keyword)) {
        out << "  " << hit.path << "\n";
      }
    } else if (command == "info") {
      std::string entry = arg(words, "info <entry>");
      sidl::SidPtr sid = session_.describe(entry);
      out << "  module " << sid->name << ": " << sid->operations.size()
          << " operation(s)";
      if (sid->fsm) out << ", FSM initial " << sid->fsm->initial;
      if (sid->trader_export) {
        out << ", tradable as " << sid->trader_export->service_type;
      }
      out << "\n";
      for (const auto& op : sid->operations) {
        out << "    " << op.name << "/" << op.params.size();
        if (const std::string* note = sid->find_annotation(op.name)) {
          out << " — " << *note;
        }
        out << "\n";
      }
    } else if (command == "form") {
      out << uims::render_text(
          uims::generate_form(*session_.describe(arg(words, "form <entry>"))));
    } else if (command == "bind") {
      std::string entry = arg(words, "bind <entry>");
      binding_.emplace(session_.select(entry));
      editor_.reset();
      out << "bound to " << binding_->sid()->name << " ("
          << binding_->ref().to_string() << ")\n";
    } else if (command == "state") {
      core::Binding& binding = current();
      out << "  state: " << (binding.state().empty() ? "(no FSM)" : binding.state())
          << "\n  allowed:";
      for (const auto& op : binding.allowed_operations()) out << " " << op;
      out << "\n";
    } else if (command == "op") {
      editor_.emplace(current().edit(arg(words, "op <operation>")));
      out << uims::render_text(editor_->form());
    } else if (command == "set") {
      if (!editor_) throw ContractError("no operation opened — use 'op' first");
      std::string path = arg(words, "set <path> <value>");
      std::string value;
      std::getline(words, value);
      if (!value.empty() && value.front() == ' ') value.erase(0, 1);
      editor_->set(path, value);
      out << "  " << path << " = " << editor_->get(path).to_debug_string() << "\n";
    } else if (command == "invoke") {
      if (!editor_) throw ContractError("no operation opened — use 'op' first");
      wire::Value result = current().invoke_form(*editor_);
      out << "  => " << result.to_debug_string() << "\n";
    } else if (command == "call") {
      wire::Value result = current().invoke(arg(words, "call <operation>"), {});
      out << "  => " << result.to_debug_string() << "\n";
    } else {
      throw ContractError("unknown command '" + command + "' — try 'help'");
    }
  }

  static std::string arg(std::istringstream& words, const std::string& usage) {
    std::string value;
    words >> value;
    if (value.empty()) throw ContractError("usage: " + usage);
    return value;
  }

  core::Binding& current() {
    if (!binding_) throw ContractError("no binding — use 'bind <entry>' first");
    return *binding_;
  }

  core::GenericClient& client_;
  core::MediationSession session_;
  std::optional<core::Binding> binding_;
  std::optional<uims::FormEditor> editor_;
};

}  // namespace

int main() {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);
  build_demo_market(runtime, net);

  core::GenericClient client = runtime.make_client();
  Shell shell(client, runtime.browser_ref());
  return shell.run(std::cin, std::cout);
}
