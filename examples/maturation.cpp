// Service maturation (§4.1): an innovative service starts in the
// "pre-tradable" stage — reachable only through mediation — and later
// *extends its SID* with a COSM_TraderExport module to become tradable,
// without breaking any existing client.  The extended SID is a subtype of
// the original (Fig. 2): base-only consumers keep working.

#include <iostream>

#include "core/mediation.h"
#include "core/runtime.h"
#include "rpc/inproc.h"
#include "services/car_rental.h"
#include "services/market.h"
#include "sidl/parser.h"
#include "trader/sid_export.h"

int main() {
  using namespace cosm;

  rpc::InProcNetwork network;
  core::CosmRuntime runtime(network);

  // --- stage 1: innovative / pre-tradable ---
  services::CarRentalConfig config;
  config.name = "PioneerRentals";
  config.tradable = false;  // no trader export yet: nothing to standardise
  auto ref = runtime.offer_mediated("PioneerRentals",
                                    services::make_car_rental_service(config));
  std::cout << "stage 1: mediation only\n";
  std::cout << "  trader types: " << runtime.trader().types().size() << "\n";

  core::GenericClient client = runtime.make_client();
  core::MediationSession session(client, runtime.browser_ref());
  core::Binding early = session.select("PioneerRentals");
  std::cout << "  early adopter books via mediation: "
            << early.invoke("ListModels", {}).to_debug_string() << "\n\n";

  // --- stage 2: the market matures; the provider extends its SID ---
  config.tradable = true;  // same service, now with COSM_TraderExport
  auto mature_sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid(services::car_rental_sidl(config)));

  // The extended SID conforms to the original: base-only components are
  // unaffected (Fig. 2).
  sidl::SidPtr original = runtime.repository().get(ref.id);
  std::cout << "stage 2: SID extended (extensions " << original->extension_count()
            << " -> " << mature_sid->extension_count() << "); conforms to original: "
            << std::boolalpha << sidl::conforms_to(*mature_sid, *original) << "\n";

  // New SID version goes to the repository and the browser entry is
  // refreshed; the running service instance is unchanged.
  runtime.repository().put(ref.id, mature_sid);
  runtime.browser().register_service("PioneerRentals", mature_sid, ref);
  std::cout << "  repository now holds " << runtime.repository().history(ref.id).size()
            << " SID versions\n";

  // The service type is derived from the mature SID and registered at the
  // trader's type manager — the standardisation §2.2 deferred until the
  // market was ready.
  std::string offer_id = trader::export_sid_offer(runtime.trader(), *mature_sid, ref);
  std::cout << "  service type standardised + offer exported: " << offer_id << "\n\n";

  // --- stage 3: both access paths coexist (§4.1) ---
  trader::ImportRequest request;
  request.service_type = services::car_rental_service_type_name();
  request.preference = "min ChargePerDay";
  auto offers = runtime.trader().import(request);
  std::cout << "stage 3: trader finds " << offers.size() << " offer(s)\n";

  core::Binding via_trader = client.bind(offers.at(0).ref);
  core::Binding via_browser = session.select("PioneerRentals");
  std::cout << "  same instance via trader and browser: "
            << (via_trader.ref() == via_browser.ref()) << "\n";

  // The §2.2 time-to-market comparison, in simulated calendar time.
  services::EstablishmentModel model;
  auto trader_path = services::trader_path_establishment(
      model, mature_sid->operations.size(), 1, false);
  auto mediation_path = services::mediation_path_establishment(model);
  std::cout << "\n  hours to first client call —\n"
            << "    trader path:    " << trader_path.total_hours() << " ("
            << trader_path.total_hours() / 24 << " days)\n"
            << "    mediation path: " << mediation_path.total_hours() << " ("
            << mediation_path.total_hours() / 24 << " days)\n";
  return 0;
}
