#include "sidl/sid.h"

#include <algorithm>

namespace cosm::sidl {

std::string to_string(ParamDir dir) {
  switch (dir) {
    case ParamDir::In: return "in";
    case ParamDir::Out: return "out";
    case ParamDir::InOut: return "inout";
  }
  return "?";
}

bool FsmSpec::has_state(const std::string& s) const {
  return std::find(states.begin(), states.end(), s) != states.end();
}

const FsmTransition* FsmSpec::find(const std::string& state,
                                   const std::string& operation) const {
  for (const auto& t : transitions) {
    if (t.from == state && t.operation == operation) return &t;
  }
  return nullptr;
}

std::vector<std::string> FsmSpec::allowed(const std::string& state) const {
  std::vector<std::string> ops;
  for (const auto& t : transitions) {
    if (t.from == state &&
        std::find(ops.begin(), ops.end(), t.operation) == ops.end()) {
      ops.push_back(t.operation);
    }
  }
  return ops;
}

const Literal* TraderExport::find(const std::string& attr) const {
  for (const auto& [name, value] : attributes) {
    if (name == attr) return &value;
  }
  return nullptr;
}

const OperationDesc* Sid::find_operation(const std::string& op_name) const {
  for (const auto& op : operations) {
    if (op.name == op_name) return &op;
  }
  return nullptr;
}

TypePtr Sid::find_type(const std::string& type_name) const {
  for (const auto& [name, type] : types) {
    if (name == type_name) return type;
  }
  return nullptr;
}

const std::string* Sid::find_annotation(const std::string& element) const {
  auto it = annotations.find(element);
  return it == annotations.end() ? nullptr : &it->second;
}

std::size_t Sid::extension_count() const {
  std::size_t n = unknown_extensions.size();
  if (fsm) ++n;
  if (trader_export) ++n;
  if (!annotations.empty()) ++n;
  return n;
}

bool Sid::operator==(const Sid& o) const {
  if (name != o.name || interface_name != o.interface_name) return false;
  if (operations != o.operations || constants != o.constants) return false;
  if (fsm != o.fsm || trader_export != o.trader_export) return false;
  if (annotations != o.annotations || unknown_extensions != o.unknown_extensions) {
    return false;
  }
  if (types.size() != o.types.size()) return false;
  for (std::size_t i = 0; i < types.size(); ++i) {
    if (types[i].first != o.types[i].first) return false;
    if (!types[i].second->equals(*o.types[i].second)) return false;
  }
  return true;
}

bool conforms_to(const Sid& sub, const Sid& base) {
  // Every base type name must be present ("contains at least the elements
  // of SIDBase", Fig. 2).  Shapes are not compared here: a named type may
  // legitimately evolve covariantly (results) or contravariantly
  // (in-parameters), and the per-operation checks below apply the right
  // variance at each use site.
  for (const auto& [name, base_type] : base.types) {
    (void)base_type;
    if (!sub.find_type(name)) return false;
  }
  // Every base operation must be present with a conforming signature.
  for (const auto& base_op : base.operations) {
    const OperationDesc* sub_op = sub.find_operation(base_op.name);
    if (!sub_op) return false;
    // Covariant result: the sub's result must conform to the base's.
    if (!conforms_to(*sub_op->result, *base_op.result)) return false;
    if (sub_op->params.size() != base_op.params.size()) return false;
    for (std::size_t i = 0; i < base_op.params.size(); ++i) {
      const ParamDesc& sp = sub_op->params[i];
      const ParamDesc& bp = base_op.params[i];
      if (sp.dir != bp.dir) return false;
      bool ok = false;
      switch (bp.dir) {
        case ParamDir::In:
          // Contravariant: the sub must accept everything the base accepts.
          ok = conforms_to(*bp.type, *sp.type);
          break;
        case ParamDir::Out:
          // Covariant: what the sub produces must fit what callers expect.
          ok = conforms_to(*sp.type, *bp.type);
          break;
        case ParamDir::InOut:
          // Invariant.
          ok = sp.type->equals(*bp.type);
          break;
      }
      if (!ok) return false;
    }
  }
  return true;
}

}  // namespace cosm::sidl
