#include "rpc/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/error.h"

namespace cosm::rpc {

namespace {

/// Read exactly n bytes; returns false on orderly EOF at a frame boundary,
/// throws on mid-frame EOF or socket error.
bool read_exact(int fd, std::uint8_t* buf, std::size_t n, bool allow_eof_at_start) {
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) {
      if (got == 0 && allow_eof_at_start) return false;
      throw RpcError("tcp: connection closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      throw RpcError(std::string("tcp: read failed: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void write_exact(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::write(fd, buf + sent, n - sent);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw RpcError(std::string("tcp: write failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
}

void write_frame(int fd, const Bytes& payload) {
  std::uint8_t header[4];
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  write_exact(fd, header, 4);
  if (!payload.empty()) write_exact(fd, payload.data(), payload.size());
}

/// Returns empty optional-like flag via bool; fills `out`.
bool read_frame(int fd, Bytes& out, bool allow_eof_at_start) {
  std::uint8_t header[4];
  if (!read_exact(fd, header, 4, allow_eof_at_start)) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  constexpr std::uint32_t kMaxFrame = 64u << 20;  // 64 MiB sanity bound
  if (len > kMaxFrame) throw RpcError("tcp: frame exceeds 64 MiB bound");
  out.resize(len);
  if (len > 0) read_exact(fd, out.data(), len, false);
  return true;
}

/// Timeout is reported as a distinct type: a timed-out call must NOT be
/// retried on a fresh connection (the server may already be executing it).
struct TimeoutError : RpcError {
  TimeoutError() : RpcError("tcp: call timed out") {}
};

void wait_readable(int fd, std::chrono::milliseconds timeout) {
  struct pollfd pfd{fd, POLLIN, 0};
  int ms = timeout.count() <= 0 ? -1 : static_cast<int>(timeout.count());
  int r = ::poll(&pfd, 1, ms);
  if (r == 0) throw TimeoutError();
  if (r < 0) throw RpcError(std::string("tcp: poll failed: ") + std::strerror(errno));
}

}  // namespace

struct TcpNetwork::Listener {
  int listen_fd = -1;
  std::string endpoint;
  FrameHandler handler;
  std::thread accept_thread;
  std::mutex conn_mutex;
  std::vector<int> conn_fds;
  std::vector<std::thread> conn_threads;
  std::atomic<bool> stopping{false};

  void serve_connection(int fd) {
    Bytes request;
    try {
      while (read_frame(fd, request, /*allow_eof_at_start=*/true)) {
        Bytes response = handler(request);
        write_frame(fd, response);
      }
    } catch (const Error&) {
      // Connection torn down (peer reset or shutdown); drop it.
    }
    ::close(fd);
  }

  void accept_loop() {
    for (;;) {
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener closed
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::lock_guard lock(conn_mutex);
      if (stopping.load()) {
        ::close(fd);
        return;
      }
      conn_fds.push_back(fd);
      conn_threads.emplace_back([this, fd] { serve_connection(fd); });
    }
  }

  void stop() {
    stopping.store(true);
    if (listen_fd >= 0) {
      ::shutdown(listen_fd, SHUT_RDWR);
      ::close(listen_fd);
      listen_fd = -1;
    }
    if (accept_thread.joinable()) accept_thread.join();
    {
      std::lock_guard lock(conn_mutex);
      for (int fd : conn_fds) ::shutdown(fd, SHUT_RDWR);
    }
    for (auto& t : conn_threads) {
      if (t.joinable()) t.join();
    }
  }

  ~Listener() { stop(); }
};

TcpNetwork::~TcpNetwork() { close_all(); }

void TcpNetwork::close_all() {
  std::map<std::string, std::shared_ptr<Listener>> listeners;
  std::map<std::string, int> connections;
  {
    std::lock_guard lock(mutex_);
    listeners.swap(listeners_);
    connections.swap(connections_);
  }
  for (auto& [ep, fd] : connections) ::close(fd);
  for (auto& [ep, l] : listeners) l->stop();
}

std::string TcpNetwork::listen(const std::string& hint, FrameHandler handler) {
  (void)hint;  // TCP endpoints are named by their port
  if (!handler) throw ContractError("listen: handler must be callable");

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw RpcError(std::string("tcp: socket failed: ") + std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int err = errno;
    ::close(fd);
    throw RpcError(std::string("tcp: bind failed: ") + std::strerror(err));
  }
  if (::listen(fd, 64) < 0) {
    int err = errno;
    ::close(fd);
    throw RpcError(std::string("tcp: listen failed: ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    int err = errno;
    ::close(fd);
    throw RpcError(std::string("tcp: getsockname failed: ") + std::strerror(err));
  }

  auto listener = std::make_shared<Listener>();
  listener->listen_fd = fd;
  listener->handler = std::move(handler);
  listener->endpoint =
      "tcp://127.0.0.1:" + std::to_string(ntohs(addr.sin_port));
  listener->accept_thread = std::thread([l = listener.get()] { l->accept_loop(); });

  std::lock_guard lock(mutex_);
  listeners_[listener->endpoint] = listener;
  return listener->endpoint;
}

void TcpNetwork::unlisten(const std::string& endpoint) {
  std::shared_ptr<Listener> listener;
  {
    std::lock_guard lock(mutex_);
    auto it = listeners_.find(endpoint);
    if (it == listeners_.end()) return;
    listener = it->second;
    listeners_.erase(it);
  }
  listener->stop();
}

Bytes TcpNetwork::call(const std::string& endpoint, const Bytes& request,
                       std::chrono::milliseconds timeout) {
  constexpr const char* kPrefix = "tcp://";
  if (endpoint.rfind(kPrefix, 0) != 0) {
    throw RpcError("tcp: bad endpoint '" + endpoint + "'");
  }
  std::string hostport = endpoint.substr(std::strlen(kPrefix));
  auto colon = hostport.rfind(':');
  if (colon == std::string::npos) {
    throw RpcError("tcp: endpoint missing port: '" + endpoint + "'");
  }
  std::string host = hostport.substr(0, colon);
  int port = std::stoi(hostport.substr(colon + 1));

  auto connect_fresh = [&]() -> int {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw RpcError(std::string("tcp: socket failed: ") + std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      throw RpcError("tcp: bad host '" + host + "'");
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      int err = errno;
      ::close(fd);
      throw RpcError("tcp: connect to " + endpoint + " failed: " + std::strerror(err));
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  };

  // The per-network mutex serialises calls; acceptable for this substrate's
  // purpose (realistic I/O path, not peak concurrency).
  std::lock_guard lock(mutex_);
  auto it = connections_.find(endpoint);
  int fd = it == connections_.end() ? -1 : it->second;

  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd < 0) {
      fd = connect_fresh();
      connections_[endpoint] = fd;
    }
    try {
      write_frame(fd, request);
      wait_readable(fd, timeout);
      Bytes response;
      if (!read_frame(fd, response, /*allow_eof_at_start=*/true)) {
        throw RpcError("tcp: server closed connection");
      }
      return response;
    } catch (const TimeoutError&) {
      // The server may still execute the request; drop the connection so a
      // late response cannot be mistaken for the next call's, and surface
      // the timeout — retrying would risk duplicate execution.
      ::close(fd);
      connections_.erase(endpoint);
      throw;
    } catch (const RpcError&) {
      ::close(fd);
      connections_.erase(endpoint);
      fd = -1;
      if (attempt == 1) throw;
      // Retry once with a fresh connection (the cached one may be stale).
    }
  }
  throw RpcError("tcp: unreachable");
}

}  // namespace cosm::rpc
