#include "trader/sid_export.h"

#include "common/error.h"

namespace cosm::trader {

namespace {

/// The enum type in `sid` declaring `label`, when exactly one does.
sidl::TypePtr enum_type_for_label(const sidl::Sid& sid, const std::string& label) {
  sidl::TypePtr found;
  for (const auto& [name, type] : sid.types) {
    if (type->kind() == sidl::TypeKind::Enum && type->label_index(label) >= 0) {
      if (found) return nullptr;  // ambiguous
      found = type;
    }
  }
  return found;
}

}  // namespace

std::pair<std::string, AttrMap> trader_export_from_sid(const sidl::Sid& sid) {
  if (!sid.trader_export) {
    throw NotFound("SID '" + sid.name + "' carries no COSM_TraderExport module");
  }
  const sidl::TraderExport& te = *sid.trader_export;
  AttrMap attrs;
  for (const auto& [name, literal] : te.attributes) {
    std::string enum_type_name;
    if (literal.is_enum()) {
      if (auto t = enum_type_for_label(sid, literal.as_enum().label)) {
        enum_type_name = t->name();
      }
    }
    attrs[name] = wire::from_literal(literal, enum_type_name);
  }
  return {te.service_type, std::move(attrs)};
}

ServiceType service_type_from_sid(const sidl::Sid& sid) {
  if (!sid.trader_export) {
    throw NotFound("SID '" + sid.name + "' carries no COSM_TraderExport module");
  }
  ServiceType type;
  type.name = sid.trader_export->service_type;
  for (const auto& [name, literal] : sid.trader_export->attributes) {
    AttributeDef def;
    def.name = name;
    if (literal.is_bool()) {
      def.type = sidl::TypeDesc::bool_();
    } else if (literal.is_int()) {
      def.type = sidl::TypeDesc::int_();
    } else if (literal.is_float()) {
      def.type = sidl::TypeDesc::float_();
    } else if (literal.is_string()) {
      def.type = sidl::TypeDesc::string_();
    } else {
      sidl::TypePtr enum_type = enum_type_for_label(sid, literal.as_enum().label);
      // When the label cannot be tied to one declared enum the schema keeps
      // the attribute open — `any` admits the label regardless of tagging.
      def.type = enum_type ? enum_type : sidl::TypeDesc::any();
    }
    type.attributes.push_back(std::move(def));
  }
  type.signature = sid.operations;
  return type;
}

std::string export_sid_offer(Trader& trader, const sidl::Sid& sid,
                             const sidl::ServiceRef& ref) {
  auto [type_name, attrs] = trader_export_from_sid(sid);
  if (!trader.types().has(type_name)) {
    trader.types().add(service_type_from_sid(sid));
  } else {
    // §2.1: offers of a type must implement its operational interface
    // signature, when the registered type declares one.
    check_signature(trader.types().get(type_name), sid);
  }
  return trader.export_offer(type_name, ref, std::move(attrs));
}

}  // namespace cosm::trader
