// Simulated market clock for the time-to-market experiments (C1).
//
// The §2.2 argument is about *calendar* delays (standardisation takes months,
// SID registration takes seconds).  A simulated clock lets benchmarks advance
// logical days deterministically instead of sleeping.

#pragma once

#include <cstdint>
#include <string>

namespace cosm {

/// Logical simulation clock counting in hours; starts at hour 0.
class SimClock {
 public:
  SimClock() = default;

  void advance_hours(std::uint64_t h) { hours_ += h; }
  void advance_days(std::uint64_t d) { hours_ += d * 24; }

  std::uint64_t hours() const noexcept { return hours_; }
  double days() const noexcept { return static_cast<double>(hours_) / 24.0; }

  /// "day D, hour H" for logs.
  std::string stamp() const;

 private:
  std::uint64_t hours_ = 0;
};

}  // namespace cosm
