#include "rpc/replay_cache.h"

#include "common/error.h"

namespace cosm::rpc {

ReplayCache::ReplayCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw ContractError("ReplayCache capacity must be > 0");
}

bool ReplayCache::lookup(const Key& key, Bytes* frame_out) {
  std::lock_guard lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency, O(1)
  ++hits_;
  if (frame_out != nullptr) *frame_out = it->second->frame;
  return true;
}

void ReplayCache::insert(const Key& key, Bytes frame) {
  std::lock_guard lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;  // keep the original response
  }
  lru_.push_front(Entry{key, std::move(frame)});
  index_[key] = lru_.begin();
  if (index_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::size_t ReplayCache::size() const {
  std::lock_guard lock(mutex_);
  return index_.size();
}

}  // namespace cosm::rpc
