#include "sidl/literal.h"

#include <sstream>

namespace cosm::sidl {

std::string Literal::to_sidl() const {
  struct Visitor {
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const {
      std::ostringstream os;
      os.precision(17);  // max_digits10: exact double round-trip
      os << d;
      std::string s = os.str();
      // Keep float literals recognisable as floats on re-parse.
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    std::string operator()(const std::string& s) const {
      std::string out = "\"";
      for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      return out + "\"";
    }
    std::string operator()(const EnumLabel& e) const { return e.label; }
  };
  return std::visit(Visitor{}, v_);
}

}  // namespace cosm::sidl
