file(REMOVE_RECURSE
  "CMakeFiles/test_name_server.dir/test_name_server.cpp.o"
  "CMakeFiles/test_name_server.dir/test_name_server.cpp.o.d"
  "test_name_server"
  "test_name_server.pdb"
  "test_name_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_name_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
