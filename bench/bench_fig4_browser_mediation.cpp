// Experiment F4 (Fig. 4): browser mediation.
//
// Registration cost, browse cost vs registry size, keyword search, and the
// cascaded-binding chain (browser registered at browser, depth 1..8).
// Expected shape: browse/search linear in registry size; a cascade descent
// costs one bind + one browse per level (linear in depth).

#include <benchmark/benchmark.h>

#include "core/mediation.h"
#include "core/runtime.h"
#include "rpc/inproc.h"
#include "services/weather.h"

namespace {

using namespace cosm;

void BM_Registration(benchmark::State& state) {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);
  auto object = services::make_weather_service({});
  auto ref = runtime.host(object);
  sidl::SidPtr sid = runtime.repository().get(ref.id);
  std::size_t i = 0;
  for (auto _ : state) {
    runtime.browser().register_service("entry-" + std::to_string(i++), sid, ref);
  }
  state.counters["registry_size"] = static_cast<double>(runtime.browser().size());
}
BENCHMARK(BM_Registration);

void BM_BrowseVsRegistrySize(benchmark::State& state) {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);
  auto ref = runtime.host(services::make_weather_service({}));
  sidl::SidPtr sid = runtime.repository().get(ref.id);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    runtime.browser().register_service("svc-" + std::to_string(i), sid, ref);
  }
  core::GenericClient client = runtime.make_client();
  core::MediationSession session(client, runtime.browser_ref());
  for (auto _ : state) {
    auto items = session.browse();
    benchmark::DoNotOptimize(items);
  }
  state.counters["entries"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BrowseVsRegistrySize)->RangeMultiplier(4)->Range(4, 1024);

void BM_SearchVsRegistrySize(benchmark::State& state) {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);
  auto ref = runtime.host(services::make_weather_service({}));
  sidl::SidPtr sid = runtime.repository().get(ref.id);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    runtime.browser().register_service("svc-" + std::to_string(i), sid, ref);
  }
  core::GenericClient client = runtime.make_client();
  core::MediationSession session(client, runtime.browser_ref());
  for (auto _ : state) {
    auto hits = session.search("forecast");
    benchmark::DoNotOptimize(hits);
  }
  state.counters["entries"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SearchVsRegistrySize)->RangeMultiplier(4)->Range(4, 1024);

void BM_CascadeDescent(benchmark::State& state) {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);
  int depth = static_cast<int>(state.range(0));

  // Build a chain of browsers: root -> b1 -> ... -> b_depth, with the
  // weather service registered at the deepest one.
  std::vector<std::unique_ptr<core::ServiceBrowser>> browsers;
  core::ServiceBrowser* parent = &runtime.browser();
  for (int i = 0; i < depth; ++i) {
    browsers.push_back(
        std::make_unique<core::ServiceBrowser>("level-" + std::to_string(i)));
    auto ref = runtime.server().add(core::make_browser_service(*browsers.back()));
    parent->register_service("Deeper", runtime.server().find(ref.id)->sid(), ref);
    parent = browsers.back().get();
  }
  auto weather_ref = runtime.host(services::make_weather_service({}));
  parent->register_service("Weather", runtime.repository().get(weather_ref.id),
                           weather_ref);

  core::GenericClient client = runtime.make_client();
  for (auto _ : state) {
    std::vector<core::MediationSession> chain;
    chain.emplace_back(client, runtime.browser_ref());
    for (int i = 0; i < depth; ++i) {
      chain.push_back(chain.back().enter("Deeper"));
    }
    core::Binding weather = chain.back().select("Weather");
    benchmark::DoNotOptimize(weather.sid());
  }
  state.counters["depth"] = static_cast<double>(depth);
}
BENCHMARK(BM_CascadeDescent)->DenseRange(1, 8, 1);

}  // namespace

BENCHMARK_MAIN();
