// Pipelining semantics of the reactor transport: out-of-order completion
// over one shared socket, graceful drain on unlisten, the client pool cap
// under dial races, server-side backpressure, and the NetworkStats /
// TransportOptions API surface.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/error.h"
#include "rpc/fault_injection.h"
#include "rpc/inproc.h"
#include "rpc/tcp.h"

namespace cosm::rpc {
namespace {

using namespace std::chrono_literals;

/// A fast call issued after a slow one on the *same* connection must not
/// wait for the slow one: frames are dispatched to the executor as they are
/// decoded and responses return by correlation id, so there is no
/// head-of-line blocking per connection.
TEST(TcpPipeline, FastCompletesBeforeSlowOnSharedConnection) {
  TcpNetwork server;
  auto ep = server.listen("", [](const Bytes& b) {
    if (!b.empty() && b[0] == 1) std::this_thread::sleep_for(400ms);
    return b;
  });

  TransportOptions copts;
  copts.client_pool_cap = 1;  // force both calls onto one socket
  TcpNetwork client(copts);

  auto slow = client.call_async(ep, {1}, CallContext::with_timeout(10000ms));
  std::this_thread::sleep_for(50ms);  // slow frame is on the wire first

  auto start = std::chrono::steady_clock::now();
  Bytes fast = client.call(ep, {2}, 10000ms);
  auto fast_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_EQ(fast, Bytes{2});
  EXPECT_LT(fast_ms, 300ms) << "fast call was head-of-line blocked";
  EXPECT_EQ(slow->get(10000ms), Bytes{1});
  EXPECT_EQ(client.stats().connections, 1u);
}

/// Many interleaved calls with descending service times over one socket:
/// responses come back out of order, and every caller still receives
/// exactly its own echo (correlation ids, not arrival order, match them).
TEST(TcpPipeline, OutOfOrderResponsesCorrelateCorrectly) {
  TcpNetwork server;
  auto ep = server.listen("", [](const Bytes& b) {
    std::this_thread::sleep_for(std::chrono::milliseconds(b[0] * 10));
    return b;
  });

  TransportOptions copts;
  copts.client_pool_cap = 1;
  TcpNetwork client(copts);

  constexpr int kCalls = 8;
  std::vector<PendingCallPtr> pending;
  for (int i = kCalls - 1; i >= 0; --i) {  // slowest first
    pending.push_back(client.call_async(ep, {static_cast<std::uint8_t>(i)},
                                        CallContext::with_timeout(10000ms)));
  }
  for (int i = 0; i < kCalls; ++i) {
    Bytes expected = {static_cast<std::uint8_t>(kCalls - 1 - i)};
    EXPECT_EQ(pending[static_cast<std::size_t>(i)]->get(10000ms), expected);
  }
}

/// unlisten() with calls in flight: the handler must never run after
/// unlisten returns (the caller may destroy its captures immediately), and
/// every in-flight PendingCall must still settle — with the served response
/// when its dispatch finished before the drain, with an error otherwise.
TEST(TcpPipeline, DrainOnUnlistenStopsHandlerAndSettlesCalls) {
  TcpNetwork server;
  std::atomic<int> running{0};
  std::atomic<int> served{0};
  auto ep = server.listen("", [&](const Bytes& b) {
    running.fetch_add(1);
    std::this_thread::sleep_for(80ms);
    served.fetch_add(1);
    running.fetch_sub(1);
    return b;
  });

  TcpNetwork client;
  std::vector<PendingCallPtr> pending;
  for (int i = 0; i < 6; ++i) {
    pending.push_back(client.call_async(ep, {static_cast<std::uint8_t>(i)},
                                        CallContext::with_timeout(10000ms)));
  }
  std::this_thread::sleep_for(30ms);  // let some dispatches start
  server.unlisten(ep);

  // Drain guarantee: no handler is running once unlisten returned, and none
  // starts afterwards.
  EXPECT_EQ(running.load(), 0);
  int served_at_unlisten = served.load();
  std::this_thread::sleep_for(150ms);
  EXPECT_EQ(served.load(), served_at_unlisten);

  // Every in-flight call settles: response or error, never a hang.
  int completed = 0;
  int failed = 0;
  for (auto& p : pending) {
    try {
      p->get(5000ms);
      ++completed;
    } catch (const RpcError&) {
      ++failed;
    }
  }
  EXPECT_EQ(completed + failed, 6);
  EXPECT_EQ(completed, served_at_unlisten);
}

/// Regression for the pool-cap overshoot: the seed released the pool lock
/// around the blocking connect(), so N threads racing an empty pool each
/// saw size 0 and dialed — up to one connection per caller.  Dial slots now
/// count toward the cap while the connect is in flight.
TEST(TcpPipeline, ConcurrentDialsNeverOvershootPoolCap) {
  TcpNetwork server;
  auto ep = server.listen("", [](const Bytes& b) {
    std::this_thread::sleep_for(2ms);  // keep connections busy so callers race
    return b;
  });

  constexpr std::size_t kCap = 2;
  TransportOptions copts;
  copts.client_pool_cap = kCap;
  TcpNetwork client(copts);

  constexpr int kThreads = 16;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> max_pooled{0};
  std::thread sampler([&] {
    while (!stop.load()) {
      std::size_t n = client.stats().connections;
      std::size_t seen = max_pooled.load();
      while (n > seen && !max_pooled.compare_exchange_weak(seen, n)) {
      }
      std::this_thread::sleep_for(1ms);
    }
  });

  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5; ++i) {
        Bytes payload = {static_cast<std::uint8_t>(t),
                         static_cast<std::uint8_t>(i)};
        if (client.call(ep, payload, 10000ms) == payload) ok.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true);
  sampler.join();

  EXPECT_EQ(ok.load(), kThreads * 5);
  EXPECT_LE(max_pooled.load(), kCap);
  EXPECT_LE(client.stats().connections, kCap);
}

/// Server-side backpressure: with max_in_flight_per_connection = 4, a
/// client flooding one socket never sees more than 4 of its requests in the
/// handler simultaneously — the reactor pauses reading that socket until
/// completions drain.
TEST(TcpPipeline, InFlightCapBoundsConcurrentDispatches) {
  TransportOptions sopts;
  sopts.max_in_flight_per_connection = 4;
  TcpNetwork server(sopts);

  std::atomic<int> current{0};
  std::atomic<int> peak{0};
  auto ep = server.listen("", [&](const Bytes& b) {
    int now = current.fetch_add(1) + 1;
    int seen = peak.load();
    while (now > seen && !peak.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(10ms);
    current.fetch_sub(1);
    return b;
  });

  TransportOptions copts;
  copts.client_pool_cap = 1;  // one socket carries the whole flood
  TcpNetwork client(copts);

  constexpr int kCalls = 32;
  std::vector<PendingCallPtr> pending;
  for (int i = 0; i < kCalls; ++i) {
    pending.push_back(client.call_async(ep, {static_cast<std::uint8_t>(i)},
                                        CallContext::with_timeout(30000ms)));
  }
  for (auto& p : pending) EXPECT_NO_THROW(p->get(30000ms));
  EXPECT_LE(peak.load(), 4);
  EXPECT_GT(peak.load(), 0);
}

/// The documented instrumentation surface: stats() reflects configuration
/// and traffic on both sides of a connection.
TEST(TcpPipeline, StatsReflectConfigurationAndTraffic) {
  TransportOptions opts;
  opts.event_loop_threads = 3;
  TcpNetwork net(opts);
  auto ep = net.listen("", [](const Bytes& b) { return b; });

  NetworkStats before = net.stats();
  EXPECT_EQ(before.event_loop_threads, 3u);
  EXPECT_EQ(before.frames, 0u);

  for (int i = 0; i < 5; ++i) net.call(ep, {1, 2, 3}, 5000ms);

  NetworkStats after = net.stats();
  EXPECT_EQ(after.frames, 5u);
  // Same network serves both sides: one pooled client connection plus the
  // accepted server end of it.
  EXPECT_EQ(after.connections, 2u);
  // 5 round trips of 3-byte payloads + 12-byte frame headers, both ways.
  EXPECT_GE(after.bytes_in, 5u * 15u * 2u);
  EXPECT_GE(after.bytes_out, 5u * 15u * 2u);
  EXPECT_EQ(after.in_flight_frames, 0u);
  EXPECT_EQ(after.send_retries, 0u);
}

/// TransportOptions are honored at construction and readable back; the
/// bundle is immutable thereafter (there is no post-construction setter).
TEST(TcpPipeline, OptionsRoundTrip) {
  TransportOptions opts;
  opts.event_loop_threads = 2;
  opts.client_pool_cap = 3;
  opts.max_in_flight_per_connection = 17;
  opts.send_retry.max_attempts = 5;
  TcpNetwork net(opts);

  EXPECT_EQ(net.options().event_loop_threads, 2u);
  EXPECT_EQ(net.options().client_pool_cap, 3u);
  EXPECT_EQ(net.options().max_in_flight_per_connection, 17u);
  EXPECT_EQ(net.options().send_retry.max_attempts, 5);
  EXPECT_EQ(net.stats().event_loop_threads, 2u);

  // Degenerate knobs are clamped up front, not on use.
  TransportOptions zeros;
  zeros.event_loop_threads = 0;
  zeros.client_pool_cap = 0;
  zeros.max_in_flight_per_connection = 0;
  zeros.send_retry.max_attempts = 0;
  TcpNetwork clamped(zeros);
  EXPECT_EQ(clamped.options().event_loop_threads, 1u);
  EXPECT_EQ(clamped.options().client_pool_cap, 1u);
  EXPECT_EQ(clamped.options().max_in_flight_per_connection, 1u);
  EXPECT_EQ(clamped.options().send_retry.max_attempts, 1);
}

/// Every Network exposes stats(), and the fault-injection decorator passes
/// the inner transport's stats through.
TEST(TcpPipeline, StatsUnifiedAcrossNetworkImplementations) {
  InProcNetwork inproc;
  auto ep = inproc.listen("svc", [](const Bytes& b) { return b; });
  for (int i = 0; i < 3; ++i) inproc.call(ep, {9, 9}, 1000ms);

  NetworkStats s = inproc.stats();
  EXPECT_EQ(s.frames, 3u);
  EXPECT_EQ(s.bytes_in, 3u * 2u);
  EXPECT_EQ(s.connections, 1u);  // one binding
  EXPECT_GT(s.event_loop_threads, 0u);

  FaultInjectingNetwork faulty(inproc, 42);
  EXPECT_EQ(faulty.stats().frames, s.frames);
}

}  // namespace
}  // namespace cosm::rpc
