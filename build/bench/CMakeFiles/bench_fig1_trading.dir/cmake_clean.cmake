file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_trading.dir/bench_fig1_trading.cpp.o"
  "CMakeFiles/bench_fig1_trading.dir/bench_fig1_trading.cpp.o.d"
  "bench_fig1_trading"
  "bench_fig1_trading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_trading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
