// Bridging mediation and trading (§4.1).
//
// A service that carries a COSM_TraderExport extension in its SID can be
// registered at an ODP trader without any extra information: the extension
// names the service type (TOD) and supplies the property values.  These
// helpers extract that registration, and — for the maturation path — derive
// a brand-new service type definition from a mature service's SID so the
// type can be standardised "after several other market participants have
// provided comparable services" (§2.2).

#pragma once

#include <string>
#include <utility>

#include "sidl/sid.h"
#include "trader/service_type.h"
#include "trader/trader.h"

namespace cosm::trader {

/// (service type name, attribute values) from the SID's COSM_TraderExport.
/// Enum-label attribute values are tagged with the enum type declared in the
/// SID that carries the label, when exactly one such type exists.
/// Throws cosm::NotFound when the SID has no trader export.
std::pair<std::string, AttrMap> trader_export_from_sid(const sidl::Sid& sid);

/// Derive a ServiceType from a SID: the attribute schema comes from the
/// trader-export values' shapes, the signature from the SID's operations.
/// Throws cosm::NotFound when the SID has no trader export.
ServiceType service_type_from_sid(const sidl::Sid& sid);

/// Convenience: ensure the type is registered (deriving it from the SID if
/// missing) and export the offer.  Returns the offer id.
std::string export_sid_offer(Trader& trader, const sidl::Sid& sid,
                             const sidl::ServiceRef& ref);

}  // namespace cosm::trader
