// Federation v2 mesh differential: a randomized 16-trader mesh under offer
// churn, where every link is upgraded to a replication subscription.  After
// each churn round the replicated-local import results must be EXACTLY the
// deep-search baseline (same trader, replica routing disabled) — replicas
// are verbatim copies, so the result sets are byte-identical, not merely
// equivalent.  A second scenario leaves churn unflushed and shows one
// anti-entropy exchange restores convergence (staleness is bounded by one
// digest interval).  The final test hammers the delta/apply/digest paths
// from concurrent threads (TSan coverage).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "trader/trader.h"

namespace cosm::trader {
namespace {

using sidl::TypeDesc;
using wire::Value;

constexpr std::size_t kTraders = 16;

ServiceType rental_type() {
  ServiceType t;
  t.name = "CarRentalService";
  t.attributes = {{"ChargePerDay", TypeDesc::float_(), true}};
  return t;
}

AttrMap charge(double c) { return {{"ChargePerDay", Value::real(c)}}; }

struct Mesh {
  std::vector<std::unique_ptr<Trader>> traders;
  std::vector<std::vector<std::string>> live_ids;  // per trader
  std::uint64_t next_charge = 1;                   // globally unique charges
  std::mt19937 rng{20260808};

  Mesh() {
    traders.reserve(kTraders);
    live_ids.resize(kTraders);
    for (std::size_t i = 0; i < kTraders; ++i) {
      auto t = std::make_unique<Trader>("t" + std::to_string(i));
      t->types().add(rental_type());
      traders.push_back(std::move(t));
    }
    // Ring plus a chord: every trader links (and subscribes) to its
    // successor and the trader five ahead — a connected mesh with diamond
    // overlaps, so dedupe is exercised constantly.
    for (std::size_t i = 0; i < kTraders; ++i) {
      for (std::size_t step : {std::size_t{1}, std::size_t{5}}) {
        Trader& peer = *traders[(i + step) % kTraders];
        std::string link = "to-" + peer.name();
        traders[i]->link(link, std::make_shared<LocalTraderGateway>(peer));
        traders[i]->subscribe_link(link);
      }
    }
  }

  void churn_round() {
    for (std::size_t i = 0; i < kTraders; ++i) {
      for (int op = 0; op < 3; ++op) {
        const unsigned dice = rng() % 10;
        auto& ids = live_ids[i];
        if (dice < 5 || ids.empty()) {
          double c = static_cast<double>(next_charge++);
          ids.push_back(traders[i]->export_offer(
              "CarRentalService",
              {"svc-" + std::to_string(next_charge), "inproc://host",
               "CarRentalService"},
              charge(c)));
        } else if (dice < 8) {
          std::size_t victim = rng() % ids.size();
          traders[i]->withdraw(ids[victim]);
          ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(victim));
        } else {
          std::size_t target = rng() % ids.size();
          traders[i]->modify(ids[target],
                             charge(static_cast<double>(next_charge++)));
        }
      }
    }
  }

  void flush_all() {
    for (auto& t : traders) t->flush_replication();
  }

  std::size_t tick_all() {
    std::size_t repairs = 0;
    for (auto& t : traders) repairs += t->anti_entropy_tick();
    return repairs;
  }
};

ImportRequest rentals_query(std::size_t max_matches) {
  ImportRequest r;
  r.service_type = "CarRentalService";
  r.hop_limit = 1;
  r.preference = "min ChargePerDay";
  r.max_matches = max_matches;
  return r;
}

/// Run `request` at `t` twice — replica routing on, then off — and require
/// byte-identical results.  Returns the result for further checks.
std::vector<Offer> assert_differential(Trader& t, const ImportRequest& request) {
  TraderTuning replicated;  // defaults: replica resolve on
  t.set_tuning(replicated);
  auto local = t.import(request);

  TraderTuning deep;
  deep.enable_replica_resolve = false;
  t.set_tuning(deep);
  auto baseline = t.import(request);

  t.set_tuning(replicated);
  EXPECT_EQ(local, baseline) << "trader " << t.name();
  return local;
}

TEST(MeshDifferential, ChurnConvergesEveryFlush) {
  Mesh mesh;
  for (int round = 0; round < 6; ++round) {
    mesh.churn_round();
    mesh.flush_all();
    for (std::size_t i = 0; i < kTraders; ++i) {
      // Uncapped: the full merged set must match.  Charges are globally
      // unique, so the min-ranking is total and the order matches too.
      auto full = assert_differential(*mesh.traders[i], rentals_query(0));
      // A trader sees its own offers plus its two subscribed peers', and
      // the mesh overlap never produces duplicates.
      std::size_t expected = mesh.live_ids[i].size() +
                             mesh.live_ids[(i + 1) % kTraders].size() +
                             mesh.live_ids[(i + 5) % kTraders].size();
      EXPECT_EQ(full.size(), expected) << "trader " << i << " round " << round;
      // Capped: bounded-k forwarding and replica superset-then-cap must
      // agree with the deep baseline as well.
      assert_differential(*mesh.traders[i], rentals_query(3));
    }
  }
  // Converged mesh: every digest exchange is clean.
  EXPECT_EQ(mesh.tick_all(), 0u);
}

TEST(MeshDifferential, UnflushedChurnConvergesWithinOneDigestExchange) {
  Mesh mesh;
  mesh.churn_round();
  mesh.flush_all();

  // Churn WITHOUT flushing: replicas go stale.
  mesh.churn_round();
  mesh.churn_round();

  // One anti-entropy tick per publisher (a tick flushes, then digests and
  // repairs) — the deterministic equivalent of one digest interval passing
  // under the pump — restores exact convergence.
  mesh.tick_all();
  for (std::size_t i = 0; i < kTraders; ++i) {
    assert_differential(*mesh.traders[i], rentals_query(0));
  }
  EXPECT_EQ(mesh.tick_all(), 0u);
}

TEST(MeshDifferential, ConcurrentChurnFlushAndImports) {
  // Publisher/subscriber pair with the replication pump running while a
  // writer thread churns the publisher and reader threads import at the
  // subscriber: deltas, digests and replica resolution race by design.
  Trader pub("pub");
  Trader sub("sub");
  pub.types().add(rental_type());
  sub.types().add(rental_type());
  sub.link("pub", std::make_shared<LocalTraderGateway>(pub));
  sub.subscribe_link("pub");

  ReplicationOptions options;
  options.flush_interval = std::chrono::milliseconds(1);
  options.digest_interval = std::chrono::milliseconds(10);
  pub.set_replication_options(options);
  pub.start_replication_pump();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::mt19937 rng(7);
    std::vector<std::string> ids;
    for (int op = 0; op < 400; ++op) {
      if (rng() % 3 != 0 || ids.empty()) {
        ids.push_back(pub.export_offer(
            "CarRentalService",
            {"w" + std::to_string(op), "inproc://host", "CarRentalService"},
            charge(static_cast<double>(op))));
      } else {
        std::size_t victim = rng() % ids.size();
        pub.withdraw(ids[victim]);
        ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(victim));
      }
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      ImportRequest query = rentals_query(5);
      while (!stop.load(std::memory_order_relaxed)) {
        sub.import(query);
      }
    });
  }

  writer.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  pub.stop_replication_pump();

  // Quiesced: one final flush + digest converges the replica exactly.
  pub.anti_entropy_tick();
  EXPECT_EQ(sub.replica_offer_count(), pub.offer_count());
  assert_differential(sub, rentals_query(0));
}

}  // namespace
}  // namespace cosm::trader
