# Empty dependencies file for test_trader.
# This may be replaced when dependencies are built.
