// Experiment C2 (§2.3): transition costs of switching between similar
// services.
//
// A client switches provider every round across K competing car-rental
// services whose interfaces drift (different models, prices, extra optional
// SelectCar_t fields).
//   * Baseline (pre-COSM): every switch to a never-before-used provider
//     requires hand-written adaptation — one stub unit per operation plus a
//     reconfiguration unit (the §2.3 "costs of adaptation and
//     configuration").
//   * COSM: the generic client re-binds; the transferred SID drives
//     marshalling and UI; developer cost per switch is zero.
//
// Expected shape (the paper's central claim): baseline developer cost grows
// linearly with the number of distinct providers used; the COSM curve is
// flat at zero.  Machine time per switch (bind + SID parse) is the price
// paid instead, and is reported alongside.

#include <chrono>
#include <iomanip>
#include <iostream>
#include <set>

#include "bench_util.h"
#include "core/cost_meter.h"

using namespace cosm;
using Clock = std::chrono::steady_clock;

int main() {
  constexpr int kRounds = 64;
  std::cout << "C2: developer transition cost vs providers switched\n\n";
  std::cout << "  K-providers   baseline-cost-units   cosm-cost-units   "
               "cosm-us-per-switch   quotes-ok\n";

  bool shape_holds = true;
  std::uint64_t prev_baseline = 0;
  for (int k : {1, 2, 4, 8, 16, 32}) {
    bench::Market market(static_cast<std::size_t>(k));
    core::GenericClient client = market.runtime.make_client();
    core::TransitionCostMeter baseline, cosm_meter;

    std::set<std::string> providers_adapted;
    int quotes_ok = 0;
    double total_us = 0;

    for (int round = 0; round < kRounds; ++round) {
      const auto& ref = market.refs[static_cast<std::size_t>(round % k)];

      // Baseline accounting: first contact with a provider costs stubs for
      // all of its operations + a configuration step; later contacts cost a
      // reconfiguration (switching addresses/stubs by hand).
      if (providers_adapted.insert(ref.id).second) {
        sidl::SidPtr sid = market.runtime.repository().get(ref.id);
        baseline.count_stub_units(sid->operations.size());
        baseline.count_configuration();
      }

      // COSM: re-bind and drive through the generated form.  No developer
      // action; only machine time.
      auto t0 = Clock::now();
      core::Binding rental = client.bind(ref);
      cosm_meter.count_sid_transfer();
      wire::Value models = rental.invoke("ListModels", {});
      wire::Value quote = bench::quote_via_form(
          rental, models.elements()[0].enum_label(), 2);
      total_us +=
          std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
      if (quote.at("available").as_bool()) ++quotes_ok;
    }

    std::cout << "  " << std::setw(6) << k << std::setw(18)
              << baseline.developer_cost() << std::setw(18)
              << cosm_meter.developer_cost() << std::fixed
              << std::setprecision(1) << std::setw(18) << total_us / kRounds
              << std::setw(13) << quotes_ok << "/" << kRounds << "\n";

    if (cosm_meter.developer_cost() != 0) shape_holds = false;
    if (k > 1 && baseline.developer_cost() <= prev_baseline) shape_holds = false;
    prev_baseline = baseline.developer_cost();
  }

  std::cout << (shape_holds
                    ? "\n  RESULT: shape holds (baseline grows with K, COSM flat "
                      "at zero developer cost)\n"
                    : "\n  RESULT: FAILURE — expected shape violated\n");
  return shape_holds ? 0 : 1;
}
