// The paper's running example: the car rental service (§1, §2.1, §4.1).
//
// The SID follows the paper's CarRentalService definition: an enum of car
// models, SelectCar/BookCar operations, the INIT/SELECTED finite state
// machine of §3.1 (the paper's `Commit` role is played by BookCar, which
// completes a selection and returns the session to INIT), and — for
// tradable providers — a COSM_TraderExport module carrying the §2.1
// service-property values (CarModel, AverageMilage, ChargePerDay,
// ChargeCurrency).
//
// A provider config controls the market-facing attributes and small
// interface variations, so experiments can spawn populations of "similar
// but different" competitors (§2.3's switching-cost scenario).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rpc/service_object.h"
#include "trader/service_type.h"

namespace cosm::services {

struct CarRentalConfig {
  /// Provider name; becomes the SID module name.
  std::string name = "CarRentalService";
  /// Car models on offer (labels of the CarModel_t enum).
  std::vector<std::string> models = {"AUDI", "FIAT_Uno", "VW_Golf"};
  double charge_per_day = 80.0;
  std::string currency = "USD";  // one of USD, DEM, FF, SFR, GBP
  std::int64_t average_milage = 12000;
  /// Include the COSM_TraderExport module (tradable vs pre-tradable stage).
  bool tradable = false;
  /// Interface variation knob: providers with extra_fields > 0 extend
  /// SelectCar_t with additional optional fields (record subtyping in the
  /// wild: older clients still conform).
  int extra_fields = 0;
  /// Cars available per model (bookings deplete it).
  std::int64_t fleet_per_model = 100;
};

/// The provider's SIDL text.
std::string car_rental_sidl(const CarRentalConfig& config);

/// A ready-to-host service object implementing the interface: SelectCar
/// quotes a price and reserves an offer code, BookCar turns an offer code
/// into a booking and depletes the fleet, ListModels is side-band
/// (unrestricted by the FSM).
rpc::ServiceObjectPtr make_car_rental_service(const CarRentalConfig& config);

/// The §2.1 service type definition ("ServiceType CarRentalService") for
/// registering at a trader's type manager.
const std::string& car_rental_service_type_name();

/// The full standardised pool of car models — the labels the market-wide
/// CarModel_t enum agrees on.  Individual providers offer subsets.
const std::vector<std::string>& car_model_pool();

/// The standardised ("mature market", §4.1) CarRentalService type covering
/// the full model pool: CarModel, AverageMilage, ChargePerDay,
/// ChargeCurrency.  Register this at a trader before exporting offers from
/// heterogeneous providers.
trader::ServiceType canonical_car_rental_type();

}  // namespace cosm::services
