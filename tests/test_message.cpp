#include "rpc/message.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosm::rpc {
namespace {

TEST(Message, RequestRoundTrip) {
  Message m = Message::request(42, "svc-1", "SelectCar", {1, 2, 3});
  m.session = "sess-9";
  Message out = Message::decode(m.encode());
  EXPECT_EQ(out, m);
  EXPECT_EQ(out.type, MsgType::Request);
  EXPECT_EQ(out.session, "sess-9");
}

TEST(Message, ResponseRoundTrip) {
  Message m = Message::response(7, {0xAB});
  Message out = Message::decode(m.encode());
  EXPECT_EQ(out.type, MsgType::Response);
  EXPECT_EQ(out.request_id, 7u);
  EXPECT_EQ(out.body, Bytes{0xAB});
  EXPECT_TRUE(out.target.empty());
}

TEST(Message, FaultCarriesText) {
  Message m = Message::make_fault(9, "no such operation");
  Message out = Message::decode(m.encode());
  EXPECT_EQ(out.type, MsgType::Fault);
  EXPECT_EQ(out.fault, "no such operation");
  EXPECT_TRUE(out.body.empty());
}

TEST(Message, EmptyBodyRoundTrips) {
  Message m = Message::request(1, "t", "op", {});
  EXPECT_EQ(Message::decode(m.encode()).body, Bytes{});
}

TEST(Message, InvalidTypeByteRejected) {
  Message m = Message::request(1, "t", "op", {});
  Bytes b = m.encode();
  b[0] = 99;
  EXPECT_THROW(Message::decode(b), WireError);
}

TEST(Message, TrailingBytesRejected) {
  Bytes b = Message::request(1, "t", "op", {}).encode();
  b.push_back(0);
  EXPECT_THROW(Message::decode(b), WireError);
}

TEST(Message, TruncatedFrameRejected) {
  Bytes b = Message::request(1, "target", "operation", {1, 2, 3}).encode();
  b.resize(b.size() / 2);
  EXPECT_THROW(Message::decode(b), WireError);
}

TEST(Message, ToStringNames) {
  EXPECT_EQ(to_string(MsgType::Request), "request");
  EXPECT_EQ(to_string(MsgType::Response), "response");
  EXPECT_EQ(to_string(MsgType::Fault), "fault");
}

}  // namespace
}  // namespace cosm::rpc
