# Empty dependencies file for bench_c2_transition_costs.
# This may be replaced when dependencies are built.
