// End-to-end tests for the sidlc command-line tool: the binary path is
// injected at build time (SIDLC_PATH) and driven through std::system with
// output captured to temp files.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace {

namespace fs = std::filesystem;

class SidlcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir = fs::temp_directory_path() /
          ("cosm-sidlc-" + std::to_string(::getpid()) + "-" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir);
  }
  void TearDown() override { fs::remove_all(dir); }

  fs::path write(const std::string& name, const std::string& content) {
    fs::path file = dir / name;
    std::ofstream(file) << content;
    return file;
  }

  /// Run sidlc; returns exit code, fills `output` with stdout+stderr.
  int run(const std::string& args, std::string* output = nullptr) {
    fs::path out_file = dir / "out.txt";
    std::string cmd = std::string(SIDLC_PATH) + " " + args + " > " +
                      out_file.string() + " 2>&1";
    int status = std::system(cmd.c_str());
    if (output) {
      std::ifstream in(out_file);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      *output = buffer.str();
    }
    return WEXITSTATUS(status);
  }

  fs::path dir;
};

const char* kGoodSid = R"(
module Demo {
  typedef enum { A, B } E_t;
  interface I { E_t Flip([in] E_t v); };
  module COSM_Annotations { annotate Flip "flip the switch"; };
  module VendorBits { const long X = 1; };
};
)";

TEST_F(SidlcTest, CheckAcceptsValidSid) {
  auto file = write("demo.sidl", kGoodSid);
  std::string out;
  EXPECT_EQ(run("check " + file.string(), &out), 0);
  EXPECT_NE(out.find("OK"), std::string::npos);
}

TEST_F(SidlcTest, CheckReportsValidationIssues) {
  auto file = write("bad.sidl", R"(
    module Bad {
      interface I { void Op(); };
      module COSM_FSM { states { S }; initial GHOST; };
    };
  )");
  std::string out;
  EXPECT_EQ(run("check " + file.string(), &out), 1);
  EXPECT_NE(out.find("GHOST"), std::string::npos);
}

TEST_F(SidlcTest, CheckRejectsSyntaxErrors) {
  auto file = write("broken.sidl", "module Broken {");
  std::string out;
  EXPECT_EQ(run("check " + file.string(), &out), 1);
  EXPECT_NE(out.find("sidlc:"), std::string::npos);
}

TEST_F(SidlcTest, PrintRoundTripsThroughCheck) {
  auto file = write("demo.sidl", kGoodSid);
  std::string printed;
  EXPECT_EQ(run("print " + file.string(), &printed), 0);
  auto reprinted = write("reprinted.sidl", printed);
  EXPECT_EQ(run("check " + reprinted.string()), 0);
}

TEST_F(SidlcTest, InfoShowsSummary) {
  auto file = write("demo.sidl", kGoodSid);
  std::string out;
  EXPECT_EQ(run("info " + file.string(), &out), 0);
  EXPECT_NE(out.find("module Demo"), std::string::npos);
  EXPECT_NE(out.find("Flip/1"), std::string::npos);
  EXPECT_NE(out.find("VendorBits"), std::string::npos);
}

TEST_F(SidlcTest, FormRendersUi) {
  auto file = write("demo.sidl", kGoodSid);
  std::string out;
  EXPECT_EQ(run("form " + file.string(), &out), 0);
  EXPECT_NE(out.find("INVOKE Flip"), std::string::npos);
  EXPECT_NE(out.find("flip the switch"), std::string::npos);
}

TEST_F(SidlcTest, ConformsChecksSubtyping) {
  auto base = write("base.sidl",
                    "module Base { interface I { void Op(); }; };");
  auto sub = write("sub.sidl",
                   "module Sub { interface I { void Op(); void More(); }; };");
  EXPECT_EQ(run("conforms " + base.string() + " " + sub.string()), 0);
  EXPECT_EQ(run("conforms " + sub.string() + " " + base.string()), 1);
}

TEST_F(SidlcTest, StripDropsUnknownExtensions) {
  auto file = write("demo.sidl", kGoodSid);
  std::string out;
  EXPECT_EQ(run("strip " + file.string(), &out), 0);
  EXPECT_EQ(out.find("VendorBits"), std::string::npos);
  EXPECT_NE(out.find("COSM_Annotations"), std::string::npos);  // known kept
}

TEST_F(SidlcTest, UsageOnBadInvocation) {
  std::string out;
  EXPECT_EQ(run("bogus-command x.sidl", &out), 2);
  EXPECT_NE(out.find("usage:"), std::string::npos);
  EXPECT_EQ(run("conforms only-one.sidl", &out), 2);
}

TEST_F(SidlcTest, MissingFileReported) {
  std::string out;
  EXPECT_EQ(run("check " + (dir / "nope.sidl").string(), &out), 1);
  EXPECT_NE(out.find("cannot open"), std::string::npos);
}

}  // namespace
