file(REMOVE_RECURSE
  "CMakeFiles/test_preference.dir/test_preference.cpp.o"
  "CMakeFiles/test_preference.dir/test_preference.cpp.o.d"
  "test_preference"
  "test_preference.pdb"
  "test_preference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
