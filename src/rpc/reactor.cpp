#include "rpc/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "common/error.h"

namespace cosm::rpc {

namespace {

/// Frame layout: [u32 payload length][u64 correlation id][payload].
constexpr std::size_t kFrameHeader = 12;
constexpr std::uint32_t kMaxFrame = 64u << 20;  // 64 MiB sanity bound

/// Per-wakeup read budget: with level-triggered epoll the kernel re-reports
/// a socket that still has data, so capping one connection's turn keeps the
/// loop fair without losing anything.
constexpr std::size_t kMaxReadPerWakeup = 1u << 20;

void encode_frame_header(std::uint8_t* header, std::uint64_t corr,
                         std::uint32_t len) {
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    header[4 + i] = static_cast<std::uint8_t>(corr >> (8 * i));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Event loop

struct Reactor::Loop {
  int epfd = -1;
  int wakefd = -1;
  std::thread thread;
  std::mutex ops_mutex;
  bool stopped = false;  // under ops_mutex: no further posts accepted
  std::vector<std::function<void()>> ops;
  std::vector<ConnectionPtr> pending_adds;
  /// Registered connections by fd.  Touched only by the loop thread while
  /// it runs, and by the reactor destructor after the join.
  std::unordered_map<int, ConnectionPtr> conns;

  /// Run `op` on the loop thread; false when the loop already stopped (the
  /// destructor's sweep then covers whatever the op would have done).
  bool post(std::function<void()> op) {
    {
      std::lock_guard lock(ops_mutex);
      if (stopped) return false;
      ops.push_back(std::move(op));
    }
    wake();
    return true;
  }

  void wake() {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(wakefd, &one, sizeof(one));
  }

  void register_conn(const ConnectionPtr& conn) {
    int fd = -1;
    {
      std::lock_guard lock(conn->io_mutex_);
      if (!conn->closed_.load(std::memory_order_relaxed) && conn->fd_ >= 0) {
        epoll_event ev{};
        ev.events = 0;
        if (!conn->paused_) ev.events |= EPOLLIN;
        if (conn->want_write_) ev.events |= EPOLLOUT;
        ev.data.fd = conn->fd_;
        if (::epoll_ctl(epfd, EPOLL_CTL_ADD, conn->fd_, &ev) == 0) {
          conn->registered_ = true;
          fd = conn->fd_;
        }
      }
    }
    if (fd >= 0) {
      conns[fd] = conn;
    } else {
      Reactor::close_now(conn);  // closed while queued, or epoll refused
    }
  }

  void run() {
    std::vector<epoll_event> events(128);
    for (;;) {
      int n = ::epoll_wait(epfd, events.data(), static_cast<int>(events.size()),
                           -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;
      }
      for (int i = 0; i < n; ++i) {
        int fd = events[i].data.fd;
        if (fd == wakefd) {
          std::uint64_t drained;
          while (::read(wakefd, &drained, sizeof(drained)) > 0) {
          }
          continue;
        }
        auto it = conns.find(fd);
        if (it == conns.end()) continue;  // closed earlier in this batch
        ConnectionPtr conn = it->second;  // keep alive across callbacks
        std::uint32_t e = events[i].events;
        if (e & (EPOLLERR | EPOLLHUP)) {
          Reactor::close_now(conn);
          continue;
        }
        if ((e & EPOLLOUT) && conn->flush_ready()) {
          Reactor::close_now(conn);
          continue;
        }
        if ((e & EPOLLIN) && !conn->handle_readable()) {
          Reactor::close_now(conn);
        }
      }
      std::vector<std::function<void()>> ops_local;
      std::vector<ConnectionPtr> adds_local;
      bool stop;
      {
        std::lock_guard lock(ops_mutex);
        ops_local.swap(ops);
        adds_local.swap(pending_adds);
        stop = stopped;
      }
      for (auto& conn : adds_local) register_conn(conn);
      for (auto& op : ops_local) op();
      if (stop) return;
    }
  }
};

// ---------------------------------------------------------------------------
// Reactor

Reactor::Reactor(std::size_t threads) {
  if (threads == 0) threads = 1;
  loops_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wakefd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (loop->epfd < 0 || loop->wakefd < 0) {
      int err = errno;
      if (loop->epfd >= 0) ::close(loop->epfd);
      if (loop->wakefd >= 0) ::close(loop->wakefd);
      for (auto& started : loops_) {
        {
          std::lock_guard lock(started->ops_mutex);
          started->stopped = true;
        }
        started->wake();
        started->thread.join();
        ::close(started->epfd);
        ::close(started->wakefd);
      }
      loops_.clear();
      throw RpcError(std::string("reactor: cannot create event loop: ") +
                     std::strerror(err));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wakefd;
    ::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wakefd, &ev);
    loop->thread = std::thread([l = loop.get()] { l->run(); });
    loops_.push_back(std::move(loop));
  }
}

Reactor::~Reactor() {
  for (auto& loop : loops_) {
    {
      std::lock_guard lock(loop->ops_mutex);
      loop->stopped = true;
    }
    loop->wake();
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Loops are down: close everything still registered, plus adds that
  // raced the shutdown and never reached the epoll set.  on_closed() runs
  // on this thread — that is how client connections fail their pendings
  // when a network is destroyed mid-call.
  for (auto& loop : loops_) {
    std::vector<ConnectionPtr> leftovers;
    {
      std::lock_guard lock(loop->ops_mutex);
      leftovers.swap(loop->pending_adds);
      loop->ops.clear();
    }
    for (auto& conn : leftovers) close_now(conn);
    std::vector<ConnectionPtr> live;
    live.reserve(loop->conns.size());
    for (auto& [fd, conn] : loop->conns) live.push_back(conn);
    for (auto& conn : live) close_now(conn);
    loop->conns.clear();
    if (loop->epfd >= 0) ::close(loop->epfd);
    if (loop->wakefd >= 0) ::close(loop->wakefd);
  }
}

void Reactor::add(const ConnectionPtr& conn) {
  Loop* loop =
      loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size()]
          .get();
  conn->reactor_ = this;
  conn->loop_ = loop;
  bool posted = false;
  {
    std::lock_guard lock(loop->ops_mutex);
    if (!loop->stopped) {
      loop->pending_adds.push_back(conn);
      posted = true;
    }
  }
  if (posted) {
    loop->wake();
  } else {
    close_now(conn);  // reactor shutting down
  }
}

void Reactor::request_close(const ConnectionPtr& conn) {
  Loop* loop = static_cast<Loop*>(conn->loop_);
  if (!loop) {
    close_now(conn);  // never added: nothing else references it
    return;
  }
  // A failed post means the loop stopped; the destructor sweep closes it.
  loop->post([conn] { close_now(conn); });
}

void Reactor::request_close_after_flush(const ConnectionPtr& conn) {
  Loop* loop = static_cast<Loop*>(conn->loop_);
  if (!loop) {
    close_now(conn);
    return;
  }
  loop->post([conn] {
    bool close_immediately;
    {
      std::lock_guard lock(conn->io_mutex_);
      if (conn->closed_.load(std::memory_order_relaxed)) return;
      conn->close_after_flush_ = true;
      conn->paused_ = true;  // draining: no new frames in
      conn->sync_interest_locked();
      close_immediately = conn->outq_.empty();
    }
    if (close_immediately) close_now(conn);
  });
}

void Reactor::close_now(const ConnectionPtr& conn) {
  Loop* loop = static_cast<Loop*>(conn->loop_);
  int fd = -1;
  {
    std::lock_guard lock(conn->io_mutex_);
    if (conn->closed_.load(std::memory_order_relaxed)) return;
    fd = conn->fd_;
    if (conn->registered_ && loop && loop->epfd >= 0) {
      ::epoll_ctl(loop->epfd, EPOLL_CTL_DEL, fd, nullptr);
    }
    conn->registered_ = false;
    if (fd >= 0) ::close(fd);
    conn->fd_ = -1;
    conn->outq_.clear();
    conn->closed_.store(true, std::memory_order_release);
  }
  if (loop && fd >= 0) loop->conns.erase(fd);
  conn->on_closed();
  {
    std::lock_guard lock(conn->io_mutex_);
    conn->close_done_ = true;
  }
  conn->closed_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Connection

Reactor::Connection::Connection(int fd, ReactorCounters* counters)
    : fd_(fd), counters_(counters) {}

Reactor::Connection::~Connection() {
  // Registered connections are closed by the reactor; one that never made
  // it that far still owns its descriptor.
  if (fd_ >= 0) ::close(fd_);
}

void Reactor::Connection::wait_closed() {
  std::unique_lock lock(io_mutex_);
  closed_cv_.wait(lock, [&] { return close_done_; });
}

std::size_t Reactor::Connection::pending_write_bytes() const {
  std::lock_guard lock(io_mutex_);
  std::size_t total = 0;
  for (const OutFrame& f : outq_) {
    total += kFrameHeader + f.payload.size() - f.off;
  }
  return total;
}

bool Reactor::Connection::queue_write_frame(std::uint64_t corr,
                                            const Bytes& payload) {
  return write_frame(corr, payload, nullptr);
}

bool Reactor::Connection::queue_write_frame(std::uint64_t corr, Bytes&& payload) {
  return write_frame(corr, payload, &payload);
}

bool Reactor::Connection::write_frame(std::uint64_t corr, const Bytes& payload,
                                      Bytes* movable) {
  std::uint8_t header[kFrameHeader];
  encode_frame_header(header, corr, static_cast<std::uint32_t>(payload.size()));
  const std::size_t total = kFrameHeader + payload.size();

  std::unique_lock lock(io_mutex_);
  if (closed_.load(std::memory_order_relaxed)) return false;
  std::size_t sent = 0;
  bool hard_error = false;
  if (outq_.empty()) {
    // Opportunistic gathered send: header and payload leave in one sendmsg
    // (the payload is never copied into a contiguous frame), and most
    // frames fit the socket buffer outright without touching the queue or
    // waking the event loop.  MSG_NOSIGNAL: a peer gone mid-write must
    // surface as EPIPE, not kill the process (plain writev cannot ask for
    // that, hence sendmsg).
    while (sent < total) {
      iovec iov[2];
      int niov = 0;
      if (sent < kFrameHeader) {
        iov[niov++] = {header + sent, kFrameHeader - sent};
        if (!payload.empty()) {
          iov[niov++] = {const_cast<std::uint8_t*>(payload.data()),
                         payload.size()};
        }
      } else {
        iov[niov++] = {const_cast<std::uint8_t*>(payload.data()) +
                           (sent - kFrameHeader),
                       payload.size() - (sent - kFrameHeader)};
      }
      msghdr mh{};
      mh.msg_iov = iov;
      mh.msg_iovlen = static_cast<std::size_t>(niov);
      ssize_t r = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) hard_error = true;
        break;
      }
      sent += static_cast<std::size_t>(r);
    }
    if (counters_ && sent > 0) {
      counters_->bytes_out.fetch_add(sent, std::memory_order_relaxed);
    }
  }
  if (hard_error) {
    // The stream broke mid-frame; the peer drops a partial frame without
    // dispatching it, so the caller may safely reissue elsewhere.
    outq_.clear();
    Reactor* reactor = reactor_;
    lock.unlock();
    if (reactor) reactor->request_close(shared_from_this());
    return false;
  }
  if (sent == total) return true;  // fully on the wire
  OutFrame frame;
  std::memcpy(frame.header, header, kFrameHeader);
  frame.payload = movable ? std::move(*movable) : payload;
  frame.off = sent;
  outq_.push_back(std::move(frame));
  if (!want_write_) {
    want_write_ = true;
    sync_interest_locked();
  }
  return true;
}

bool Reactor::Connection::flush_ready() {
  // Gather up to kFlushBatch parked frames into one sendmsg per round —
  // header and payload slices straight from the queue, no flat staging
  // buffer.
  constexpr std::size_t kFlushBatch = 16;
  std::lock_guard lock(io_mutex_);
  if (closed_.load(std::memory_order_relaxed)) return false;
  while (!outq_.empty()) {
    iovec iov[2 * kFlushBatch];
    std::size_t niov = 0;
    for (auto it = outq_.begin();
         it != outq_.end() && niov + 2 <= 2 * kFlushBatch; ++it) {
      std::size_t off = it->off;
      if (off < kFrameHeader) {
        iov[niov++] = {it->header + off, kFrameHeader - off};
        off = 0;
      } else {
        off -= kFrameHeader;
      }
      if (off < it->payload.size()) {
        iov[niov++] = {it->payload.data() + off, it->payload.size() - off};
      }
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    ssize_t r = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;  // stay armed
      return true;  // hard error: close (pendings fail via on_closed)
    }
    if (counters_) {
      counters_->bytes_out.fetch_add(static_cast<std::size_t>(r),
                                     std::memory_order_relaxed);
    }
    std::size_t consumed = static_cast<std::size_t>(r);
    while (consumed > 0 && !outq_.empty()) {
      OutFrame& f = outq_.front();
      const std::size_t remaining = kFrameHeader + f.payload.size() - f.off;
      const std::size_t take = std::min(remaining, consumed);
      f.off += take;
      consumed -= take;
      if (f.off == kFrameHeader + f.payload.size()) outq_.pop_front();
    }
  }
  if (want_write_) {
    want_write_ = false;
    sync_interest_locked();
  }
  return close_after_flush_;
}

bool Reactor::Connection::handle_readable() {
  std::uint8_t buf[65536];
  std::size_t total = 0;
  bool eof = false;
  for (;;) {
    ssize_t r = ::read(fd_, buf, sizeof(buf));
    if (r > 0) {
      inbuf_.insert(inbuf_.end(), buf, buf + r);
      if (counters_) {
        counters_->bytes_in.fetch_add(static_cast<std::size_t>(r),
                                      std::memory_order_relaxed);
      }
      total += static_cast<std::size_t>(r);
      if (total >= kMaxReadPerWakeup) break;
      continue;
    }
    if (r == 0) {
      eof = true;  // deliver what arrived before the EOF, then close
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // socket error: close (a partial frame is dropped)
  }
  if (!deliver_buffered()) return false;
  return !eof;
}

bool Reactor::Connection::deliver_buffered() {
  for (;;) {
    {
      std::lock_guard lock(io_mutex_);
      if (paused_ || closed_.load(std::memory_order_relaxed)) break;
    }
    std::size_t avail = inbuf_.size() - in_off_;
    if (avail < kFrameHeader) break;
    const std::uint8_t* p = inbuf_.data() + in_off_;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    }
    if (len > kMaxFrame) return false;  // protocol violation: drop the peer
    if (avail < kFrameHeader + len) break;
    std::uint64_t corr = 0;
    for (int i = 0; i < 8; ++i) {
      corr |= static_cast<std::uint64_t>(p[4 + i]) << (8 * i);
    }
    Bytes payload(p + kFrameHeader, p + kFrameHeader + len);
    in_off_ += kFrameHeader + len;
    on_frame(corr, std::move(payload));
  }
  // Compact the consumed prefix so long-lived connections stay small.
  if (in_off_ == inbuf_.size()) {
    inbuf_.clear();
    in_off_ = 0;
  } else if (in_off_ > (64u << 10)) {
    inbuf_.erase(inbuf_.begin(),
                 inbuf_.begin() + static_cast<std::ptrdiff_t>(in_off_));
    in_off_ = 0;
  }
  return true;
}

void Reactor::Connection::pause_reads() {
  std::lock_guard lock(io_mutex_);
  if (paused_ || closed_.load(std::memory_order_relaxed)) return;
  paused_ = true;
  sync_interest_locked();
}

void Reactor::Connection::resume_reads() {
  {
    std::lock_guard lock(io_mutex_);
    if (!paused_ || closed_.load(std::memory_order_relaxed)) return;
    if (close_after_flush_) return;  // draining: stay paused
    paused_ = false;
    sync_interest_locked();
  }
  // Frames may already sit fully assembled in the buffer; deliver them on
  // the owning loop (read state is loop-thread-only).
  Loop* loop = static_cast<Loop*>(loop_);
  if (!loop) return;
  auto self = shared_from_this();
  loop->post([self] {
    if (!self->closed() && !self->deliver_buffered()) close_now(self);
  });
}

void Reactor::Connection::sync_interest_locked() {
  if (!registered_ || fd_ < 0) return;
  Loop* loop = static_cast<Loop*>(loop_);
  if (!loop || loop->epfd < 0) return;
  epoll_event ev{};
  ev.events = 0;
  if (!paused_) ev.events |= EPOLLIN;
  if (want_write_) ev.events |= EPOLLOUT;
  ev.data.fd = fd_;
  ::epoll_ctl(loop->epfd, EPOLL_CTL_MOD, fd_, &ev);
}

}  // namespace cosm::rpc
