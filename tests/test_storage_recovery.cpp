// Durability tests (ROADMAP item 5): WAL round trips, torn tails,
// snapshot + tail replay, crash-during-snapshot orphans, replay-mark
// persistence, trader-level recovery, subscription re-arm (one
// anti-entropy round instead of a full resnapshot), and duplicate RPCs
// reissued across a restart.

#include "trader/storage/wal_storage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/runtime.h"
#include "rpc/call_context.h"
#include "rpc/fault_injection.h"
#include "rpc/inproc.h"
#include "rpc/message.h"
#include "rpc/replay_cache.h"
#include "trader/facade.h"
#include "trader/trader.h"
#include "wire/codec.h"

namespace cosm::trader::storage {
namespace {

namespace fs = std::filesystem;

using sidl::TypeDesc;
using wire::Value;

sidl::ServiceRef mk_ref(const std::string& id) {
  return {id, "inproc://host", "CarRentalService"};
}

ServiceType base_type() {
  ServiceType t;
  t.name = "Service";
  return t;
}

ServiceType rental_type(const std::string& supertype = "") {
  ServiceType t;
  t.name = "CarRentalService";
  t.supertype = supertype;
  t.attributes = {{"ChargePerDay", TypeDesc::float_(), true},
                  {"ChargeCurrency", TypeDesc::string_(), true}};
  return t;
}

AttrMap attrs(double charge, const std::string& currency = "USD") {
  return {{"ChargePerDay", Value::real(charge)},
          {"ChargeCurrency", Value::string(currency)}};
}

OfferPtr mk_offer(const std::string& id, double charge,
                  std::uint64_t lease = 0) {
  auto offer = std::make_shared<Offer>();
  offer->id = id;
  offer->service_type = "CarRentalService";
  offer->ref = mk_ref("svc-" + id);
  offer->attributes = attrs(charge);
  offer->lease_expires_at = lease;
  return offer;
}

class StorageRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir = fs::temp_directory_path() /
          ("cosm-wal-" + std::to_string(::getpid()) + "-" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir);
  }
  void TearDown() override { fs::remove_all(dir); }

  StorageOptions opts(std::size_t snapshot_every = 0) const {
    StorageOptions o;
    o.directory = dir.string();
    o.segment_bytes = 1 << 20;
    o.snapshot_every_bytes = snapshot_every;  // 0 = manual snapshots only
    return o;
  }

  std::shared_ptr<WalStorage> engine(std::size_t snapshot_every = 0) const {
    return std::make_shared<WalStorage>(opts(snapshot_every));
  }

  /// The highest-numbered live WAL segment (where the tail records are).
  fs::path tail_segment() const {
    fs::path best;
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("wal-", 0) == 0 && entry.file_size() > 0 &&
          (best.empty() || name > best.filename().string())) {
        best = entry.path();
      }
    }
    return best;
  }

  std::size_t count_files(const std::string& prefix) const {
    std::size_t n = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().filename().string().rfind(prefix, 0) == 0) ++n;
    }
    return n;
  }

  fs::path dir;
};

TEST_F(StorageRecoveryTest, FreshDirectoryRecoversNothing) {
  auto wal = engine();
  EXPECT_TRUE(wal->durable());
  RecoveredState state;
  EXPECT_FALSE(wal->recover(&state));
  EXPECT_TRUE(state.offers.empty());
  EXPECT_TRUE(state.types.empty());
  EXPECT_TRUE(wal->recovered_replay_marks().empty());
}

TEST_F(StorageRecoveryTest, LogHookBeforeRecoverIsAContractError) {
  auto wal = engine();
  EXPECT_THROW(wal->log_clock(1), ContractError);
}

TEST_F(StorageRecoveryTest, WalRoundTripRestoresEverything) {
  {
    auto wal = engine();
    RecoveredState state;
    wal->recover(&state);
    wal->log_type_added(rental_type());
    wal->log_upserts({mk_offer("o-1", 80), mk_offer("o-2", 60, 12)}, 3);
    wal->log_clock(5);
    SubscriptionRecord sub;
    sub.id = 4;
    sub.subscriber = "sub-trader";
    sub.sink_desc = "ref:sub-trader";
    sub.scope.service_types = {"CarRentalService"};
    sub.next_seq = 7;
    wal->log_subscription(sub);
    wal->log_removes({"o-2"});
    wal->flush();
  }
  auto wal = engine();
  RecoveredState state;
  EXPECT_TRUE(wal->recover(&state));
  EXPECT_EQ(state.next_offer, 3u);
  EXPECT_EQ(state.clock_hours, 5u);
  ASSERT_EQ(state.types.size(), 1u);
  EXPECT_EQ(state.types[0].name, "CarRentalService");
  ASSERT_EQ(state.offers.size(), 1u);
  EXPECT_EQ(state.offers[0]->id, "o-1");
  EXPECT_DOUBLE_EQ(state.offers[0]->attributes.at("ChargePerDay").as_real(), 80.0);
  ASSERT_EQ(state.subscriptions.size(), 1u);
  EXPECT_EQ(state.subscriptions[0].id, 4u);
  EXPECT_EQ(state.subscriptions[0].sink_desc, "ref:sub-trader");
  // Sequence slack: never below what was persisted, so the re-armed
  // publisher cannot reuse a number the subscriber may have acked.
  EXPECT_GE(state.subscriptions[0].next_seq, 7u);
}

TEST_F(StorageRecoveryTest, UnsubscriptionAndTypeRemovalReplay) {
  {
    auto wal = engine();
    wal->recover(nullptr);
    wal->log_type_added(base_type());
    wal->log_type_added(rental_type());
    wal->log_type_removed("Service");
    SubscriptionRecord sub;
    sub.id = 1;
    sub.sink_desc = "ref:x";
    wal->log_subscription(sub);
    wal->log_unsubscription(1);
    wal->flush();
  }
  auto wal = engine();
  RecoveredState state;
  EXPECT_TRUE(wal->recover(&state));
  ASSERT_EQ(state.types.size(), 1u);
  EXPECT_EQ(state.types[0].name, "CarRentalService");
  EXPECT_TRUE(state.subscriptions.empty());
}

TEST_F(StorageRecoveryTest, ReplayMarksSurviveRestart) {
  {
    auto wal = engine();
    wal->recover(nullptr);
    {
      rpc::CallContext ctx;
      ctx.session = "client-a";
      ctx.request_id = 9;
      rpc::CallContextScope scope(ctx);
      wal->log_upserts({mk_offer("o-1", 80)});
    }
    {
      rpc::CallContext ctx;
      ctx.session = "client-a";
      ctx.request_id = 4;  // lower id must not regress the high-water mark
      rpc::CallContextScope scope(ctx);
      wal->log_removes({"o-1"});
    }
    {
      rpc::CallContext ctx;
      ctx.session = "client-b";
      ctx.request_id = 2;
      rpc::CallContextScope scope(ctx);
      wal->log_clock(1);
    }
    wal->flush();
  }
  auto wal = engine();
  wal->recover(nullptr);
  auto marks = wal->recovered_replay_marks();
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_EQ(marks.at("client-a"), 9u);
  EXPECT_EQ(marks.at("client-b"), 2u);

  // Seeded into the replay cache, a pre-restart duplicate is refused.
  rpc::ReplayCache cache(16);
  cache.seed_marks(marks);
  EXPECT_EQ(cache.lookup({"client-a", 9}, nullptr),
            rpc::ReplayCache::Lookup::DuplicateLost);
  EXPECT_EQ(cache.lookup({"client-a", 10}, nullptr),
            rpc::ReplayCache::Lookup::Miss);
}

TEST_F(StorageRecoveryTest, TornTailDropsOnlyTheUncommittedSuffix) {
  {
    auto wal = engine();
    wal->recover(nullptr);
    wal->log_upserts({mk_offer("o-1", 80)});
    wal->log_upserts({mk_offer("o-2", 60)});
    wal->flush();
  }
  // Crash mid-write: the last frame is cut short on disk.
  fs::path tail = tail_segment();
  ASSERT_FALSE(tail.empty());
  const auto size = fs::file_size(tail);
  ASSERT_GT(size, 5u);
  fs::resize_file(tail, size - 5);

  {
    auto wal = engine();
    RecoveredState state;
    EXPECT_TRUE(wal->recover(&state));
    ASSERT_EQ(state.offers.size(), 1u);
    EXPECT_EQ(state.offers[0]->id, "o-1");
    // The log is re-armed past the torn frame: new appends replay cleanly.
    wal->log_upserts({mk_offer("o-3", 40)});
    wal->flush();
  }
  auto wal = engine();
  RecoveredState state;
  EXPECT_TRUE(wal->recover(&state));
  ASSERT_EQ(state.offers.size(), 2u);
  std::set<std::string> ids{state.offers[0]->id, state.offers[1]->id};
  EXPECT_TRUE(ids.count("o-1"));
  EXPECT_TRUE(ids.count("o-3"));
}

/// Fixed market state handed to the snapshot writer (stands in for the
/// trader in engine-level tests).
class StubSource final : public SnapshotSource {
 public:
  SnapshotState state;
  SnapshotState snapshot_state() override { return state; }
};

TEST_F(StorageRecoveryTest, SnapshotPlusTailReplayAndTruncation) {
  {
    auto wal = engine();
    wal->recover(nullptr);
    wal->log_type_added(rental_type());
    wal->log_upserts({mk_offer("o-1", 80), mk_offer("o-2", 60)}, 3);

    StubSource source;
    source.state.next_offer = 3;
    source.state.types = {rental_type()};
    source.state.offers = {*mk_offer("o-1", 80), *mk_offer("o-2", 60)};
    wal->set_snapshot_source(&source);
    EXPECT_TRUE(wal->snapshot_now());
    EXPECT_EQ(wal->snapshots_taken(), 1u);
    wal->set_snapshot_source(nullptr);

    // Superseded segments are gone; exactly one snapshot remains.
    EXPECT_EQ(count_files("snapshot-"), 1u);

    // Tail records on top of the snapshot.
    wal->log_upserts({mk_offer("o-3", 40)}, 4);
    wal->log_removes({"o-2"});
    wal->flush();
  }
  auto wal = engine();
  RecoveredState state;
  EXPECT_TRUE(wal->recover(&state));
  EXPECT_EQ(state.next_offer, 4u);
  ASSERT_EQ(state.offers.size(), 2u);
  std::set<std::string> ids{state.offers[0]->id, state.offers[1]->id};
  EXPECT_TRUE(ids.count("o-1"));
  EXPECT_TRUE(ids.count("o-3"));
  ASSERT_EQ(state.types.size(), 1u);
}

TEST_F(StorageRecoveryTest, CrashDuringSnapshotLeavesRecoveryIntact) {
  {
    auto wal = engine();
    wal->recover(nullptr);
    wal->log_upserts({mk_offer("o-1", 80)});
    wal->flush();
  }
  // A snapshot that died before its rename leaves only a .tmp file; it
  // must not shadow the log or an older snapshot.
  {
    std::ofstream orphan(dir / "snapshot-00000099.snap.tmp",
                         std::ios::binary);
    orphan << "half-written garbage";
  }
  auto wal = engine();
  RecoveredState state;
  EXPECT_TRUE(wal->recover(&state));
  ASSERT_EQ(state.offers.size(), 1u);
  EXPECT_EQ(state.offers[0]->id, "o-1");
}

// --- trader-level recovery -------------------------------------------------

TEST_F(StorageRecoveryTest, TraderRecoverRestoresMarket) {
  std::vector<std::string> ids;
  {
    Trader trader("pub", 42, engine());
    EXPECT_FALSE(trader.recover());
    // Subtype chain: recovery must re-register "Service" before
    // "CarRentalService" even though the journal folds types by name.
    trader.types().add(base_type());
    trader.types().add(rental_type("Service"));
    ids.push_back(trader.export_offer("CarRentalService", mk_ref("a"), attrs(80)));
    ids.push_back(trader.export_offer("CarRentalService", mk_ref("b"), attrs(60)));
    ids.push_back(trader.export_offer("CarRentalService", mk_ref("c"), attrs(50)));
    trader.modify(ids[0], attrs(75));
    trader.set_lease(ids[1], 5);
    trader.withdraw(ids[2]);
    trader.advance_clock(2);
  }
  Trader trader("pub", 42, engine());
  EXPECT_TRUE(trader.recover());
  EXPECT_TRUE(trader.types().has("Service"));
  EXPECT_TRUE(trader.types().has("CarRentalService"));
  EXPECT_EQ(trader.offer_count(), 2u);
  EXPECT_EQ(trader.clock_hours(), 2u);

  auto offers = trader.list_offers("CarRentalService");
  ASSERT_EQ(offers.size(), 2u);
  for (const Offer& offer : offers) {
    if (offer.id == ids[0]) {
      EXPECT_DOUBLE_EQ(offer.attributes.at("ChargePerDay").as_real(), 75.0);
    }
  }

  // The offer-id counter was recovered: no recycled ids.
  std::string fresh =
      trader.export_offer("CarRentalService", mk_ref("d"), attrs(40));
  EXPECT_EQ(std::count(ids.begin(), ids.end(), fresh), 0);

  // The persisted lease still sweeps on the recovered logical clock.
  EXPECT_EQ(trader.advance_clock(10), 1u);
  EXPECT_EQ(trader.offer_count(), 2u);
}

TEST_F(StorageRecoveryTest, DurableTraderRequiresRecoverBeforeMutation) {
  {
    Trader premature("pub", 42, engine());
    // Any journalled mutation before recover() is a contract error.
    EXPECT_THROW(premature.types().add(rental_type()), ContractError);
  }
  Trader trader("pub", 42, engine());
  EXPECT_FALSE(trader.recover());
  trader.types().add(rental_type());
  EXPECT_NO_THROW(trader.export_offer("CarRentalService", mk_ref("a"), attrs(80)));
}

TEST_F(StorageRecoveryTest, RecoveredSubscriptionRearmsWithOneAntiEntropyRound) {
  Trader subscriber("sub");
  subscriber.types().add(rental_type());

  SubscriptionScope scope;
  scope.service_types = {"CarRentalService"};
  {
    Trader pub("pub", 42, engine());
    pub.recover();
    pub.types().add(rental_type());
    pub.add_subscription("sub", scope,
                         std::make_shared<LocalReplicationSink>(subscriber),
                         "local:sub");
    pub.export_offer("CarRentalService", mk_ref("a"), attrs(80));
    pub.flush_replication();
    EXPECT_EQ(subscriber.replica_offer_count(), 1u);
    // A delta the subscriber never saw: queued but not flushed at "crash".
    pub.export_offer("CarRentalService", mk_ref("b"), attrs(60));
  }

  Trader pub("pub", 42, engine());
  pub.set_subscription_sink_factory([&](const std::string& desc) {
    EXPECT_EQ(desc, "local:sub");
    return std::make_shared<LocalReplicationSink>(subscriber);
  });
  EXPECT_TRUE(pub.recover());
  ASSERT_EQ(pub.subscriptions().size(), 1u);
  EXPECT_EQ(pub.subscriptions()[0].subscriber, "sub");

  // Re-arm: one digest/repair round reconciles the divergence — never a
  // full resnapshot.
  pub.flush_replication();
  EXPECT_EQ(pub.replication_snapshots_sent(), 0u);
  EXPECT_GE(pub.replication_digest_repairs(), 1u);
  EXPECT_EQ(subscriber.replica_offer_count(), 2u);

  // The re-armed sequence stream is contiguous: fresh deltas keep flowing.
  pub.export_offer("CarRentalService", mk_ref("c"), attrs(40));
  pub.flush_replication();
  EXPECT_EQ(subscriber.replica_offer_count(), 3u);
  EXPECT_EQ(pub.replication_snapshots_sent(), 0u);
}

TEST_F(StorageRecoveryTest, ConcurrentDurableExportsRecoverExactly) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  {
    Trader trader("pub", 42, engine());
    trader.recover();
    trader.types().add(rental_type());
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&trader, t] {
        for (int i = 0; i < kPerThread; ++i) {
          trader.export_offer("CarRentalService",
                              mk_ref(std::to_string(t) + "-" + std::to_string(i)),
                              attrs(50.0 + t));
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(trader.offer_count(),
              static_cast<std::size_t>(kThreads * kPerThread));
  }
  Trader trader("pub", 42, engine());
  EXPECT_TRUE(trader.recover());
  EXPECT_EQ(trader.offer_count(),
            static_cast<std::size_t>(kThreads * kPerThread));
  auto offers = trader.list_offers("CarRentalService");
  std::set<std::string> unique;
  for (const Offer& offer : offers) unique.insert(offer.id);
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

// --- end to end through the runtime ---------------------------------------

Value attr_value(const std::string& name, Value v) {
  return Value::structure("Attribute_t",
                          {{"name", Value::string(name)}, {"value", std::move(v)}});
}

Bytes export_request_frame(const std::string& target, std::uint64_t request_id,
                           const std::string& session,
                           const std::string& provider) {
  Value args = Value::sequence(
      {Value::string("CarRentalService"), Value::service_ref(mk_ref(provider)),
       Value::sequence({attr_value("ChargePerDay", Value::real(80)),
                        attr_value("ChargeCurrency", Value::string("USD"))})});
  rpc::Message request = rpc::Message::request(request_id, target, "Export",
                                               wire::encode_value(args));
  request.session = session;
  return request.encode();
}

TEST_F(StorageRecoveryTest, DuplicateRpcAcrossRestartIsRefusedNotReExecuted) {
  rpc::InProcNetwork net;
  auto cfg = core::CosmConfig().with_durability(dir.string()).with_at_most_once();
  {
    core::CosmRuntime runtime(net, cfg);
    runtime.trader().types().add(rental_type());
    Bytes frame = export_request_frame(runtime.trader_ref().id, 7, "client-a", "p1");
    Bytes r1 = net.call(runtime.trader_ref().endpoint, frame,
                        std::chrono::milliseconds(500));
    EXPECT_TRUE(rpc::Message::decode(r1).fault.empty());
    EXPECT_EQ(runtime.trader().offer_count(), 1u);
  }

  core::CosmRuntime runtime(net, cfg);
  EXPECT_EQ(runtime.trader().offer_count(), 1u);

  // Same (session, request id) reissued after the restart: the journal
  // proves it executed, the response frame is gone — at-most-once answers
  // with a fault instead of exporting a duplicate.
  Bytes dup = export_request_frame(runtime.trader_ref().id, 7, "client-a", "p1");
  rpc::Message fault = rpc::Message::decode(net.call(
      runtime.trader_ref().endpoint, dup, std::chrono::milliseconds(500)));
  EXPECT_NE(fault.fault.find("already executed before restart"),
            std::string::npos)
      << fault.fault;
  EXPECT_EQ(runtime.trader().offer_count(), 1u);

  // A genuinely new request on the same session executes normally.
  Bytes fresh = export_request_frame(runtime.trader_ref().id, 8, "client-a", "p2");
  rpc::Message ok = rpc::Message::decode(net.call(
      runtime.trader_ref().endpoint, fresh, std::chrono::milliseconds(500)));
  EXPECT_TRUE(ok.fault.empty()) << ok.fault;
  EXPECT_EQ(runtime.trader().offer_count(), 2u);
}

TEST_F(StorageRecoveryTest, RecoveryRearmsRpcSubscribersUnderFaults) {
  rpc::InProcNetwork inner;
  rpc::FaultInjectingNetwork net(inner, /*seed=*/7);

  auto pub_cfg = core::CosmConfig().with_durability(dir.string());
  auto pub = std::make_unique<core::CosmRuntime>(net, pub_cfg);
  core::CosmRuntime sub(net, core::CosmConfig());
  pub->trader().types().add(rental_type());
  sub.trader().types().add(rental_type());

  SubscriptionScope scope;
  scope.service_types = {"CarRentalService"};
  sub.link_trader("pub", pub->trader_ref());
  sub.subscribe_trader("pub", scope);

  pub->trader().export_offer("CarRentalService", mk_ref("a"), attrs(80));
  pub->trader().flush_replication();
  EXPECT_EQ(sub.trader().replica_offer_count(), 1u);

  // Publisher "crashes" (journal survives) and comes back on a fresh
  // endpoint; the persisted sink descriptor still names the subscriber.
  pub.reset();
  pub = std::make_unique<core::CosmRuntime>(net, pub_cfg);
  EXPECT_EQ(pub->trader().offer_count(), 1u);
  ASSERT_EQ(pub->trader().subscriptions().size(), 1u);

  // First re-arm attempt dies on an injected transport fault; the
  // subscription stays pending and the next round retries.
  net.fail_next(1);
  pub->trader().flush_replication();
  EXPECT_GE(pub->trader().replication_flush_failures(), 1u);

  pub->trader().flush_replication();
  EXPECT_EQ(pub->trader().replication_snapshots_sent(), 0u);
  EXPECT_EQ(sub.trader().replica_offer_count(), 1u);

  // Post-recovery deltas flow to the re-armed subscriber.
  pub->trader().export_offer("CarRentalService", mk_ref("b"), attrs(60));
  pub->trader().flush_replication();
  EXPECT_EQ(sub.trader().replica_offer_count(), 2u);

  ReplicaInfo replica = sub.trader().replica_info("pub");
  EXPECT_TRUE(replica.synced);
}

}  // namespace
}  // namespace cosm::trader::storage
