#include "uims/editor.h"

#include <cctype>

#include "common/error.h"
#include "wire/marshal.h"

namespace cosm::uims {

using sidl::TypeDesc;
using sidl::TypeKind;
using wire::Value;

Value parse_scalar(const std::string& text, const TypeDesc& type) {
  try {
    switch (type.kind()) {
      case TypeKind::Bool:
        if (text == "true" || text == "1" || text == "yes" || text == "on") {
          return Value::boolean(true);
        }
        if (text == "false" || text == "0" || text == "no" || text == "off") {
          return Value::boolean(false);
        }
        throw TypeError("'" + text + "' is not a boolean");
      case TypeKind::Int: {
        std::size_t pos = 0;
        std::int64_t v = std::stoll(text, &pos);
        if (pos != text.size()) throw TypeError("'" + text + "' is not a long");
        return Value::integer(v);
      }
      case TypeKind::Float: {
        std::size_t pos = 0;
        double v = std::stod(text, &pos);
        if (pos != text.size()) throw TypeError("'" + text + "' is not a double");
        return Value::real(v);
      }
      case TypeKind::String:
        return Value::string(text);
      case TypeKind::Enum:
        if (type.label_index(text) < 0) {
          throw TypeError("'" + text + "' is not a label of enum " + type.name());
        }
        return Value::enumerated(type.name(), text);
      case TypeKind::ServiceRef:
        return Value::service_ref(sidl::ServiceRef::from_string(text));
      default:
        throw TypeError("cannot parse text into " + sidl::to_string(type.kind()) +
                        " — not a scalar editor");
    }
  } catch (const std::invalid_argument&) {
    throw TypeError("'" + text + "' is not a valid " + sidl::to_string(type.kind()));
  } catch (const std::out_of_range&) {
    throw TypeError("'" + text + "' is out of range for " + sidl::to_string(type.kind()));
  }
}

namespace {

struct PathStep {
  std::string field;
  std::size_t index = 0;
  bool is_index = false;
};

std::vector<PathStep> parse_path(const std::string& path) {
  std::vector<PathStep> steps;
  std::size_t i = 0;
  bool expect_field = true;
  while (i < path.size()) {
    if (path[i] == '.') {
      ++i;
      expect_field = true;
      continue;
    }
    if (path[i] == '[') {
      std::size_t close = path.find(']', i);
      if (close == std::string::npos) {
        throw NotFound("malformed path '" + path + "': unterminated '['");
      }
      PathStep s;
      s.is_index = true;
      try {
        s.index = static_cast<std::size_t>(
            std::stoul(path.substr(i + 1, close - i - 1)));
      } catch (const std::exception&) {
        throw NotFound("malformed path '" + path + "': bad index");
      }
      steps.push_back(s);
      i = close + 1;
      expect_field = false;
      continue;
    }
    if (!expect_field && !steps.empty()) {
      throw NotFound("malformed path '" + path + "'");
    }
    std::size_t j = i;
    while (j < path.size() && path[j] != '.' && path[j] != '[') ++j;
    PathStep s;
    s.field = path.substr(i, j - i);
    if (s.field.empty()) throw NotFound("malformed path '" + path + "'");
    steps.push_back(std::move(s));
    i = j;
    expect_field = false;
  }
  if (steps.empty()) throw NotFound("empty path");
  return steps;
}

using LeafFn = Value (*)(const Value&, const TypeDesc&, const void*);

Value rebuild(const Value& current, const TypeDesc& type,
              const std::vector<PathStep>& steps, std::size_t depth,
              const std::string& path, LeafFn leaf, const void* ctx,
              bool peel_optional_at_leaf) {
  // Optionals are transparent to paths: editing "p.x" where p is
  // optional<struct> edits the payload, which must be present.  For leaves,
  // transparency applies to value edits (set/set_ref/add/remove) but not to
  // presence toggles, which address the optional itself.
  if (type.kind() == TypeKind::Optional &&
      (depth < steps.size() || peel_optional_at_leaf)) {
    if (!current.has_payload()) {
      throw NotFound("path '" + path + "': optional is absent — toggle presence first");
    }
    Value inner = rebuild(current.payload(), *type.element(), steps, depth, path,
                          leaf, ctx, peel_optional_at_leaf);
    return Value::optional_of(std::move(inner));
  }
  if (depth == steps.size()) {
    return leaf(current, type, ctx);
  }
  const PathStep& step = steps[depth];
  if (step.is_index) {
    if (type.kind() != TypeKind::Sequence) {
      throw NotFound("path '" + path + "': [index] applied to " +
                     sidl::to_string(type.kind()));
    }
    const auto& elems = current.elements();
    if (step.index >= elems.size()) {
      throw NotFound("path '" + path + "': index " + std::to_string(step.index) +
                     " out of range (size " + std::to_string(elems.size()) + ")");
    }
    std::vector<Value> updated(elems);
    updated[step.index] = rebuild(elems[step.index], *type.element(), steps,
                                  depth + 1, path, leaf, ctx, peel_optional_at_leaf);
    return Value::sequence(std::move(updated));
  }
  if (type.kind() != TypeKind::Struct) {
    throw NotFound("path '" + path + "': field '" + step.field + "' applied to " +
                   sidl::to_string(type.kind()));
  }
  const sidl::FieldDesc* fd = type.find_field(step.field);
  if (fd == nullptr) {
    throw NotFound("path '" + path + "': struct " + type.name() +
                   " has no field '" + step.field + "'");
  }
  std::vector<std::pair<std::string, Value>> fields;
  fields.reserve(current.field_count());
  for (std::size_t i = 0; i < current.field_count(); ++i) {
    if (current.field_name(i) == step.field) {
      fields.emplace_back(step.field,
                          rebuild(current.field(i), *fd->type, steps, depth + 1,
                                  path, leaf, ctx, peel_optional_at_leaf));
    } else {
      fields.emplace_back(current.field_name(i), current.field(i));
    }
  }
  return Value::structure(current.type_name(), std::move(fields));
}

const TypeDesc* peel(const TypeDesc* type, const Value** value,
                     const PathStep& step, const std::string& path) {
  // Walk one step for read-only navigation; optionals are transparent.
  while (type->kind() == TypeKind::Optional) {
    if (!(*value)->has_payload()) {
      throw NotFound("path '" + path + "': optional is absent");
    }
    *value = &(*value)->payload();
    type = type->element().get();
  }
  if (step.is_index) {
    if (type->kind() != TypeKind::Sequence) {
      throw NotFound("path '" + path + "': [index] applied to " +
                     sidl::to_string(type->kind()));
    }
    const auto& elems = (*value)->elements();
    if (step.index >= elems.size()) {
      throw NotFound("path '" + path + "': index out of range");
    }
    *value = &elems[step.index];
    return type->element().get();
  }
  if (type->kind() != TypeKind::Struct) {
    throw NotFound("path '" + path + "': field '" + step.field + "' applied to " +
                   sidl::to_string(type->kind()));
  }
  const sidl::FieldDesc* fd = type->find_field(step.field);
  if (fd == nullptr) {
    throw NotFound("path '" + path + "': no field '" + step.field + "'");
  }
  *value = (*value)->find_field(step.field);
  return fd->type.get();
}

}  // namespace

FormEditor::FormEditor(sidl::SidPtr sid, const std::string& operation)
    : sid_(std::move(sid)) {
  if (!sid_) throw ContractError("FormEditor needs a SID");
  op_ = sid_->find_operation(operation);
  if (op_ == nullptr) {
    throw NotFound("SID '" + sid_->name + "' has no operation '" + operation + "'");
  }
  form_ = generate_operation_form(*sid_, operation);
  for (const auto& p : op_->params) {
    if (p.dir == sidl::ParamDir::Out) continue;
    in_params_.push_back(&p);
    values_.push_back(wire::default_value(*p.type));
  }
}

void FormEditor::apply_at(const std::string& path, LeafFn leaf, const void* ctx,
                          bool peel_optional_at_leaf) {
  auto steps = parse_path(path);
  for (std::size_t i = 0; i < in_params_.size(); ++i) {
    if (in_params_[i]->name == steps[0].field) {
      values_[i] = rebuild(values_[i], *in_params_[i]->type, steps, 1, path,
                           leaf, ctx, peel_optional_at_leaf);
      return;
    }
  }
  throw NotFound("operation '" + op_->name + "' has no in-parameter '" +
                 steps[0].field + "'");
}

void FormEditor::set(const std::string& path, const std::string& text) {
  apply_at(
      path,
      [](const Value&, const TypeDesc& type, const void* ctx) {
        return parse_scalar(*static_cast<const std::string*>(ctx), type);
      },
      &text);
}

void FormEditor::set_ref(const std::string& path, const sidl::ServiceRef& ref) {
  apply_at(
      path,
      [](const Value&, const TypeDesc& type, const void* ctx) {
        if (type.kind() != TypeKind::ServiceRef) {
          throw TypeError("path does not address a ServiceReference widget");
        }
        return Value::service_ref(*static_cast<const sidl::ServiceRef*>(ctx));
      },
      &ref);
}

std::size_t FormEditor::add_element(const std::string& path) {
  std::size_t new_index = 0;
  auto grow = [](const Value& current, const TypeDesc& type,
                 const void* ctx) -> Value {
    if (type.kind() != TypeKind::Sequence) {
      throw TypeError("path does not address a sequence widget");
    }
    std::vector<Value> elems = current.elements();
    elems.push_back(wire::default_value(*type.element()));
    *const_cast<std::size_t*>(static_cast<const std::size_t*>(ctx)) =
        elems.size() - 1;
    return Value::sequence(std::move(elems));
  };
  apply_at(path, grow, &new_index);
  return new_index;
}

void FormEditor::remove_element(const std::string& path, std::size_t index) {
  auto shrink = [](const Value& current, const TypeDesc& type,
                   const void* ctx) -> Value {
    if (type.kind() != TypeKind::Sequence) {
      throw TypeError("path does not address a sequence widget");
    }
    std::size_t idx = *static_cast<const std::size_t*>(ctx);
    std::vector<Value> elems = current.elements();
    if (idx >= elems.size()) {
      throw NotFound("sequence element " + std::to_string(idx) + " out of range");
    }
    elems.erase(elems.begin() + static_cast<std::ptrdiff_t>(idx));
    return Value::sequence(std::move(elems));
  };
  apply_at(path, shrink, &index);
}

void FormEditor::set_present(const std::string& path, bool present) {
  auto toggle = [](const Value& current, const TypeDesc& type,
                   const void* ctx) -> Value {
    if (type.kind() != TypeKind::Optional) {
      throw TypeError("path does not address an optional widget");
    }
    bool want = *static_cast<const bool*>(ctx);
    if (!want) return Value::optional_absent();
    if (current.is(wire::ValueKind::Optional) && current.has_payload()) {
      return current;  // already present; keep edits
    }
    return Value::optional_of(wire::default_value(*type.element()));
  };
  apply_at(path, toggle, &present, /*peel_optional_at_leaf=*/false);
}

std::vector<Value> FormEditor::arguments() const {
  // Final validation pass: every argument must conform to its parameter.
  for (std::size_t i = 0; i < in_params_.size(); ++i) {
    wire::ensure_conforms(values_[i], *in_params_[i]->type);
  }
  return values_;
}

Value FormEditor::get(const std::string& path) const {
  auto steps = parse_path(path);
  for (std::size_t i = 0; i < in_params_.size(); ++i) {
    if (in_params_[i]->name != steps[0].field) continue;
    const Value* value = &values_[i];
    const TypeDesc* type = in_params_[i]->type.get();
    for (std::size_t d = 1; d < steps.size(); ++d) {
      type = peel(type, &value, steps[d], path);
    }
    return *value;
  }
  throw NotFound("operation '" + op_->name + "' has no in-parameter '" +
                 steps[0].field + "'");
}

}  // namespace cosm::uims
