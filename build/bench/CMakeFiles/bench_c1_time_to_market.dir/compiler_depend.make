# Empty compiler generated dependencies file for bench_c1_time_to_market.
# This may be replaced when dependencies are built.
