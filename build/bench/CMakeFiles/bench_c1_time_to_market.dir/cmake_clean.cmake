file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_time_to_market.dir/bench_c1_time_to_market.cpp.o"
  "CMakeFiles/bench_c1_time_to_market.dir/bench_c1_time_to_market.cpp.o.d"
  "bench_c1_time_to_market"
  "bench_c1_time_to_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_time_to_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
