// RPC message format.
//
// One Message is one framed unit on the wire.  Requests carry a target
// service id, an operation name and the encoded argument sequence; responses
// carry the encoded result; faults carry the remote error text.  The
// request id correlates responses with requests.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace cosm::rpc {

enum class MsgType : std::uint8_t {
  Request = 0,
  Response = 1,
  Fault = 2,
};

std::string to_string(MsgType type);

struct Message {
  MsgType type = MsgType::Request;
  std::uint64_t request_id = 0;
  /// Target service instance id (requests only).
  std::string target;
  /// Operation name (requests only).
  std::string operation;
  /// Client session id; the server tracks per-session FSM communication
  /// state under this key (requests only).
  std::string session;
  /// Remaining deadline budget in milliseconds at send time (requests only;
  /// 0 = no deadline).  The server turns it back into an absolute deadline
  /// on arrival, so the budget shrinks across every hop of a call chain.
  std::uint64_t deadline_ms = 0;
  /// Remaining forwarding hops (requests only; negative = unlimited).  Each
  /// federated/forwarded hop decrements it.
  std::int32_t hop_budget = -1;
  /// Trace-context propagation (requests only; 0 = untraced).  The trace id
  /// names the end-to-end operation; parent_span_id is the client-side
  /// attempt span the server's dispatch span hangs under.  A retried
  /// request keeps its trace id but carries a fresh parent span per attempt.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  /// Encoded argument sequence (requests) or encoded result value
  /// (responses); empty for faults.
  Bytes body;
  /// Human-readable error (faults only).
  std::string fault;

  bool operator==(const Message&) const = default;

  Bytes encode() const;
  /// Throws cosm::WireError on malformed frames.
  static Message decode(const Bytes& frame);

  /// Streaming encode: write every header field plus a padded body-length
  /// slot into `writer` and return the slot offset.  The caller then writes
  /// the body bytes directly into the same arena (e.g. a compiled marshal
  /// plan) and closes the frame with encode_end_body() — header and body
  /// land in one buffer with no intermediate Bytes and no re-concatenation.
  /// The `body` member is ignored by this pair.
  std::size_t encode_begin_body(ByteWriter& writer) const;
  /// Patch the body length (everything written since encode_begin_body) and
  /// append the trailing fault field, completing the frame.
  void encode_end_body(ByteWriter& writer, std::size_t slot) const;

  static Message request(std::uint64_t id, std::string target, std::string op,
                         Bytes body);
  static Message response(std::uint64_t id, Bytes body);
  static Message make_fault(std::uint64_t id, std::string text);
};

/// Non-owning decoded view of a message: string fields and the body alias
/// the frame buffer, which must outlive the view.  This is the zero-copy
/// receive path — the server dispatches straight from the reactor's frame
/// without materialising an owned Message.
struct MessageView {
  MsgType type = MsgType::Request;
  std::uint64_t request_id = 0;
  std::string_view target;
  std::string_view operation;
  std::string_view session;
  std::uint64_t deadline_ms = 0;
  std::int32_t hop_budget = -1;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  BytesView body;
  std::string_view fault;

  /// Throws cosm::WireError on malformed frames (same checks as
  /// Message::decode).
  static MessageView decode(BytesView frame);

  /// Owned deep copy.
  Message to_message() const;
};

}  // namespace cosm::rpc
