#include "sidl/type_desc.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "support/generators.h"

namespace cosm::sidl {
namespace {

TEST(TypeDesc, PrimitiveSingletonsShareIdentity) {
  EXPECT_EQ(TypeDesc::int_().get(), TypeDesc::int_().get());
  EXPECT_EQ(TypeDesc::string_().get(), TypeDesc::string_().get());
}

TEST(TypeDesc, KindsReportCorrectly) {
  EXPECT_TRUE(TypeDesc::void_()->is(TypeKind::Void));
  EXPECT_TRUE(TypeDesc::bool_()->is(TypeKind::Bool));
  EXPECT_TRUE(TypeDesc::any()->is(TypeKind::Any));
  EXPECT_TRUE(TypeDesc::sid()->is(TypeKind::Sid));
  EXPECT_TRUE(TypeDesc::service_ref()->is(TypeKind::ServiceRef));
}

TEST(TypeDesc, EnumRequiresLabels) {
  EXPECT_THROW(TypeDesc::enum_("E", {}), ContractError);
}

TEST(TypeDesc, EnumLabelIndex) {
  auto e = TypeDesc::enum_("E", {"A", "B", "C"});
  EXPECT_EQ(e->label_index("A"), 0);
  EXPECT_EQ(e->label_index("C"), 2);
  EXPECT_EQ(e->label_index("Z"), -1);
}

TEST(TypeDesc, StructFieldLookup) {
  auto s = TypeDesc::struct_("S", {{"x", TypeDesc::int_()},
                                   {"y", TypeDesc::string_()}});
  ASSERT_NE(s->find_field("x"), nullptr);
  EXPECT_TRUE(s->find_field("x")->type->is(TypeKind::Int));
  EXPECT_EQ(s->find_field("nope"), nullptr);
}

TEST(TypeDesc, StructRejectsNullFieldType) {
  EXPECT_THROW(TypeDesc::struct_("S", {{"x", nullptr}}), ContractError);
}

TEST(TypeDesc, SequenceAndOptionalRejectNullElement) {
  EXPECT_THROW(TypeDesc::sequence(nullptr), ContractError);
  EXPECT_THROW(TypeDesc::optional(nullptr), ContractError);
}

TEST(TypeDesc, StructuralEquality) {
  auto a = TypeDesc::struct_("S", {{"x", TypeDesc::int_()}});
  auto b = TypeDesc::struct_("S", {{"x", TypeDesc::int_()}});
  auto c = TypeDesc::struct_("S", {{"x", TypeDesc::float_()}});
  auto d = TypeDesc::struct_("T", {{"x", TypeDesc::int_()}});
  EXPECT_TRUE(a->equals(*b));
  EXPECT_FALSE(a->equals(*c));
  EXPECT_FALSE(a->equals(*d));
}

TEST(TypeDesc, SequenceEqualityIsElementwise) {
  EXPECT_TRUE(TypeDesc::sequence(TypeDesc::int_())
                  ->equals(*TypeDesc::sequence(TypeDesc::int_())));
  EXPECT_FALSE(TypeDesc::sequence(TypeDesc::int_())
                   ->equals(*TypeDesc::sequence(TypeDesc::bool_())));
  EXPECT_FALSE(TypeDesc::sequence(TypeDesc::int_())
                   ->equals(*TypeDesc::optional(TypeDesc::int_())));
}

TEST(TypeDesc, DescribeMentionsStructure) {
  auto s = TypeDesc::struct_("Point", {{"x", TypeDesc::float_()}});
  EXPECT_NE(s->describe().find("Point"), std::string::npos);
  EXPECT_NE(s->describe().find("x"), std::string::npos);
  EXPECT_EQ(TypeDesc::sequence(TypeDesc::int_())->describe(), "sequence<long>");
}

// --- conformance (the Fig. 2 width-subtyping rules) ---

TEST(Conformance, IdenticalPrimitivesConform) {
  EXPECT_TRUE(conforms_to(TypeDesc::int_(), TypeDesc::int_()));
  EXPECT_FALSE(conforms_to(TypeDesc::int_(), TypeDesc::float_()));
}

TEST(Conformance, AnyIsTopType) {
  EXPECT_TRUE(conforms_to(TypeDesc::int_(), TypeDesc::any()));
  EXPECT_TRUE(conforms_to(TypeDesc::struct_("S", {}), TypeDesc::any()));
  // But Any does not conform to concrete types.
  EXPECT_FALSE(conforms_to(TypeDesc::any(), TypeDesc::int_()));
}

TEST(Conformance, EnumSubtypeMayAddLabels) {
  auto base = TypeDesc::enum_("E", {"A", "B"});
  auto wider = TypeDesc::enum_("E", {"A", "B", "C"});
  auto narrower = TypeDesc::enum_("E", {"A"});
  EXPECT_TRUE(conforms_to(wider, base));
  EXPECT_FALSE(conforms_to(narrower, base));
}

TEST(Conformance, StructSubtypeMayAddFields) {
  auto base = TypeDesc::struct_("S", {{"x", TypeDesc::int_()}});
  auto wider = TypeDesc::struct_(
      "S", {{"x", TypeDesc::int_()}, {"y", TypeDesc::string_()}});
  auto missing = TypeDesc::struct_("S", {{"y", TypeDesc::string_()}});
  EXPECT_TRUE(conforms_to(wider, base));
  EXPECT_FALSE(conforms_to(missing, base));
}

TEST(Conformance, StructFieldTypesMustConformRecursively) {
  auto base = TypeDesc::struct_(
      "S", {{"e", TypeDesc::enum_("E", {"A"})}});
  auto ok = TypeDesc::struct_(
      "S", {{"e", TypeDesc::enum_("E", {"A", "B"})}});
  auto bad = TypeDesc::struct_(
      "S", {{"e", TypeDesc::enum_("E", {"B"})}});
  EXPECT_TRUE(conforms_to(ok, base));
  EXPECT_FALSE(conforms_to(bad, base));
}

TEST(Conformance, SequenceAndOptionalAreCovariant) {
  auto narrow = TypeDesc::enum_("E", {"A"});
  auto wide = TypeDesc::enum_("E", {"A", "B"});
  EXPECT_TRUE(conforms_to(TypeDesc::sequence(wide), TypeDesc::sequence(narrow)));
  EXPECT_FALSE(conforms_to(TypeDesc::sequence(narrow), TypeDesc::sequence(wide)));
  EXPECT_TRUE(conforms_to(TypeDesc::optional(wide), TypeDesc::optional(narrow)));
}

TEST(Conformance, ReflexiveOnRandomTypes) {
  Rng rng(101);
  for (int i = 0; i < 50; ++i) {
    auto t = cosm::testing::random_type(rng);
    EXPECT_TRUE(conforms_to(*t, *t)) << t->describe();
    EXPECT_TRUE(t->equals(*t));
  }
}

TEST(Conformance, EqualityImpliesMutualConformance) {
  Rng rng(103);
  for (int i = 0; i < 50; ++i) {
    auto t = cosm::testing::random_type(rng);
    auto u = cosm::testing::random_type(rng);
    if (t->equals(*u)) {
      EXPECT_TRUE(conforms_to(*t, *u));
      EXPECT_TRUE(conforms_to(*u, *t));
    }
  }
}

}  // namespace
}  // namespace cosm::sidl
