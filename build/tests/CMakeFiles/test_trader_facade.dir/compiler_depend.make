# Empty compiler generated dependencies file for test_trader_facade.
# This may be replaced when dependencies are built.
