#include "common/bytes.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"

namespace cosm {
namespace {

TEST(Bytes, U8RoundTrip) {
  ByteWriter w;
  w.u8(0);
  w.u8(0x7F);
  w.u8(0xFF);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0);
  EXPECT_EQ(r.u8(), 0x7F);
  EXPECT_EQ(r.u8(), 0xFF);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, U32LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(Bytes, U64RoundTrip) {
  ByteWriter w;
  w.u64(0xDEADBEEFCAFEBABEULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u64(), 0xDEADBEEFCAFEBABEULL);
}

TEST(Bytes, F64RoundTripExactly) {
  for (double v : {0.0, -0.0, 1.5, -3.25, 1e300, -1e-300,
                   std::numeric_limits<double>::infinity()}) {
    ByteWriter w;
    w.f64(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.f64(), v);
  }
}

TEST(Bytes, F64NanRoundTrips) {
  ByteWriter w;
  w.f64(std::numeric_limits<double>::quiet_NaN());
  ByteReader r(w.bytes());
  EXPECT_TRUE(std::isnan(r.f64()));
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, Unsigned) {
  ByteWriter w;
  w.varint(GetParam());
  ByteReader r(w.bytes());
  EXPECT_EQ(r.varint(), GetParam());
  EXPECT_TRUE(r.at_end());
}

TEST_P(VarintRoundTrip, SignedPositiveAndNegative) {
  auto v = static_cast<std::int64_t>(GetParam() & 0x7FFFFFFFFFFFFFFFULL);
  for (std::int64_t s : {v, -v}) {
    ByteWriter w;
    w.svarint(s);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.svarint(), s);
  }
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 129ULL,
                                           16383ULL, 16384ULL, 0xFFFFFFFFULL,
                                           0x7FFFFFFFFFFFFFFFULL,
                                           0xFFFFFFFFFFFFFFFFULL));

TEST(Bytes, SmallVarintIsOneByte) {
  ByteWriter w;
  w.varint(42);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Bytes, SvarintMinInt64RoundTrips) {
  ByteWriter w;
  w.svarint(std::numeric_limits<std::int64_t>::min());
  ByteReader r(w.bytes());
  EXPECT_EQ(r.svarint(), std::numeric_limits<std::int64_t>::min());
}

TEST(Bytes, StringRoundTripIncludingNulBytes) {
  std::string s = "hello";
  s.push_back('\0');
  s += "world";
  ByteWriter w;
  w.str(s);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), s);
}

TEST(Bytes, EmptyStringRoundTrips) {
  ByteWriter w;
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, UnderrunThrowsWireError) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.u8(), WireError);
  EXPECT_THROW(ByteReader(w.bytes()).u64(), WireError);
}

TEST(Bytes, StringLengthBeyondBufferThrows) {
  ByteWriter w;
  w.varint(1000);  // claims 1000 bytes follow
  w.u8('x');
  ByteReader r(w.bytes());
  EXPECT_THROW(r.str(), WireError);
}

TEST(Bytes, MalformedVarintTooLongThrows) {
  Bytes bad(11, 0x80);  // never terminates within 64 bits
  ByteReader r(bad);
  EXPECT_THROW(r.varint(), WireError);
}

TEST(Bytes, RawRoundTrip) {
  ByteWriter w;
  Bytes payload = {1, 2, 3, 4, 5};
  w.raw(payload);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.raw(5), payload);
}

TEST(Bytes, ToHexFormatsBytes) {
  EXPECT_EQ(to_hex({0x00, 0xAB, 0x10}), "00 ab 10");
  EXPECT_EQ(to_hex({}), "");
}

TEST(Bytes, PositionAndRemainingTrackProgress) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 4u);
  r.u8();
  EXPECT_EQ(r.position(), 1u);
  EXPECT_EQ(r.remaining(), 3u);
}

TEST(Bytes, VarintSlotPatchedValueReadsBack) {
  ByteWriter w;
  w.u8(0x5A);
  const std::size_t slot = w.varint_slot();
  EXPECT_EQ(w.size(), 1u + ByteWriter::kVarintSlotWidth);
  w.raw(Bytes{1, 2, 3});
  w.patch_varint(slot, 3);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0x5A);
  EXPECT_EQ(r.varint(), 3u);  // padded LEB128 decodes like a minimal one
  EXPECT_EQ(r.raw(3), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, VarintSlotLargeValuesAndLimits) {
  ByteWriter w;
  const std::size_t slot = w.varint_slot();
  // Largest value that fits 5 LEB128 bytes.
  const std::uint64_t max_fit = (1ull << 35) - 1;
  w.patch_varint(slot, max_fit);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.varint(), max_fit);
  EXPECT_THROW(w.patch_varint(slot, 1ull << 35), ContractError);
  EXPECT_THROW(w.patch_varint(w.size(), 1), ContractError);  // out of range
}

TEST(Bytes, TruncateRollsBackSuffix) {
  ByteWriter w;
  w.str("keep");
  const std::size_t mark = w.size();
  w.str("discard");
  w.truncate(mark);
  EXPECT_EQ(w.size(), mark);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "keep");
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, ClearKeepsAllocationForReuse) {
  ByteWriter w;
  w.raw(Bytes(1024, 0xCC));
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  w.u8(1);
  EXPECT_EQ(w.bytes(), Bytes{1});
}

TEST(Bytes, NonOwningViewsAliasTheBuffer) {
  ByteWriter w;
  w.str("hello");
  w.raw(Bytes{9, 8, 7});
  Bytes buffer = w.take();
  ByteReader r(buffer);
  std::string_view s = r.str_view();
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(static_cast<const void*>(s.data()),
            static_cast<const void*>(buffer.data() + 1));  // aliases, no copy
  BytesView tail = r.view(3);
  EXPECT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0], 9);
  EXPECT_TRUE(r.at_end());
  EXPECT_THROW(r.view(1), WireError);  // past the end
}

TEST(Bytes, RemainingViewDoesNotAdvance) {
  Bytes buffer = {1, 2, 3};
  ByteReader r(buffer);
  r.u8();
  BytesView rest = r.remaining_view();
  EXPECT_EQ(rest.size(), 2u);
  EXPECT_EQ(r.remaining(), 2u);  // unchanged
  EXPECT_EQ(rest[0], 2);
}

}  // namespace
}  // namespace cosm
