#include "sidl/printer.h"

#include <sstream>

namespace cosm::sidl {

namespace {

/// Inside a SID, enum/struct types declared as typedefs are referenced by
/// name; anonymous ones are expanded structurally.
std::string type_ref(const TypeDesc& t) {
  switch (t.kind()) {
    case TypeKind::Enum:
    case TypeKind::Struct:
      if (!t.name().empty()) return t.name();
      return print_type(t);
    case TypeKind::Sequence:
      return "sequence<" + type_ref(*t.element()) + ">";
    case TypeKind::Optional:
      return "optional<" + type_ref(*t.element()) + ">";
    default:
      return to_string(t.kind());
  }
}

void print_typedef(std::ostream& os, const std::string& name, const TypeDesc& t) {
  switch (t.kind()) {
    case TypeKind::Enum: {
      os << "  typedef enum {";
      const auto& labels = t.labels();
      for (std::size_t i = 0; i < labels.size(); ++i) {
        os << (i ? ", " : " ") << labels[i];
      }
      os << " } " << name << ";\n";
      return;
    }
    case TypeKind::Struct: {
      os << "  typedef struct {";
      if (t.fields().empty()) {
        os << " } " << name << ";\n";
        return;
      }
      os << "\n";
      for (const auto& f : t.fields()) {
        os << "    " << type_ref(*f.type) << " " << f.name << ";\n";
      }
      os << "  } " << name << ";\n";
      return;
    }
    default:
      os << "  typedef " << type_ref(t) << " " << name << ";\n";
      return;
  }
}

/// Spelling for a const declaration's type slot; the parser infers the value
/// from the literal, so any identifier-shaped spelling that matches the
/// literal's flavour will round-trip.
std::string const_type_spelling(const Literal& lit) {
  if (lit.is_bool()) return "boolean";
  if (lit.is_int()) return "long";
  if (lit.is_float()) return "double";
  if (lit.is_string()) return "string";
  return "long";  // enum label: declared enum type name is not preserved
}

}  // namespace

std::string print_type(const TypeDesc& t) {
  switch (t.kind()) {
    case TypeKind::Enum: {
      std::string s = "enum";
      if (!t.name().empty()) s += " " + t.name();
      s += " {";
      const auto& labels = t.labels();
      for (std::size_t i = 0; i < labels.size(); ++i) {
        s += (i ? ", " : " ") + labels[i];
      }
      return s + " }";
    }
    case TypeKind::Struct: {
      std::string s = "struct";
      if (!t.name().empty()) s += " " + t.name();
      s += " { ";
      for (const auto& f : t.fields()) {
        s += type_ref(*f.type) + " " + f.name + "; ";
      }
      return s + "}";
    }
    case TypeKind::Sequence:
      return "sequence<" + print_type(*t.element()) + ">";
    case TypeKind::Optional:
      return "optional<" + print_type(*t.element()) + ">";
    default:
      return to_string(t.kind());
  }
}

std::string print_sid(const Sid& sid) {
  std::ostringstream os;
  os << "module " << sid.name << " {\n";

  for (const auto& [name, type] : sid.types) {
    print_typedef(os, name, *type);
  }

  for (const auto& [name, lit] : sid.constants) {
    os << "  const " << const_type_spelling(lit) << " " << name << " = "
       << lit.to_sidl() << ";\n";
  }

  if (!sid.operations.empty()) {
    os << "  interface "
       << (sid.interface_name.empty() ? "COSM_Operations" : sid.interface_name)
       << " {\n";
    for (const auto& op : sid.operations) {
      os << "    " << type_ref(*op.result) << " " << op.name << "(";
      for (std::size_t i = 0; i < op.params.size(); ++i) {
        const auto& p = op.params[i];
        if (i) os << ", ";
        os << "[" << to_string(p.dir) << "] " << type_ref(*p.type) << " "
           << p.name;
      }
      os << ");\n";
    }
    os << "  };\n";
  }

  if (sid.trader_export) {
    const auto& te = *sid.trader_export;
    os << "  module COSM_TraderExport {\n";
    os << "    const string TOD = \"" << te.service_type << "\";\n";
    for (const auto& [name, lit] : te.attributes) {
      os << "    const " << const_type_spelling(lit) << " " << name << " = "
         << lit.to_sidl() << ";\n";
    }
    os << "  };\n";
  }

  if (sid.fsm) {
    const auto& fsm = *sid.fsm;
    os << "  module COSM_FSM {\n";
    os << "    states {";
    for (std::size_t i = 0; i < fsm.states.size(); ++i) {
      os << (i ? ", " : " ") << fsm.states[i];
    }
    os << " };\n";
    os << "    initial " << fsm.initial << ";\n";
    for (const auto& tr : fsm.transitions) {
      os << "    transition " << tr.from << " " << tr.operation << " " << tr.to
         << ";\n";
    }
    os << "  };\n";
  }

  if (!sid.annotations.empty()) {
    os << "  module COSM_Annotations {\n";
    for (const auto& [element, text] : sid.annotations) {
      os << "    annotate " << element << " \"";
      for (char c : text) {
        if (c == '"' || c == '\\') os << '\\';
        os << c;
      }
      os << "\";\n";
    }
    os << "  };\n";
  }

  for (const auto& ext : sid.unknown_extensions) {
    os << "  module " << ext.name << " {" << ext.raw_body << "};\n";
  }

  os << "};\n";
  return os.str();
}

}  // namespace cosm::sidl
