#include "naming/name_server.h"

#include "common/error.h"

namespace cosm::naming {

void NameServer::bind_name(const std::string& path, sidl::ServiceRef ref) {
  if (path.empty()) throw ContractError("name path must not be empty");
  if (!ref.valid()) throw ContractError("cannot bind an invalid reference");
  std::lock_guard lock(mutex_);
  bindings_[path] = std::move(ref);
}

void NameServer::unbind_name(const std::string& path) {
  std::lock_guard lock(mutex_);
  if (bindings_.erase(path) == 0) {
    throw NotFound("name '" + path + "' is not bound");
  }
}

sidl::ServiceRef NameServer::resolve(const std::string& path) const {
  std::lock_guard lock(mutex_);
  auto it = bindings_.find(path);
  if (it == bindings_.end()) {
    throw NotFound("name '" + path + "' is not bound");
  }
  return it->second;
}

bool NameServer::has(const std::string& path) const {
  std::lock_guard lock(mutex_);
  return bindings_.count(path) > 0;
}

std::vector<std::pair<std::string, sidl::ServiceRef>> NameServer::list(
    const std::string& prefix) const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, sidl::ServiceRef>> out;
  for (auto it = bindings_.lower_bound(prefix); it != bindings_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(*it);
  }
  return out;
}

std::size_t NameServer::size() const {
  std::lock_guard lock(mutex_);
  return bindings_.size();
}

}  // namespace cosm::naming
