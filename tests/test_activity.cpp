#include "rpc/activity.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "rpc/activity_facade.h"
#include "rpc/channel.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "sidl/parser.h"

namespace cosm::rpc {
namespace {

using wire::Value;

struct Ledger {
  bool vote = true;
  int committed = 0, aborted = 0;
};

ServiceObjectPtr ledger_service(Ledger& ledger) {
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid("module Ledger { interface I { void Post(); }; };"));
  auto object = std::make_shared<ServiceObject>(sid);
  object->on("Post", [](const std::vector<Value>&) { return Value::null(); });
  install_txn_participant(
      *object, TxnHooks{[&ledger](const std::string&) { return ledger.vote; },
                        [&ledger](const std::string&) { ++ledger.committed; },
                        [&ledger](const std::string&) { ++ledger.aborted; }});
  return object;
}

class ActivityTest : public ::testing::Test {
 protected:
  InProcNetwork net;
  RpcServer server{net, "host"};
  ActivityManager manager{net};
};

TEST_F(ActivityTest, EmptyActivityCommitsTrivially) {
  auto id = manager.begin("no-op");
  EXPECT_EQ(manager.state(id), ActivityState::Active);
  EXPECT_EQ(manager.complete(id), TxnOutcome::Committed);
  EXPECT_EQ(manager.state(id), ActivityState::Committed);
  EXPECT_EQ(manager.label(id), "no-op");
}

TEST_F(ActivityTest, CompleteCommitsAllParticipants) {
  Ledger a, b;
  auto ra = server.add(ledger_service(a));
  auto rb = server.add(ledger_service(b));
  auto id = manager.begin("transfer");
  manager.enlist(id, ra);
  manager.enlist(id, rb);
  manager.enlist(id, ra);  // idempotent
  EXPECT_EQ(manager.participants(id).size(), 2u);

  EXPECT_EQ(manager.complete(id), TxnOutcome::Committed);
  EXPECT_EQ(a.committed, 1);
  EXPECT_EQ(b.committed, 1);
  EXPECT_EQ(manager.committed_total(), 1u);
}

TEST_F(ActivityTest, DissenterAbortsActivity) {
  Ledger a, b;
  b.vote = false;
  auto id = manager.begin();
  manager.enlist(id, server.add(ledger_service(a)));
  manager.enlist(id, server.add(ledger_service(b)));
  EXPECT_EQ(manager.complete(id), TxnOutcome::Aborted);
  EXPECT_EQ(manager.state(id), ActivityState::Aborted);
  EXPECT_EQ(a.aborted, 1);
  EXPECT_EQ(a.committed + b.committed, 0);
  EXPECT_EQ(manager.aborted_total(), 1u);
}

TEST_F(ActivityTest, ExplicitAbort) {
  Ledger a;
  auto id = manager.begin();
  manager.enlist(id, server.add(ledger_service(a)));
  manager.abort(id);
  EXPECT_EQ(manager.state(id), ActivityState::Aborted);
  // The participant never prepared, so its abort hook is not invoked; the
  // decision delivery is a harmless no-op.
  EXPECT_EQ(a.aborted, 0);
  EXPECT_EQ(a.committed, 0);
}

TEST_F(ActivityTest, FinishedActivityRejectsFurtherUse) {
  Ledger a;
  auto ref = server.add(ledger_service(a));
  auto id = manager.begin();
  manager.complete(id);
  EXPECT_THROW(manager.enlist(id, ref), ContractError);
  EXPECT_THROW(manager.complete(id), ContractError);
  EXPECT_THROW(manager.abort(id), ContractError);
}

TEST_F(ActivityTest, UnknownActivityThrows) {
  EXPECT_THROW(manager.state("ghost"), NotFound);
  EXPECT_THROW(manager.complete("ghost"), NotFound);
  EXPECT_THROW(manager.participants("ghost"), NotFound);
}

TEST_F(ActivityTest, InvalidParticipantRejected) {
  auto id = manager.begin();
  EXPECT_THROW(manager.enlist(id, sidl::ServiceRef{}), ContractError);
}

TEST_F(ActivityTest, ActiveListTracksLifecycle) {
  auto id1 = manager.begin();
  auto id2 = manager.begin();
  EXPECT_EQ(manager.active().size(), 2u);
  manager.complete(id1);
  manager.abort(id2);
  EXPECT_TRUE(manager.active().empty());
}

TEST_F(ActivityTest, FacadeDrivesFullLifecycleOverRpc) {
  Ledger a;
  auto participant = server.add(ledger_service(a));
  auto manager_ref = server.add(make_activity_manager_service(manager));
  RpcChannel channel(net, manager_ref);

  std::string id =
      channel.call("Begin", {Value::string("remote-transfer")}).as_string();
  channel.call("Enlist", {Value::string(id), Value::service_ref(participant)});
  EXPECT_EQ(channel.call("State", {Value::string(id)}).as_string(), "active");
  EXPECT_EQ(channel.call("Participants", {Value::string(id)}).elements().size(),
            1u);
  EXPECT_EQ(channel.call("Active", {}).elements().size(), 1u);

  EXPECT_TRUE(channel.call("Complete", {Value::string(id)}).as_bool());
  EXPECT_EQ(channel.call("State", {Value::string(id)}).as_string(), "committed");
  EXPECT_EQ(a.committed, 1);

  // Errors surface as faults.
  EXPECT_THROW(channel.call("Abort", {Value::string(id)}), RemoteFault);
  EXPECT_THROW(channel.call("State", {Value::string("ghost")}), RemoteFault);
}

TEST_F(ActivityTest, FacadeSidlParses) {
  sidl::Sid sid = sidl::parse_sid(activity_manager_sidl());
  EXPECT_EQ(sid.name, "ActivityManagerService");
  EXPECT_NE(sid.find_operation("Complete"), nullptr);
}

TEST_F(ActivityTest, ConcurrentActivitiesAreIndependent) {
  Ledger a;
  auto ref = server.add(ledger_service(a));
  auto id1 = manager.begin();
  auto id2 = manager.begin();
  manager.enlist(id1, ref);
  manager.enlist(id2, ref);
  EXPECT_EQ(manager.complete(id1), TxnOutcome::Committed);
  EXPECT_EQ(manager.complete(id2), TxnOutcome::Committed);
  EXPECT_EQ(a.committed, 2);
}

}  // namespace
}  // namespace cosm::rpc
