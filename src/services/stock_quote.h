// Another innovative service, with a richer FSM than the car rental: a
// stock quote service that requires a login session.  Exercises the §3.1
// protocol restrictions: LOGGED_OUT --Login--> LOGGED_IN --GetQuote-->
// LOGGED_IN --Logout--> LOGGED_OUT; quotes before login are rejected by the
// generic client *locally*.

#pragma once

#include <string>

#include "rpc/service_object.h"

namespace cosm::services {

struct StockQuoteConfig {
  std::string name = "TickerService";
  std::uint64_t seed = 23;
};

std::string stock_quote_sidl(const StockQuoteConfig& config);

rpc::ServiceObjectPtr make_stock_quote_service(const StockQuoteConfig& config);

}  // namespace cosm::services
