# Empty compiler generated dependencies file for cosm_trader.
# This may be replaced when dependencies are built.
