# Empty compiler generated dependencies file for bench_fig1_trading.
# This may be replaced when dependencies are built.
