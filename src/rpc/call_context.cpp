#include "rpc/call_context.h"

#include <algorithm>

namespace cosm::rpc {

namespace {

thread_local CallContext g_current_context;

constexpr std::chrono::milliseconds kNoDeadlineSentinel =
    std::chrono::hours(24);

}  // namespace

std::chrono::milliseconds CallContext::remaining() const noexcept {
  if (!has_deadline()) return kNoDeadlineSentinel;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return std::max(left, std::chrono::milliseconds(0));
}

CallContext CallContext::with_timeout(std::chrono::milliseconds timeout) {
  CallContext ctx;
  if (timeout.count() > 0) ctx.deadline = Clock::now() + timeout;
  return ctx;
}

CallContext CallContext::shrunk(std::chrono::milliseconds cap) const {
  CallContext ctx = *this;
  if (cap.count() > 0) {
    auto capped = Clock::now() + cap;
    if (!ctx.has_deadline() || capped < ctx.deadline) ctx.deadline = capped;
  }
  return ctx;
}

CallContext CallContext::after_hop() const {
  CallContext ctx = *this;
  if (ctx.hop_budget > 0) --ctx.hop_budget;
  return ctx;
}

CallContext current_call_context() noexcept { return g_current_context; }

CallContextScope::CallContextScope(const CallContext& ctx) noexcept
    : previous_(g_current_context) {
  g_current_context = ctx;
}

CallContextScope::~CallContextScope() { g_current_context = previous_; }

}  // namespace cosm::rpc
