file(REMOVE_RECURSE
  "CMakeFiles/test_binder.dir/test_binder.cpp.o"
  "CMakeFiles/test_binder.dir/test_binder.cpp.o.d"
  "test_binder"
  "test_binder.pdb"
  "test_binder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
