// Experiment C4 (§4.2): local FSM interception vs server-side rejection.
//
// A client mixes valid and protocol-violating invocations; the generic
// client with local enforcement rejects violations before any RPC, while
// the enforcement-off client pays a full round trip for the server to say
// no.  The in-proc network simulates a LAN round trip (100 us) so the saved
// wire time is visible.  Expected shape: local interception's advantage
// grows linearly with the invalid-call ratio; at 0% invalid the two paths
// cost the same.

#include <benchmark/benchmark.h>

#include "common/error.h"
#include "core/generic_client.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "services/stock_quote.h"

namespace {

using namespace cosm;
using wire::Value;

struct Fixture {
  explicit Fixture(bool enforce_locally)
      : net(rpc::InProcOptions{std::chrono::microseconds(100)}),
        server(net, "host"),
        client(net, core::GenericClientOptions{enforce_locally,
                                               std::chrono::milliseconds(5000)}),
        ref(server.add(services::make_stock_quote_service({}))) {}

  rpc::InProcNetwork net;
  rpc::RpcServer server;
  core::GenericClient client;
  sidl::ServiceRef ref;
};

/// Issue 100 calls, `invalid_pct` of them out of protocol (GetQuote while
/// logged out), the rest valid Login/GetQuote/Logout traffic.
void run_mix(core::Binding& binding, int invalid_pct, std::uint64_t& rejected_local,
             std::uint64_t& rejected_remote) {
  for (int i = 0; i < 100; ++i) {
    bool make_invalid = (i % 100) < invalid_pct;
    try {
      if (make_invalid) {
        // Ensure we are logged out so the call violates the protocol.
        if (binding.state() == "LOGGED_IN") binding.invoke("Logout", {});
        binding.invoke("GetQuote", {Value::string("IBM")});
      } else {
        if (binding.state() == "LOGGED_OUT") {
          binding.invoke("Login", {Value::string("bench")});
        }
        binding.invoke("GetQuote", {Value::string("IBM")});
      }
    } catch (const ProtocolError&) {
      ++rejected_local;
    } catch (const RemoteFault&) {
      ++rejected_remote;
    }
  }
}

void BM_LocalInterception(benchmark::State& state) {
  Fixture fx(/*enforce_locally=*/true);
  core::Binding binding = fx.client.bind(fx.ref);
  std::uint64_t local = 0, remote = 0;
  for (auto _ : state) {
    run_mix(binding, static_cast<int>(state.range(0)), local, remote);
  }
  state.counters["invalid_pct"] = static_cast<double>(state.range(0));
  state.counters["rejected_locally"] = static_cast<double>(local);
  state.counters["rejected_remotely"] = static_cast<double>(remote);
  state.counters["rpc_frames"] = static_cast<double>(fx.net.stats().frames);
}
BENCHMARK(BM_LocalInterception)->DenseRange(0, 100, 25)->Unit(benchmark::kMillisecond);

void BM_ServerSideRejection(benchmark::State& state) {
  Fixture fx(/*enforce_locally=*/false);
  core::Binding binding = fx.client.bind(fx.ref);
  std::uint64_t local = 0, remote = 0;
  for (auto _ : state) {
    run_mix(binding, static_cast<int>(state.range(0)), local, remote);
  }
  state.counters["invalid_pct"] = static_cast<double>(state.range(0));
  state.counters["rejected_locally"] = static_cast<double>(local);
  state.counters["rejected_remotely"] = static_cast<double>(remote);
  state.counters["rpc_frames"] = static_cast<double>(fx.net.stats().frames);
}
BENCHMARK(BM_ServerSideRejection)->DenseRange(0, 100, 25)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
