#include "common/bytes.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"

namespace cosm {
namespace {

TEST(Bytes, U8RoundTrip) {
  ByteWriter w;
  w.u8(0);
  w.u8(0x7F);
  w.u8(0xFF);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0);
  EXPECT_EQ(r.u8(), 0x7F);
  EXPECT_EQ(r.u8(), 0xFF);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, U32LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(Bytes, U64RoundTrip) {
  ByteWriter w;
  w.u64(0xDEADBEEFCAFEBABEULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u64(), 0xDEADBEEFCAFEBABEULL);
}

TEST(Bytes, F64RoundTripExactly) {
  for (double v : {0.0, -0.0, 1.5, -3.25, 1e300, -1e-300,
                   std::numeric_limits<double>::infinity()}) {
    ByteWriter w;
    w.f64(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.f64(), v);
  }
}

TEST(Bytes, F64NanRoundTrips) {
  ByteWriter w;
  w.f64(std::numeric_limits<double>::quiet_NaN());
  ByteReader r(w.bytes());
  EXPECT_TRUE(std::isnan(r.f64()));
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, Unsigned) {
  ByteWriter w;
  w.varint(GetParam());
  ByteReader r(w.bytes());
  EXPECT_EQ(r.varint(), GetParam());
  EXPECT_TRUE(r.at_end());
}

TEST_P(VarintRoundTrip, SignedPositiveAndNegative) {
  auto v = static_cast<std::int64_t>(GetParam() & 0x7FFFFFFFFFFFFFFFULL);
  for (std::int64_t s : {v, -v}) {
    ByteWriter w;
    w.svarint(s);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.svarint(), s);
  }
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 129ULL,
                                           16383ULL, 16384ULL, 0xFFFFFFFFULL,
                                           0x7FFFFFFFFFFFFFFFULL,
                                           0xFFFFFFFFFFFFFFFFULL));

TEST(Bytes, SmallVarintIsOneByte) {
  ByteWriter w;
  w.varint(42);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Bytes, SvarintMinInt64RoundTrips) {
  ByteWriter w;
  w.svarint(std::numeric_limits<std::int64_t>::min());
  ByteReader r(w.bytes());
  EXPECT_EQ(r.svarint(), std::numeric_limits<std::int64_t>::min());
}

TEST(Bytes, StringRoundTripIncludingNulBytes) {
  std::string s = "hello";
  s.push_back('\0');
  s += "world";
  ByteWriter w;
  w.str(s);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), s);
}

TEST(Bytes, EmptyStringRoundTrips) {
  ByteWriter w;
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, UnderrunThrowsWireError) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.u8(), WireError);
  EXPECT_THROW(ByteReader(w.bytes()).u64(), WireError);
}

TEST(Bytes, StringLengthBeyondBufferThrows) {
  ByteWriter w;
  w.varint(1000);  // claims 1000 bytes follow
  w.u8('x');
  ByteReader r(w.bytes());
  EXPECT_THROW(r.str(), WireError);
}

TEST(Bytes, MalformedVarintTooLongThrows) {
  Bytes bad(11, 0x80);  // never terminates within 64 bits
  ByteReader r(bad);
  EXPECT_THROW(r.varint(), WireError);
}

TEST(Bytes, RawRoundTrip) {
  ByteWriter w;
  Bytes payload = {1, 2, 3, 4, 5};
  w.raw(payload);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.raw(5), payload);
}

TEST(Bytes, ToHexFormatsBytes) {
  EXPECT_EQ(to_hex({0x00, 0xAB, 0x10}), "00 ab 10");
  EXPECT_EQ(to_hex({}), "");
}

TEST(Bytes, PositionAndRemainingTrackProgress) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 4u);
  r.u8();
  EXPECT_EQ(r.position(), 1u);
  EXPECT_EQ(r.remaining(), 3u);
}

}  // namespace
}  // namespace cosm
