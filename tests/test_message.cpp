#include "rpc/message.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosm::rpc {
namespace {

TEST(Message, RequestRoundTrip) {
  Message m = Message::request(42, "svc-1", "SelectCar", {1, 2, 3});
  m.session = "sess-9";
  Message out = Message::decode(m.encode());
  EXPECT_EQ(out, m);
  EXPECT_EQ(out.type, MsgType::Request);
  EXPECT_EQ(out.session, "sess-9");
}

TEST(Message, ResponseRoundTrip) {
  Message m = Message::response(7, {0xAB});
  Message out = Message::decode(m.encode());
  EXPECT_EQ(out.type, MsgType::Response);
  EXPECT_EQ(out.request_id, 7u);
  EXPECT_EQ(out.body, Bytes{0xAB});
  EXPECT_TRUE(out.target.empty());
}

TEST(Message, FaultCarriesText) {
  Message m = Message::make_fault(9, "no such operation");
  Message out = Message::decode(m.encode());
  EXPECT_EQ(out.type, MsgType::Fault);
  EXPECT_EQ(out.fault, "no such operation");
  EXPECT_TRUE(out.body.empty());
}

TEST(Message, EmptyBodyRoundTrips) {
  Message m = Message::request(1, "t", "op", {});
  EXPECT_EQ(Message::decode(m.encode()).body, Bytes{});
}

TEST(Message, InvalidTypeByteRejected) {
  Message m = Message::request(1, "t", "op", {});
  Bytes b = m.encode();
  b[0] = 99;
  EXPECT_THROW(Message::decode(b), WireError);
}

TEST(Message, TrailingBytesRejected) {
  Bytes b = Message::request(1, "t", "op", {}).encode();
  b.push_back(0);
  EXPECT_THROW(Message::decode(b), WireError);
}

TEST(Message, TruncatedFrameRejected) {
  Bytes b = Message::request(1, "target", "operation", {1, 2, 3}).encode();
  b.resize(b.size() / 2);
  EXPECT_THROW(Message::decode(b), WireError);
}

TEST(Message, ToStringNames) {
  EXPECT_EQ(to_string(MsgType::Request), "request");
  EXPECT_EQ(to_string(MsgType::Response), "response");
  EXPECT_EQ(to_string(MsgType::Fault), "fault");
}

TEST(Message, StreamingEncodeMatchesEncode) {
  // encode_begin_body/encode_end_body assemble the same frame encode()
  // produces (encode() is implemented on top of them) — header, a padded
  // body-length slot, the body written in place, trailing fault.
  Message m = Message::request(123, "svc-2", "Rent", {});
  m.session = "sess-4";
  m.deadline_ms = 900;
  m.hop_budget = 3;
  m.trace_id = 7;
  m.parent_span_id = 8;
  const Bytes body = {0xDE, 0xAD, 0xBE, 0xEF};

  ByteWriter w;
  const std::size_t slot = m.encode_begin_body(w);
  w.raw(body);
  m.encode_end_body(w, slot);

  Message whole = m;
  whole.body = body;
  EXPECT_EQ(w.bytes(), whole.encode());
  Message out = Message::decode(w.bytes());
  EXPECT_EQ(out, whole);
}

TEST(Message, ViewDecodeAliasesTheFrame) {
  Message m = Message::request(9, "svc-7", "GetQuote", {0x11, 0x22});
  m.session = "sess-1";
  m.fault = "";
  Bytes frame = m.encode();
  MessageView view = MessageView::decode(BytesView(frame.data(), frame.size()));
  EXPECT_EQ(view.type, MsgType::Request);
  EXPECT_EQ(view.request_id, 9u);
  EXPECT_EQ(view.target, "svc-7");
  EXPECT_EQ(view.operation, "GetQuote");
  EXPECT_EQ(view.session, "sess-1");
  ASSERT_EQ(view.body.size(), 2u);
  EXPECT_EQ(view.body[0], 0x11);
  // Non-owning: the body view points into the frame, not a copy.
  EXPECT_GE(static_cast<const void*>(view.body.data()),
            static_cast<const void*>(frame.data()));
  EXPECT_LT(static_cast<const void*>(view.body.data()),
            static_cast<const void*>(frame.data() + frame.size()));
  // Deep copy materialises an equal Message.
  EXPECT_EQ(view.to_message(), m);
}

TEST(Message, ViewRejectsSameMalformedFramesAsDecode) {
  Bytes good = Message::request(1, "t", "op", {5}).encode();
  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(MessageView::decode(BytesView(trailing.data(), trailing.size())),
               WireError);
  Bytes bad_type = good;
  bad_type[0] = 42;
  EXPECT_THROW(MessageView::decode(BytesView(bad_type.data(), bad_type.size())),
               WireError);
}

}  // namespace
}  // namespace cosm::rpc
