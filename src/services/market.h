// Synthetic open-market workload generator (replacing the paper's
// "CompuServe"-style market anecdote with something measurable).
//
// Generates deterministic populations of car-rental competitors with varied
// prices, currencies, fleets and small interface differences, plus the
// §2.2 service-establishment timeline model used by experiment C1: the
// trader path pays type standardisation + registration + client development
// before the first successful call; the mediation path pays SID authoring +
// browser registration only.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "services/car_rental.h"

namespace cosm::services {

struct MarketConfig {
  std::size_t providers = 16;
  std::uint64_t seed = 1;
  /// Fraction of providers that carry a COSM_TraderExport module.
  double tradable_fraction = 1.0;
  /// Maximum number of optional extra fields a provider adds to its
  /// SelectCar_t (interface drift across competitors).
  int max_extra_fields = 3;
};

/// Deterministic population of provider configurations.
std::vector<CarRentalConfig> generate_market(const MarketConfig& config);

// --- §2.2 establishment timeline model (simulated calendar hours) ---

struct EstablishmentModel {
  /// "Service type standardisation (by global agreement)": months.
  std::uint64_t type_standardisation_hours = 24 * 90;
  /// "Service type registration at a trader's type manager": per trader.
  std::uint64_t type_registration_hours = 24;
  /// Exporting the actual offer once the type exists.
  std::uint64_t offer_export_hours = 2;
  /// "Development of client applications": per operation to stub.
  std::uint64_t client_dev_hours_per_op = 8;
  /// Writing the SID (both paths author an interface description).
  std::uint64_t sid_authoring_hours = 4;
  /// Registering SID + reference at a browser.
  std::uint64_t browser_registration_hours = 1;
};

struct EstablishmentPhase {
  std::string name;
  std::uint64_t hours;
};

struct EstablishmentOutcome {
  std::vector<EstablishmentPhase> phases;
  std::uint64_t total_hours() const;
};

/// Hours until the first client can successfully call an innovative service
/// via the ODP trader path (§2.2's four-phase overhead).  `federated_traders`
/// multiplies the registration phase; `type_already_standardised` models the
/// mature-market case where only registration remains.
EstablishmentOutcome trader_path_establishment(const EstablishmentModel& model,
                                               std::size_t operations,
                                               std::size_t federated_traders,
                                               bool type_already_standardised);

/// Hours until the first generic client can call the service via mediation.
EstablishmentOutcome mediation_path_establishment(const EstablishmentModel& model);

}  // namespace cosm::services
