#include "core/generic_client.h"

#include "common/error.h"
#include "obs/metrics.h"
#include "sidl/validate.h"

namespace cosm::core {

Binding::Binding(std::unique_ptr<rpc::RpcChannel> channel, sidl::SidPtr sid,
                 GenericClientOptions options)
    : channel_(std::move(channel)), sid_(std::move(sid)), options_(options) {
  if (sid_->fsm) state_ = sid_->fsm->initial;
}

bool Binding::fsm_restricted(const std::string& operation) const {
  if (!sid_->fsm) return false;
  for (const auto& tr : sid_->fsm->transitions) {
    if (tr.operation == operation) return true;
  }
  return false;
}

std::vector<std::string> Binding::allowed_operations() const {
  std::vector<std::string> ops;
  for (const auto& op : sid_->operations) {
    if (allowed(op.name)) ops.push_back(op.name);
  }
  return ops;
}

bool Binding::allowed(const std::string& operation) const {
  if (!options_.enforce_fsm || !sid_->fsm || !fsm_restricted(operation)) {
    return sid_->find_operation(operation) != nullptr;
  }
  return sid_->fsm->find(state_, operation) != nullptr;
}

wire::Value Binding::invoke(const std::string& operation,
                            std::vector<wire::Value> args) {
  const sidl::OperationDesc* op = sid_->find_operation(operation);
  if (op == nullptr) {
    throw NotFound("service '" + sid_->name + "' has no operation '" +
                   operation + "'");
  }

  // Local protocol enforcement (§4.2): invocations that do not conform to
  // the current communication state are "intercepted by the generic client
  // and, therefore, already rejected locally".
  const sidl::FsmTransition* transition = nullptr;
  if (options_.enforce_fsm && sid_->fsm && fsm_restricted(operation)) {
    transition = sid_->fsm->find(state_, operation);
    if (transition == nullptr) {
      ++rejections_;
      throw ProtocolError("operation '" + operation +
                              "' is not allowed in communication state '" +
                              state_ + "' (rejected locally)",
                          state_, operation);
    }
  }

  wire::Value result = channel_->call(*op, std::move(args));
  ++invocations_;
  {
    auto& reg = obs::metrics();
    if (reg.enabled()) {
      static obs::Counter& invocations = reg.counter("client.invocations");
      invocations.add();
    }
  }
  if (transition != nullptr) {
    state_ = transition->to;
  } else if (!options_.enforce_fsm && sid_->fsm && fsm_restricted(operation)) {
    // Even without enforcement the client mirrors the server's state so a
    // later re-enable starts from the right state.
    if (const auto* tr = sid_->fsm->find(state_, operation)) state_ = tr->to;
  }
  return result;
}

uims::ServiceForm Binding::form() const { return uims::generate_form(*sid_); }

uims::FormEditor Binding::edit(const std::string& operation) const {
  return uims::FormEditor(sid_, operation);
}

wire::Value Binding::invoke_form(const uims::FormEditor& editor) {
  return invoke(editor.operation().name, editor.arguments());
}

GenericClient::GenericClient(rpc::Network& network, GenericClientOptions options)
    : network_(network), options_(options) {}

Binding GenericClient::bind(const sidl::ServiceRef& ref) {
  if (!ref.valid()) throw ContractError("cannot bind an invalid reference");
  auto& reg = obs::metrics();
  std::chrono::steady_clock::time_point started{};
  if (reg.enabled()) started = std::chrono::steady_clock::now();
  auto channel = std::make_unique<rpc::RpcChannel>(
      network_, ref,
      rpc::ChannelOptions{options_.timeout, options_.retry, options_.idempotent});
  sidl::SidPtr sid = channel->fetch_sid();  // SID transfer, Fig. 3
  sidl::ensure_valid(*sid);
  bindings_.fetch_add(1, std::memory_order_relaxed);
  if (reg.enabled()) {
    static obs::Counter& binds = reg.counter("client.binds");
    binds.add();
    if (started != std::chrono::steady_clock::time_point{}) {
      static obs::Histogram& latency = reg.histogram("client.bind_latency_us");
      latency.record_us(obs::elapsed_us(started));
    }
  }
  return Binding(std::move(channel), std::move(sid), options_);
}

}  // namespace cosm::core
