// WalStorage: the durable StorageEngine (WAL + snapshot + recovery).
//
// Record payloads reuse the trader's wire forms (facade.h offer_to_value /
// wire::encode_value), so an offer journals byte-for-byte as it travels in
// a DeltaBatch.  Every record is tagged with the appending thread's RPC
// (session, request id) — the mutation and its replay high-water mark are
// one atomic commit, closing the executed-but-unmarked crash window.
//
// Snapshot / truncate protocol (all off the writer path):
//   1. rotate the log — new appends go to segment S; the snapshot will
//      mark "replay >= S",
//   2. drain in-flight log→apply windows (phase-tagged ApplyScope
//      counters), so every record in segments < S is applied,
//   3. fork the market state through the SnapshotSource (the offer-store
//      fork is an epoch-pinned read — writers never block),
//   4. write snapshot to a .tmp file, fsync, rename to
//      snapshot-<S>.snap (the rename is the commit),
//   5. delete segments < S and older snapshots.
// Records in segment S that are also in the fork replay idempotently
// (upsert/remove/max semantics), so the fork racing post-rotation appends
// is harmless.
//
// Recovery: load the newest valid snapshot, replay the segment tail on
// top (WriteAheadLog drops the torn suffix), then hand the trader the
// collapsed state — offers, types, the offer-id counter, the logical
// clock, subscriptions (with sequence slack so the recovered publisher
// never re-issues an acked sequence number), and per-session replay
// high-water marks.

#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "trader/storage/storage_engine.h"
#include "trader/storage/wal.h"

namespace cosm::trader::storage {

class WalStorage final : public StorageEngine {
 public:
  explicit WalStorage(StorageOptions options);
  ~WalStorage() override;

  bool durable() const override { return true; }

  bool recover(RecoveredState* out) override;
  std::unordered_map<std::string, std::uint64_t> recovered_replay_marks()
      const override;

  void log_upserts(const std::vector<OfferPtr>& offers,
                   std::uint64_t minted_through = 0) override;
  void log_removes(const std::vector<std::string>& ids) override;
  void log_clock(std::uint64_t clock_hours) override;
  void log_type_added(const ServiceType& type) override;
  void log_type_removed(const std::string& name) override;
  void log_subscription(const SubscriptionRecord& record) override;
  void log_unsubscription(std::uint64_t id) override;

  void set_snapshot_source(SnapshotSource* source) override;
  bool snapshot_now() override;
  void begin_apply() override;
  void end_apply() override;
  void flush() override;

  // --- instrumentation ---
  std::uint64_t records_logged() const noexcept {
    return records_.load(std::memory_order_relaxed);
  }
  std::uint64_t group_commits() const;
  std::uint64_t snapshots_taken() const noexcept {
    return snapshots_.load(std::memory_order_relaxed);
  }
  /// Records dropped from the torn tail during recovery (diagnostics).
  std::uint64_t bytes_journalled() const;

 private:
  struct ReplayAccumulator;

  void append_record(const Bytes& payload);
  bool take_snapshot();
  void snapshot_worker();
  void drain_applies(int phase);

  StorageOptions options_;
  std::unique_ptr<WriteAheadLog> wal_;

  /// Armed after recover(); log hooks before that are a contract error.
  std::atomic<bool> armed_{false};
  std::unique_ptr<RecoveredState> recovered_;  ///< until recover() hands off

  /// Live replay marks: recovered marks plus every tagged record since.
  /// Guarded by marks_mutex_ (touched on every tagged append).
  mutable std::mutex marks_mutex_;
  std::unordered_map<std::string, std::uint64_t> marks_;
  std::unordered_map<std::string, std::uint64_t> recovered_marks_;

  /// Phase-tagged in-flight log→apply windows (see file comment).
  std::atomic<std::uint64_t> inflight_[2] = {{0}, {0}};
  std::atomic<int> apply_phase_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  /// Snapshot worker state.
  std::mutex snap_mutex_;
  std::condition_variable snap_cv_;
  SnapshotSource* source_ = nullptr;
  bool snap_requested_ = false;
  bool snap_stop_ = false;
  bool snap_busy_ = false;
  std::thread snap_thread_;
  std::uint64_t last_snapshot_bytes_ = 0;

  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> snapshots_{0};
};

}  // namespace cosm::trader::storage
