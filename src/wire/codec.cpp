#include "wire/codec.h"

#include "common/error.h"
#include "sidl/parser.h"
#include "sidl/printer.h"

namespace cosm::wire {

namespace {

// Wire tags; part of the stable wire format — append only.
enum Tag : std::uint8_t {
  kNull = 0,
  kFalse = 1,
  kTrue = 2,
  kInt = 3,
  kFloat = 4,
  kString = 5,
  kEnum = 6,
  kStruct = 7,
  kSequence = 8,
  kOptAbsent = 9,
  kOptPresent = 10,
  kServiceRef = 11,
  kSid = 12,
};

}  // namespace

void encode_value(ByteWriter& w, const Value& v) {
  switch (v.kind()) {
    case ValueKind::Null:
      w.u8(kNull);
      return;
    case ValueKind::Bool:
      w.u8(v.as_bool() ? kTrue : kFalse);
      return;
    case ValueKind::Int:
      w.u8(kInt);
      w.svarint(v.as_int());
      return;
    case ValueKind::Float:
      w.u8(kFloat);
      w.f64(v.as_real());
      return;
    case ValueKind::String:
      w.u8(kString);
      w.str(v.as_string());
      return;
    case ValueKind::Enum:
      w.u8(kEnum);
      w.str(v.type_name());
      w.str(v.enum_label());
      return;
    case ValueKind::Struct: {
      w.u8(kStruct);
      w.str(v.type_name());
      w.varint(v.field_count());
      for (std::size_t i = 0; i < v.field_count(); ++i) {
        w.str(v.field_name(i));
        encode_value(w, v.field(i));
      }
      return;
    }
    case ValueKind::Sequence: {
      w.u8(kSequence);
      w.varint(v.elements().size());
      for (const Value& e : v.elements()) encode_value(w, e);
      return;
    }
    case ValueKind::Optional:
      if (v.has_payload()) {
        w.u8(kOptPresent);
        encode_value(w, v.payload());
      } else {
        w.u8(kOptAbsent);
      }
      return;
    case ValueKind::ServiceRef:
      w.u8(kServiceRef);
      w.str(v.as_ref().to_string());
      return;
    case ValueKind::Sid:
      w.u8(kSid);
      w.str(sidl::print_sid(*v.as_sid()));
      return;
  }
  throw WireError("encode_value: unknown value kind");
}

Bytes encode_value(const Value& value) {
  ByteWriter w;
  encode_value(w, value);
  return w.take();
}

Value decode_value(ByteReader& r) {
  std::uint8_t tag = r.u8();
  switch (tag) {
    case kNull:
      return Value::null();
    case kFalse:
      return Value::boolean(false);
    case kTrue:
      return Value::boolean(true);
    case kInt:
      return Value::integer(r.svarint());
    case kFloat:
      return Value::real(r.f64());
    case kString:
      return Value::string(r.str());
    case kEnum: {
      std::string type_name = r.str();
      std::string label = r.str();
      if (label.empty()) throw WireError("enum value with empty label");
      return Value::enumerated(std::move(type_name), std::move(label));
    }
    case kStruct: {
      std::string type_name = r.str();
      std::uint64_t n = r.varint();
      std::vector<std::pair<std::string, Value>> fields;
      fields.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string name = r.str();
        fields.emplace_back(std::move(name), decode_value(r));
      }
      return Value::structure(std::move(type_name), std::move(fields));
    }
    case kSequence: {
      std::uint64_t n = r.varint();
      std::vector<Value> elems;
      elems.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) elems.push_back(decode_value(r));
      return Value::sequence(std::move(elems));
    }
    case kOptAbsent:
      return Value::optional_absent();
    case kOptPresent:
      return Value::optional_of(decode_value(r));
    case kServiceRef:
      return Value::service_ref(sidl::ServiceRef::from_string(r.str()));
    case kSid: {
      std::string text = r.str();
      try {
        auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(text));
        return Value::sid(std::move(sid));
      } catch (const ParseError& e) {
        throw WireError(std::string("SID payload failed to parse: ") + e.what());
      }
    }
    default:
      throw WireError("decode_value: unknown tag " + std::to_string(tag));
  }
}

Value decode_value(const Bytes& bytes) {
  ByteReader r(bytes);
  Value v = decode_value(r);
  if (!r.at_end()) {
    throw WireError("decode_value: " + std::to_string(r.remaining()) +
                    " trailing bytes");
  }
  return v;
}

}  // namespace cosm::wire
