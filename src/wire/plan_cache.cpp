#include "wire/plan_cache.h"

#include "common/error.h"

namespace cosm::wire {

PlanCache& PlanCache::instance() {
  static PlanCache cache;
  return cache;
}

std::shared_ptr<const OperationPlan> PlanCache::operation_plan(
    const sidl::SidPtr& sid, const sidl::OperationDesc& op) {
  if (!sid) throw ContractError("PlanCache::operation_plan needs a SID");
  const Key key{sid.get(), op.name};
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      // The guard must lock AND still be the same object: a dead weak_ptr
      // is a re-registered SID; a live one at the same address but from a
      // different control block is ABA reuse.  Either way the entry is
      // stale.
      if (auto guard = it->second.guard.lock(); guard.get() == sid.get()) {
        ++hits_;
        it->second.last_used = ++tick_;
        return it->second.plan;
      }
      entries_.erase(it);
    }
    ++misses_;
  }
  // Compile outside the lock: plan compilation walks the whole TypeDesc
  // tree and must not serialise concurrent callers on unrelated SIDs.
  auto plan = std::make_shared<const OperationPlan>(op);
  {
    std::lock_guard lock(mu_);
    auto [it, inserted] = entries_.try_emplace(key);
    if (!inserted) {
      // A concurrent first call won the race; prefer its entry if still
      // valid, else replace.
      if (auto guard = it->second.guard.lock(); guard.get() == sid.get()) {
        it->second.last_used = ++tick_;
        return it->second.plan;
      }
    }
    it->second = Entry{sid, plan, ++tick_};
    evict_locked();
    return plan;
  }
}

void PlanCache::invalidate(const sidl::Sid* sid) {
  if (!sid) return;
  std::lock_guard lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.sid == sid) {
      it = entries_.erase(it);
      ++invalidations_;
    } else {
      ++it;
    }
  }
}

void PlanCache::clear() {
  std::lock_guard lock(mu_);
  entries_.clear();
  hits_ = misses_ = invalidations_ = evictions_ = 0;
  tick_ = 0;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard lock(mu_);
  return Stats{hits_, misses_, invalidations_, evictions_, entries_.size()};
}

void PlanCache::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  evict_locked();
}

void PlanCache::evict_locked() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    entries_.erase(victim);
    ++evictions_;
  }
}

}  // namespace cosm::wire
