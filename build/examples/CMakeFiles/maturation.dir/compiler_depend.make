# Empty compiler generated dependencies file for maturation.
# This may be replaced when dependencies are built.
