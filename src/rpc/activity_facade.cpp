#include "rpc/activity_facade.h"

#include "sidl/parser.h"

namespace cosm::rpc {

using wire::Value;

const std::string& activity_manager_sidl() {
  static const std::string text = R"(
module ActivityManagerService {
  interface COSM_Operations {
    string Begin([in] string label);
    void Enlist([in] string activity, [in] ServiceReference participant);
    boolean Complete([in] string activity);
    void Abort([in] string activity);
    string State([in] string activity);
    sequence<ServiceReference> Participants([in] string activity);
    sequence<string> Active();
  };
  module COSM_Annotations {
    annotate ActivityManagerService "Distributed activities completed atomically via 2PC";
    annotate Begin "Start an activity; returns its id";
    annotate Enlist "Add a transactional participant to an activity";
    annotate Complete "Atomically complete; true when committed";
    annotate Abort "Abort the activity and notify participants";
  };
};
)";
  return text;
}

ServiceObjectPtr make_activity_manager_service(ActivityManager& manager) {
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(activity_manager_sidl()));
  auto object = std::make_shared<ServiceObject>(std::move(sid));

  object->on("Begin", [&manager](const std::vector<Value>& args) {
    return Value::string(manager.begin(args.at(0).as_string()));
  });
  object->on("Enlist", [&manager](const std::vector<Value>& args) {
    manager.enlist(args.at(0).as_string(), args.at(1).as_ref());
    return Value::null();
  });
  object->on("Complete", [&manager](const std::vector<Value>& args) {
    return Value::boolean(manager.complete(args.at(0).as_string()) ==
                          TxnOutcome::Committed);
  });
  object->on("Abort", [&manager](const std::vector<Value>& args) {
    manager.abort(args.at(0).as_string());
    return Value::null();
  });
  object->on("State", [&manager](const std::vector<Value>& args) {
    return Value::string(to_string(manager.state(args.at(0).as_string())));
  });
  object->on("Participants", [&manager](const std::vector<Value>& args) {
    std::vector<Value> out;
    for (const auto& p : manager.participants(args.at(0).as_string())) {
      out.push_back(Value::service_ref(p));
    }
    return Value::sequence(std::move(out));
  });
  object->on("Active", [&manager](const std::vector<Value>&) {
    std::vector<Value> out;
    for (const auto& id : manager.active()) out.push_back(Value::string(id));
    return Value::sequence(std::move(out));
  });
  return object;
}

}  // namespace cosm::rpc
