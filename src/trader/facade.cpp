#include "trader/facade.h"

#include "common/error.h"
#include "rpc/call_context.h"
#include "rpc/channel.h"
#include "sidl/parser.h"

namespace cosm::trader {

using wire::Value;

const std::string& trader_sidl() {
  static const std::string text = R"(
module TraderService {
  typedef struct { string name; any value; } Attribute_t;
  typedef struct {
    string id;
    string type;
    ServiceReference ref;
    sequence<Attribute_t> attributes;
  } Offer_t;
  typedef struct { string name; string type_spec; boolean required; } AttributeDef_t;
  typedef struct { string name; string operation; } DynamicAttr_t;
  typedef struct {
    ServiceReference ref;
    sequence<Attribute_t> attributes;
    sequence<DynamicAttr_t> dynamics;
  } OfferSpec_t;
  typedef struct { string id; sequence<Attribute_t> attributes; } OfferMod_t;
  interface COSM_Operations {
    string Export([in] string type, [in] ServiceReference ref,
                  [in] sequence<Attribute_t> attributes);
    string ExportDynamic([in] string type, [in] ServiceReference ref,
                         [in] sequence<Attribute_t> attributes,
                         [in] sequence<DynamicAttr_t> dynamics);
    sequence<string> ExportBatch([in] string type,
                                 [in] sequence<OfferSpec_t> specs);
    void Withdraw([in] string id);
    long WithdrawBatch([in] sequence<string> ids);
    void Modify([in] string id, [in] sequence<Attribute_t> attributes);
    long ModifyBatch([in] sequence<OfferMod_t> changes);
    sequence<Offer_t> Import([in] string type, [in] string constraint,
                             [in] string preference, [in] long max_matches,
                             [in] long hop_limit);
    sequence<Offer_t> ListOffers([in] string type);
    void AddType([in] string name, [in] string supertype,
                 [in] sequence<AttributeDef_t> schema);
    void RemoveType([in] string name);
    sequence<string> TypeNames();
    void ResetStats();
  };
  module COSM_Annotations {
    annotate TraderService "ODP trader: typed service offers, constraint matching, federation";
    annotate Export "Register a service offer under a registered service type";
    annotate ExportBatch "Bulk offer registration: all specs validated before any is applied";
    annotate Import "Retrieve ranked offers matching a constraint";
    annotate AddType "Management interface: register a new service type";
  };
};
)";
  return text;
}

Value offer_to_value(const Offer& offer) {
  return Value::structure("Offer_t",
                          {{"id", Value::string(offer.id)},
                           {"type", Value::string(offer.service_type)},
                           {"ref", Value::service_ref(offer.ref)},
                           {"attributes", attrs_to_value(offer.attributes)}});
}

Offer offer_from_value(const Value& value) {
  Offer offer;
  offer.id = value.at("id").as_string();
  offer.service_type = value.at("type").as_string();
  offer.ref = value.at("ref").as_ref();
  offer.attributes = attrs_from_value(value.at("attributes"));
  return offer;
}

namespace {

Value offers_to_value(const std::vector<Offer>& offers) {
  std::vector<Value> out;
  out.reserve(offers.size());
  for (const auto& offer : offers) out.push_back(offer_to_value(offer));
  return Value::sequence(std::move(out));
}

}  // namespace

rpc::ServiceObjectPtr make_trader_service(Trader& trader) {
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(trader_sidl()));
  auto object = std::make_shared<rpc::ServiceObject>(std::move(sid));

  object->on("Export", [&trader](const std::vector<Value>& args) {
    return Value::string(trader.export_offer(args.at(0).as_string(),
                                             args.at(1).as_ref(),
                                             attrs_from_value(args.at(2))));
  });
  object->on("ExportDynamic", [&trader](const std::vector<Value>& args) {
    std::map<std::string, std::string> dynamics;
    for (const Value& d : args.at(3).elements()) {
      dynamics[d.at("name").as_string()] = d.at("operation").as_string();
    }
    return Value::string(trader.export_offer(args.at(0).as_string(),
                                             args.at(1).as_ref(),
                                             attrs_from_value(args.at(2)),
                                             std::move(dynamics)));
  });
  object->on("ExportBatch", [&trader](const std::vector<Value>& args) {
    std::vector<BatchOfferSpec> specs;
    specs.reserve(args.at(1).elements().size());
    for (const Value& s : args.at(1).elements()) {
      BatchOfferSpec spec;
      spec.ref = s.at("ref").as_ref();
      spec.attributes = attrs_from_value(s.at("attributes"));
      for (const Value& d : s.at("dynamics").elements()) {
        spec.dynamic_attrs[d.at("name").as_string()] =
            d.at("operation").as_string();
      }
      specs.push_back(std::move(spec));
    }
    std::vector<Value> ids;
    for (auto& id :
         trader.export_batch(args.at(0).as_string(), std::move(specs))) {
      ids.push_back(Value::string(std::move(id)));
    }
    return Value::sequence(std::move(ids));
  });
  object->on("Withdraw", [&trader](const std::vector<Value>& args) {
    trader.withdraw(args.at(0).as_string());
    return Value::null();
  });
  object->on("WithdrawBatch", [&trader](const std::vector<Value>& args) {
    std::vector<std::string> ids;
    ids.reserve(args.at(0).elements().size());
    for (const Value& id : args.at(0).elements()) {
      ids.push_back(id.as_string());
    }
    return Value::integer(
        static_cast<std::int64_t>(trader.withdraw_batch(ids)));
  });
  object->on("Modify", [&trader](const std::vector<Value>& args) {
    trader.modify(args.at(0).as_string(), attrs_from_value(args.at(1)));
    return Value::null();
  });
  object->on("ModifyBatch", [&trader](const std::vector<Value>& args) {
    std::vector<std::pair<std::string, AttrMap>> changes;
    changes.reserve(args.at(0).elements().size());
    for (const Value& c : args.at(0).elements()) {
      changes.emplace_back(c.at("id").as_string(),
                           attrs_from_value(c.at("attributes")));
    }
    return Value::integer(
        static_cast<std::int64_t>(trader.modify_batch(std::move(changes))));
  });
  object->on("Import", [&trader](const std::vector<Value>& args) {
    ImportRequest request;
    request.service_type = args.at(0).as_string();
    request.constraint = args.at(1).as_string();
    request.preference = args.at(2).as_string();
    std::int64_t max_matches = args.at(3).as_int();
    std::int64_t hop_limit = args.at(4).as_int();
    if (max_matches < 0 || hop_limit < 0) {
      throw ContractError("Import: max_matches and hop_limit must be >= 0");
    }
    request.max_matches = static_cast<std::size_t>(max_matches);
    request.hop_limit = static_cast<int>(hop_limit);
    // The server installed the caller's remaining budget as this thread's
    // CallContext; pin it (and the trace correlation) onto the request so
    // the federation sweep (which fans out on other threads) still honours
    // the deadline and stays in the caller's trace.
    rpc::CallContext ctx = rpc::current_call_context();
    if (ctx.has_deadline()) request.deadline = ctx.deadline;
    request.trace_id = ctx.trace_id;
    request.parent_span_id = ctx.span_id;
    return offers_to_value(trader.import(request));
  });
  object->on("ListOffers", [&trader](const std::vector<Value>& args) {
    return offers_to_value(trader.list_offers(args.at(0).as_string()));
  });
  object->on("AddType", [&trader](const std::vector<Value>& args) {
    ServiceType type;
    type.name = args.at(0).as_string();
    type.supertype = args.at(1).as_string();
    for (const Value& def : args.at(2).elements()) {
      AttributeDef attr;
      attr.name = def.at("name").as_string();
      attr.type = sidl::parse_type(def.at("type_spec").as_string());
      attr.required = def.at("required").as_bool();
      type.attributes.push_back(std::move(attr));
    }
    trader.types().add(std::move(type));
    return Value::null();
  });
  object->on("RemoveType", [&trader](const std::vector<Value>& args) {
    trader.types().remove(args.at(0).as_string());
    return Value::null();
  });
  object->on("TypeNames", [&trader](const std::vector<Value>&) {
    std::vector<Value> out;
    for (auto& name : trader.types().names()) out.push_back(Value::string(name));
    return Value::sequence(std::move(out));
  });
  object->on("ResetStats", [&trader](const std::vector<Value>&) {
    trader.reset_stats();
    return Value::null();
  });
  return object;
}

RemoteTraderGateway::RemoteTraderGateway(rpc::Network& network,
                                         sidl::ServiceRef trader_ref,
                                         rpc::RetryPolicy retry)
    : network_(network), ref_(std::move(trader_ref)), retry_(retry) {
  if (!ref_.valid()) {
    throw ContractError("RemoteTraderGateway needs a valid trader reference");
  }
}

std::vector<Offer> RemoteTraderGateway::import(const ImportRequest& request) {
  // Translate the request's absolute deadline back into this hop's call
  // budget.  The sweep runs on worker threads with no inherited thread-local
  // context, so the ImportRequest field is the only carrier.
  rpc::ChannelOptions options;
  options.retry = retry_;
  options.idempotent = true;  // Import mutates nothing
  if (request.has_deadline()) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        request.deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      throw RpcError("deadline exceeded before federated import via " +
                     describe());
    }
    options.timeout = remaining;
  }
  // Re-install the request's correlation as this worker thread's context so
  // the channel's client span parents under the forwarding trader's import
  // span (the deadline is already in options.timeout).
  rpc::CallContext hop_ctx;
  hop_ctx.trace_id = request.trace_id;
  hop_ctx.span_id = request.parent_span_id;
  rpc::CallContextScope hop_scope(hop_ctx);
  rpc::RpcChannel channel(network_, ref_, options);
  Value result = channel.call(
      "Import", {Value::string(request.service_type),
                 Value::string(request.constraint),
                 Value::string(request.preference),
                 Value::integer(static_cast<std::int64_t>(request.max_matches)),
                 Value::integer(request.hop_limit)});
  std::vector<Offer> offers;
  offers.reserve(result.elements().size());
  for (const Value& v : result.elements()) offers.push_back(offer_from_value(v));
  return offers;
}

std::string RemoteTraderGateway::describe() const {
  return "remote:" + ref_.to_string();
}

}  // namespace cosm::trader
