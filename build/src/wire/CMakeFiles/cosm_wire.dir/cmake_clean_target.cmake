file(REMOVE_RECURSE
  "libcosm_wire.a"
)
