#include "trader/preference.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "common/error.h"

namespace cosm::trader {

std::string to_string(PreferenceKind kind) {
  switch (kind) {
    case PreferenceKind::First: return "first";
    case PreferenceKind::Random: return "random";
    case PreferenceKind::Min: return "min";
    case PreferenceKind::Max: return "max";
  }
  return "?";
}

Preference Preference::parse(const std::string& text) {
  std::istringstream in(text);
  std::string word, attr, extra;
  in >> word >> attr >> extra;
  if (!extra.empty()) {
    throw ParseError("preference: trailing input '" + extra + "'", 1, 1);
  }
  Preference p;
  if (word.empty() || word == "first") {
    p.kind_ = PreferenceKind::First;
  } else if (word == "random") {
    p.kind_ = PreferenceKind::Random;
  } else if (word == "min" || word == "max") {
    p.kind_ = word == "min" ? PreferenceKind::Min : PreferenceKind::Max;
    if (attr.empty()) {
      throw ParseError("preference: '" + word + "' needs an attribute name", 1, 1);
    }
    p.attr_ = attr;
    attr.clear();
  } else {
    throw ParseError("preference: unknown policy '" + word + "'", 1, 1);
  }
  if (!attr.empty()) {
    throw ParseError("preference: unexpected '" + attr + "' after '" + word + "'",
                     1, 1);
  }
  return p;
}

namespace {

std::optional<double> numeric_attr(const AttrMap& attrs, const std::string& name) {
  auto it = attrs.find(name);
  if (it == attrs.end()) return std::nullopt;
  switch (it->second.kind()) {
    case wire::ValueKind::Int:
      return static_cast<double>(it->second.as_int());
    case wire::ValueKind::Float:
      return it->second.as_real();
    default:
      return std::nullopt;
  }
}

}  // namespace

std::vector<std::size_t> Preference::rank(const std::vector<const AttrMap*>& offers,
                                          Rng& rng) const {
  std::vector<std::size_t> order(offers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  switch (kind_) {
    case PreferenceKind::First:
      return order;
    case PreferenceKind::Random: {
      // Fisher-Yates with the trader's deterministic generator.
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.below(i)]);
      }
      return order;
    }
    case PreferenceKind::Min:
    case PreferenceKind::Max: {
      const bool want_min = kind_ == PreferenceKind::Min;
      std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        auto vx = numeric_attr(*offers[x], attr_);
        auto vy = numeric_attr(*offers[y], attr_);
        if (vx.has_value() != vy.has_value()) return vx.has_value();
        if (!vx.has_value()) return false;
        return want_min ? *vx < *vy : *vx > *vy;
      });
      return order;
    }
  }
  return order;
}

}  // namespace cosm::trader
