// Sharded, indexed, epoch-concurrent service-offer store — the engine under
// every local, federated, and mediated lookup (§2.1's matching loop).
//
// Layout: offers live in per-service-type buckets.  Each bucket is an
// immutable indexed *base* (export-ordered slots, an equality hash index
// and an ordered numeric index over static attributes, an id->slot map)
// plus a small unindexed *delta* of recent writes; when the delta outgrows
// max(min_delta, base/delta_fraction) it is merged into a fresh base, so
// writes stay amortised-cheap and reads scan at most a bounded tail
// linearly.  Withdrawn base offers are tombstoned by id until the next
// merge, making withdraw/modify O(1).
//
// Sharding: buckets are distributed over `Tuning::shard_count` shards by
// service-type hash, so concurrent publishers of different types never
// contend — each shard has its own writer mutex, bucket map, and retired-
// state limbo.  A *hot* type (live offers >= hot_split_threshold) stops
// homing on one shard: its new offers hash-split by offer id across all
// shards, so bulk publishers of one hot type scale across writers too and
// delta merges stay proportional to the sub-shard, not the type.  Readers
// probe every shard for each requested type (buckets of a split type merge
// on StoredOffer::seq like any cross-bucket result).
//
// Concurrency: writers serialise per shard, clone the shard's (small,
// structurally shared) bucket-map spine, and publish it via an atomic
// pointer; the previous spine is *retired* onto the shard's limbo list
// tagged with a store-wide epoch, not freed.  Readers pin a reader slot
// with the current epoch and then walk raw published pointers with no lock
// and no reference-count traffic; a retired spine is reclaimed once every
// pinned reader epoch has advanced past its retire tag.  There is no
// whole-store copy-on-write anywhere: a write copies one shard map and one
// bucket, never O(store).  (Readers that cannot claim one of the fixed
// reader slots fall back to copying the shard's published shared_ptr under
// a tiny mutex — always correct, never blocked by writers.)
//
// The id -> (type, shard) map is itself split across kIdShards mutex-
// guarded slices so id-keyed writers (withdraw/modify) of unrelated offers
// do not contend either.  Lock order, where nested: id-slice mutex before
// shard writer mutex before shard publish mutex.
//
// Matching: the planner takes the constraint's pre-extracted IndexHints
// (top-level AND conjuncts), keeps those the bucket can serve exactly —
// the subject must be an attribute every static offer of the bucket
// carries, and a bare-identifier key must not collide with a schema
// attribute name (identifier resolution is per offer) — seeds the
// candidate set from the most selective index lookup, intersects the rest,
// and leaves the residual constraint evaluation to the caller on the
// narrowed set.  Offers with dynamic attributes cannot be pre-indexed on
// values fetched at import time, so they always remain candidates.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sidl/service_ref.h"
#include "trader/attributes.h"
#include "trader/constraint.h"
#include "trader/service_type.h"

namespace cosm::trader {

struct Offer {
  std::string id;
  std::string service_type;
  sidl::ServiceRef ref;
  AttrMap attributes;
  /// ODP dynamic properties: attribute name -> operation to invoke on the
  /// exporter at import time to obtain the current value (e.g. live
  /// availability).  Matching merges fetched values into `attributes`.
  std::map<std::string, std::string> dynamic_attrs;
  /// Lease expiry on the trader's logical clock, in hours (0 = no lease).
  std::uint64_t lease_expires_at = 0;

  bool operator==(const Offer&) const = default;
};

/// Published offers are immutable and shared between snapshots; a write
/// replaces the pointer, never the pointee.
using OfferPtr = std::shared_ptr<const Offer>;

/// A stored offer plus its export-order sequence number (total order
/// across all buckets and shards — candidates merge on it).
struct StoredOffer {
  std::uint64_t seq = 0;
  OfferPtr offer;
};

/// What one matching pass touched (feeds the trader's instrumentation).
struct MatchStats {
  /// Live offers in all conforming buckets (what a type-filtered linear
  /// scan would have evaluated).
  std::size_t type_candidates = 0;
  /// Candidates actually emitted after index narrowing.
  std::size_t scanned = 0;
  /// At least one bucket was served from a secondary index.
  bool index_used = false;
};

namespace detail {
struct ScoreIr;
}

/// Query description for the scored top-k path (`score:` preferences).
/// The compiled programs are optional accelerators: a null `filter` falls
/// back to Constraint::eval, a null `score_prog` to detail::eval_score —
/// results are identical either way.
struct TopKQuery {
  std::vector<std::string> types;
  /// Hard constraint: index hints for the planner plus the tree-walk
  /// fallback.  Null = every offer matches.
  const Constraint* constraint = nullptr;
  /// Compiled hard-constraint filter (may be null).
  cexpr::ProgramPtr filter;
  /// Scoring expression IR; drives the bound/affine pruning analysis and
  /// the tree-walk fallback.  Required.
  const detail::ScoreIr* score = nullptr;
  /// Compiled scoring program (may be null).
  cexpr::ProgramPtr score_prog;
  /// Keep the best k static matches (0 = keep every match, fully ranked).
  std::size_t k = 0;
};

/// What one top-k pass touched.
struct TopKStats {
  /// Live offers in all conforming buckets.
  std::size_t type_candidates = 0;
  /// Candidates the hard constraint was evaluated on.
  std::size_t scanned = 0;
  /// Score evaluations.
  std::size_t scored = 0;
  /// Candidates skipped without scoring because a score bound proved they
  /// cannot displace the current k-th entry.
  std::size_t heap_prunes = 0;
  bool index_used = false;
};

/// A statically matched offer with its score and rank key
/// (detail::score_rank_key: NaN collapses to -inf so unscorable offers
/// sort last, deterministically).
struct ScoredOffer {
  double score = 0.0;
  double key = 0.0;
  StoredOffer stored;
};

struct TopKResult {
  /// Static matches in final order — (key desc, offer id asc) — capped at
  /// k when k > 0.
  std::vector<ScoredOffer> ranked;
  /// Offers carrying dynamic attributes, unfiltered and unscored (their
  /// values arrive at import time): the caller fetches, filters, scores
  /// and merges them against `ranked`.
  std::vector<StoredOffer> dynamic;
  TopKStats stats;
};

namespace store_detail {
/// Half-open [lo, hi) span of a sorted (value, slot) ord-index column
/// matching `bound value`.  NaN bounds select nothing — a comparison
/// against NaN is false for every offer, and handing NaN to
/// lower_bound/upper_bound would break the comparator's strict weak
/// ordering (mirrors the key_of NaN rule).  Exposed for differential
/// tests against the naive scan.
std::pair<std::size_t, std::size_t> ord_range(
    const std::vector<std::pair<double, std::uint32_t>>& ord,
    int bound /* IndexHint::Bound */, double value);
}  // namespace store_detail

class OfferStore {
 public:
  struct Tuning {
    /// Master switch: off = every lookup scans its buckets linearly
    /// (the pre-index path, kept for benchmarking and as a safety valve).
    bool enable_indexes = true;
    /// Delta merge threshold: max(min_delta, base_size / delta_fraction).
    std::size_t min_delta = 48;
    std::size_t delta_fraction = 32;
    /// Writer shards (clamped to [1, 64]).  Applied at construction, or by
    /// set_tuning while the store is empty; ignored otherwise.
    std::size_t shard_count = 8;
    /// Live offers of one type before its new offers hash-split across all
    /// shards instead of homing on one (0 = never split).
    std::size_t hot_split_threshold = 65536;
  };

  OfferStore() : OfferStore(Tuning{}) {}
  explicit OfferStore(Tuning tuning);
  ~OfferStore();

  OfferStore(const OfferStore&) = delete;
  OfferStore& operator=(const OfferStore&) = delete;

  void set_indexes_enabled(bool enabled) noexcept {
    indexes_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool indexes_enabled() const noexcept {
    return indexes_enabled_.load(std::memory_order_relaxed);
  }

  /// Apply tuning.  Merge thresholds, the index switch and the hot-split
  /// threshold take effect immediately; `shard_count` re-shards only while
  /// the store is empty and no concurrent operations run (it is ignored,
  /// keeping the current topology, once offers exist).
  void set_tuning(const Tuning& tuning);

  std::size_t shard_count() const;

  // ---- writers (serialised per shard) ----

  /// Publish an offer.  `schema` is the offer's full type schema; the
  /// bucket keeps the intersection of required attributes seen across
  /// exports, which is what index eligibility relies on.
  void insert(OfferPtr offer, const std::vector<AttributeDef>& schema);

  /// Publish a batch of offers of ONE service type, amortising shard
  /// locking, publication, and index merges: each touched shard is locked
  /// once and its state published once for the whole batch.
  void insert_batch(std::vector<OfferPtr> offers,
                    const std::vector<AttributeDef>& schema);

  /// The stored offer, or null when unknown.  O(1).
  OfferPtr find(const std::string& id) const;

  /// Remove by id; false when unknown.  O(1) amortised.
  bool erase(const std::string& id);

  /// Remove a batch of ids (unknown ids are skipped); returns how many
  /// were removed.  Shard locking and publication amortise per shard.
  std::size_t withdraw_batch(const std::vector<std::string>& ids);

  /// Swap the offer stored under `id` for `next` (same id, same type),
  /// keeping its export-order position; false when unknown.
  bool replace(const std::string& id, OfferPtr next);

  /// replace() over a batch (unknown ids are skipped); returns how many
  /// were applied.
  std::size_t modify_batch(std::vector<std::pair<std::string, OfferPtr>> changes);

  /// Remove every offer satisfying `pred` (lease sweeps); returns count.
  /// When `victims` is non-null it receives the (id, service type) of every
  /// removed offer — the replication layer turns lease sweeps into
  /// withdraw deltas.
  std::size_t erase_if(
      const std::function<bool(const Offer&)>& pred,
      std::vector<std::pair<std::string, std::string>>* victims = nullptr);

  std::size_t size() const;

  /// Service types with at least one live offer, across all shards
  /// (deduplicated; unspecified order).  Feeds anti-entropy digests.
  std::vector<std::string> type_names() const;

  // ---- readers (epoch-pinned; never blocked by writers) ----

  /// Candidates of the given concrete types, narrowed by the constraint's
  /// indexable conjuncts.  The caller still evaluates the constraint on
  /// every returned candidate (the narrowed set is a superset of the
  /// static matches, and dynamic offers need their fetch first).  Order is
  /// unspecified; merge on StoredOffer::seq.
  std::vector<StoredOffer> collect(const std::vector<std::string>& types,
                                   const Constraint& constraint,
                                   MatchStats* stats = nullptr) const;

  /// All live offers of the given types (no narrowing).
  std::vector<StoredOffer> collect_all(
      const std::vector<std::string>& types) const;

  /// Scored top-k selection below the index layer (`score:` preferences):
  /// the hard-constraint bytecode filters, the scoring bytecode ranks, and
  /// a bounded max-heap keeps the best k across all shards and buckets.
  /// Candidates provably unable to beat the current k-th key are pruned
  /// via monotone score bounds from the ordered secondary indexes — a
  /// whole-bucket interval bound, and an ordered-index-directed walk with
  /// early stop when the score is affine in one indexed attribute.
  TopKResult collect_top_k(const TopKQuery& query) const;

  // ---- instrumentation ----

  /// Bucket lookups served from a secondary index.
  std::uint64_t index_lookups() const noexcept {
    return index_lookups_.load(std::memory_order_relaxed);
  }
  /// Delta-into-base merges (index rebuilds), summed over shards.
  std::uint64_t base_rebuilds() const noexcept {
    return base_rebuilds_.load(std::memory_order_relaxed);
  }
  /// Zero the instrumentation counters (stored offers stay).
  void reset_stats() noexcept;

  struct ShardStats {
    std::uint64_t rebuilds = 0;   ///< delta merges on this shard
    std::size_t limbo = 0;        ///< retired states awaiting reclamation
    std::size_t types = 0;        ///< buckets currently on this shard
    std::size_t offers = 0;       ///< live offers across those buckets
  };
  std::vector<ShardStats> shard_stats() const;

  /// Store-wide publication epoch (one tick per shard publication).
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }
  /// How far the oldest pinned reader trails the current epoch (0 when no
  /// reader is pinned) — retired state cannot be reclaimed past this.
  std::uint64_t epoch_lag() const;

  /// Reclamation normally piggy-backs on publication, so a store that goes
  /// quiescent while readers were pinned keeps whatever those pins parked.
  /// This sweeps every shard's limbo against the current pin floor without
  /// publishing anything.  Returns the states still parked afterwards.
  std::size_t reclaim_retired();

 private:
  friend struct OfferStoreTestPeer;

  /// Normalised attribute value used as an equality-index key; mirrors the
  /// constraint language's comparison semantics (numbers collapse across
  /// int/float, enums compare by label).
  struct IndexKey {
    enum class Tag : std::uint8_t { Number, Text, Boolean };
    Tag tag = Tag::Number;
    double number = 0.0;
    std::string text;
    bool boolean = false;

    bool operator==(const IndexKey&) const = default;
  };
  struct IndexKeyHash {
    std::size_t operator()(const IndexKey& k) const;
  };

  /// Immutable indexed core of a bucket; rebuilt by delta merges, shared
  /// between published states in between.
  struct IndexedBase {
    std::vector<StoredOffer> slots;  // seq-ascending (export order)
    /// Slots of offers carrying dynamic attributes (never index-narrowed).
    std::vector<std::uint32_t> dynamic_slots;
    std::unordered_map<std::string, std::uint32_t> slot_of_id;
    /// attr -> value key -> slots (ascending), static offers only.
    std::unordered_map<
        std::string,
        std::unordered_map<IndexKey, std::vector<std::uint32_t>, IndexKeyHash>>
        eq;
    /// attr -> (numeric value, slot) sorted by value, static offers only.
    std::unordered_map<std::string,
                       std::vector<std::pair<double, std::uint32_t>>>
        ord;
  };
  using IndexedBasePtr = std::shared_ptr<const IndexedBase>;

  /// One service type's offers on one shard: shared immutable base + small
  /// mutable-by-clone delta.  Buckets themselves are immutable once
  /// published.
  struct Bucket {
    IndexedBasePtr base;
    std::vector<StoredOffer> delta;        // recent writes, scanned linearly
    std::unordered_set<std::string> dead;  // base ids withdrawn since merge
    std::size_t live = 0;
    /// Attributes required by every schema this bucket has seen (present
    /// in every static offer — the planner's eligibility precondition).
    std::unordered_set<std::string> required_attrs;
    /// Every attribute name any schema declared (bare-ident collision set).
    std::unordered_set<std::string> declared_attrs;
  };
  using BucketPtr = std::shared_ptr<const Bucket>;

  /// One shard's published spine: its bucket map.  Immutable once
  /// published; replaced whole by writers.
  struct ShardState {
    std::unordered_map<std::string, BucketPtr> buckets;  // by service type
  };
  using ShardStatePtr = std::shared_ptr<const ShardState>;

  /// A retired published object awaiting epoch reclamation.
  struct Retired {
    std::uint64_t epoch = 0;          // store epoch when it was unlinked
    std::shared_ptr<const void> state;  // owner keeping raw pointers valid
  };

  struct alignas(64) Shard {
    /// Serialises writers of this shard (never held during reads).
    mutable std::mutex writer_mutex;
    /// Guards `published` for the shared_ptr copy/swap only (fallback
    /// readers and publication).
    mutable std::mutex pub_mutex;
    ShardStatePtr published;
    /// What epoch-pinned readers dereference; always == published.get().
    std::atomic<const ShardState*> raw{nullptr};
    /// Retired states, retire-epoch ascending (guarded by writer_mutex).
    std::vector<Retired> limbo;
    std::atomic<std::size_t> limbo_size{0};
    std::atomic<std::uint64_t> rebuilds{0};
  };

  struct ShardTable {
    std::vector<std::unique_ptr<Shard>> shards;
  };
  using ShardTablePtr = std::shared_ptr<ShardTable>;

  /// id -> (service type, shard index), split over kIdShards mutex-guarded
  /// slices keyed by id hash.
  struct IdEntry {
    std::string type;
    std::uint32_t shard = 0;
  };
  struct alignas(64) IdShard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, IdEntry> map;
  };
  static constexpr std::size_t kIdShards = 64;

  static constexpr std::size_t kReaderSlots = 64;
  static constexpr std::uint64_t kIdleEpoch = 0;  // real epochs start at 1
  struct alignas(64) ReaderSlot {
    std::atomic<std::uint64_t> epoch{kIdleEpoch};
  };

  /// Pins the store's shard table and states for one operation.  Claims a
  /// reader slot with the current epoch (retired states younger than the
  /// pin stay unreclaimed); falls back to shared_ptr copies under the tiny
  /// publish mutexes when every slot is taken.  Writers hold one across
  /// their whole operation too — it is their table reference.
  class ReadGuard {
   public:
    explicit ReadGuard(const OfferStore& store);
    ~ReadGuard();
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

    ShardTable& table() const noexcept { return *table_; }
    std::size_t shards() const noexcept { return table_->shards.size(); }
    /// The shard's current published state (pinned or kept alive).
    const ShardState* state(std::size_t shard_index) const;

   private:
    const OfferStore& store_;
    ReaderSlot* slot_ = nullptr;
    ShardTable* table_ = nullptr;
    ShardTablePtr table_keepalive_;  // fallback mode only
    mutable std::vector<ShardStatePtr> state_keepalive_;
  };

  static IndexKey key_of(const wire::Value& value, bool* indexable);
  IndexedBasePtr rebuild_base(const Bucket& bucket) const;
  /// Merge the delta when it outgrew its threshold; returns true if merged.
  bool maybe_merge(Bucket& bucket, Shard& shard);
  /// Swap in `next` as the shard's published state, retire the old one
  /// onto the shard's limbo, and reclaim what no pinned reader can reach.
  /// Caller holds the shard's writer mutex.
  void publish_shard(Shard& shard, std::shared_ptr<ShardState> next);
  void reclaim(Shard& shard);
  std::uint64_t min_pinned_epoch() const;

  /// Clone of the shard's current state for mutation (caller holds the
  /// shard's writer mutex, so `published` is stable).
  std::shared_ptr<ShardState> clone_state(const Shard& shard) const;

  IdShard& id_shard(const std::string& id) const {
    return id_shards_[std::hash<std::string>{}(id) % kIdShards];
  }
  std::size_t home_shard_of(const std::string& type, std::size_t shards) const {
    return std::hash<std::string>{}(type) % shards;
  }
  /// Placement for a new offer: home shard, or id-hash split when hot.
  std::size_t placement_shard(const std::string& type, const std::string& id,
                              std::size_t shards);
  std::atomic<std::int64_t>& live_counter(const std::string& type);

  /// One usable index lookup the planner decided to serve: an equality
  /// posting list, or a half-open span of an ord column.
  struct Selection {
    const std::vector<std::uint32_t>* posting = nullptr;  // Equality
    const std::vector<std::pair<double, std::uint32_t>>* ord = nullptr;
    std::size_t lo = 0, hi = 0;  // Range half-open span into *ord
    std::size_t size() const { return posting ? posting->size() : hi - lo; }
  };

  /// The planner: keep the constraint's hints this bucket can serve
  /// exactly (capped at 16 so the vote counters cannot wrap).  Empty means
  /// "no usable index — scan".  Selections reference the bucket's base;
  /// they must not outlive it.
  std::vector<Selection> plan_selections(const Bucket& bucket,
                                         const Constraint* constraint) const;

  template <typename Fn>
  static void for_each_slot(const Selection& sel, Fn&& fn) {
    if (sel.posting) {
      for (std::uint32_t slot : *sel.posting) fn(slot);
    } else {
      for (std::size_t i = sel.lo; i < sel.hi; ++i) fn((*sel.ord)[i].second);
    }
  }

  /// Enumerate the intersection of the selections (static slots only):
  /// seed from the most selective, verify the rest with a vote array — one
  /// zeroed byte per base slot, far below the per-candidate evaluation
  /// saved.  Every selection is an exact filter, so a slot survives only
  /// with a vote from each.  `selections` must be non-empty.
  template <typename Fn>
  static void for_each_selected(std::size_t slot_count,
                                const std::vector<Selection>& selections,
                                Fn&& fn) {
    const Selection* primary = &selections.front();
    for (const Selection& sel : selections) {
      if (sel.size() < primary->size()) primary = &sel;
    }
    if (primary->size() == 0) return;
    if (selections.size() == 1) {
      for_each_slot(*primary, fn);
      return;
    }
    std::vector<std::uint8_t> votes(slot_count, 0);
    for (const Selection& sel : selections) {
      for_each_slot(sel, [&](std::uint32_t slot) { ++votes[slot]; });
    }
    const auto wanted = static_cast<std::uint8_t>(selections.size());
    for_each_slot(*primary, [&](std::uint32_t slot) {
      if (votes[slot] >= wanted) fn(slot);
    });
  }

  void collect_bucket(const Bucket& bucket, const Constraint* constraint,
                      std::vector<StoredOffer>& out, MatchStats* stats) const;

  /// Mutable state one collect_top_k pass threads through its buckets.
  struct TopKCtx;
  void top_k_bucket(const Bucket& bucket, const TopKQuery& query,
                    TopKCtx& ctx) const;

  std::atomic<bool> indexes_enabled_{true};
  std::atomic<std::size_t> min_delta_{48};
  std::atomic<std::size_t> delta_fraction_{32};
  std::atomic<std::size_t> hot_split_threshold_{65536};

  /// Guards resharding and the table publish pointer swap.
  mutable std::mutex table_pub_mutex_;
  ShardTablePtr table_published_;
  std::atomic<ShardTable*> table_raw_{nullptr};
  std::vector<Retired> table_limbo_;  // guarded by table_pub_mutex_

  mutable std::array<IdShard, kIdShards> id_shards_;
  mutable std::array<ReaderSlot, kReaderSlots> reader_slots_;
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> next_seq_{1};

  /// Per-type live-offer counters driving hot-split placement.  The map
  /// only ever grows (one counter per type name); the shared_mutex guards
  /// registration, counters themselves are atomics.
  mutable std::shared_mutex type_live_mutex_;
  std::unordered_map<std::string, std::unique_ptr<std::atomic<std::int64_t>>>
      type_live_;

  mutable std::atomic<std::uint64_t> index_lookups_{0};
  std::atomic<std::uint64_t> base_rebuilds_{0};
};

}  // namespace cosm::trader
