#include "trader/replication.h"

#include "wire/value.h"

namespace cosm::trader {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv(std::uint64_t& h, const std::string& s) {
  // Length-prefix each field so ("ab","c") never collides with ("a","bc").
  std::size_t n = s.size();
  for (std::size_t i = 0; i < sizeof(n); ++i) {
    h = (h ^ ((n >> (8 * i)) & 0xff)) * kFnvPrime;
  }
  for (unsigned char c : s) h = (h ^ c) * kFnvPrime;
}

}  // namespace

std::uint64_t offer_content_hash(const Offer& offer) {
  std::uint64_t h = kFnvOffset;
  fnv(h, offer.id);
  fnv(h, offer.service_type);
  fnv(h, offer.ref.to_string());
  for (const auto& [name, value] : offer.attributes) {
    fnv(h, name);
    // The debug rendering is a stable, total function of the value (kind,
    // payload, nested structure) — exactly what content equality needs.
    fnv(h, value.to_debug_string());
  }
  for (const auto& [name, operation] : offer.dynamic_attrs) {
    fnv(h, name);
    fnv(h, operation);
  }
  fnv(h, std::to_string(offer.lease_expires_at));
  return h;
}

}  // namespace cosm::trader
