#include "trader/offer_store.h"

#include <algorithm>
#include <cmath>

namespace cosm::trader {

namespace {

/// First ord-index position with value >= v.
std::size_t lower_pos(const std::vector<std::pair<double, std::uint32_t>>& ord,
                      double v) {
  return static_cast<std::size_t>(
      std::lower_bound(ord.begin(), ord.end(), v,
                       [](const auto& entry, double value) {
                         return entry.first < value;
                       }) -
      ord.begin());
}

/// First ord-index position with value > v.
std::size_t upper_pos(const std::vector<std::pair<double, std::uint32_t>>& ord,
                      double v) {
  return static_cast<std::size_t>(
      std::upper_bound(ord.begin(), ord.end(), v,
                       [](double value, const auto& entry) {
                         return value < entry.first;
                       }) -
      ord.begin());
}

}  // namespace

std::size_t OfferStore::IndexKeyHash::operator()(const IndexKey& k) const {
  std::size_t h = static_cast<std::size_t>(k.tag);
  switch (k.tag) {
    case IndexKey::Tag::Number:
      h ^= std::hash<double>{}(k.number) + 0x9e3779b97f4a7c15ull;
      break;
    case IndexKey::Tag::Text:
      h ^= std::hash<std::string>{}(k.text) + 0x9e3779b97f4a7c15ull;
      break;
    case IndexKey::Tag::Boolean:
      h ^= std::hash<bool>{}(k.boolean) + 0x9e3779b97f4a7c15ull;
      break;
  }
  return h;
}

/// Normalise an attribute value into its equality-index key, mirroring the
/// constraint language's comparison semantics: int/float collapse to one
/// number line, enums compare by label, structured values are incomparable
/// (they satisfy no comparison, so they are simply not indexed).
OfferStore::IndexKey OfferStore::key_of(const wire::Value& value,
                                        bool* indexable) {
  using wire::ValueKind;
  IndexKey key;
  *indexable = true;
  switch (value.kind()) {
    case ValueKind::Int:
      key.tag = IndexKey::Tag::Number;
      key.number = static_cast<double>(value.as_int());
      break;
    case ValueKind::Float:
      key.tag = IndexKey::Tag::Number;
      key.number = value.as_real();
      if (std::isnan(key.number)) *indexable = false;  // NaN matches nothing
      break;
    case ValueKind::String:
      key.tag = IndexKey::Tag::Text;
      key.text = value.as_string();
      break;
    case ValueKind::Enum:
      key.tag = IndexKey::Tag::Text;
      key.text = value.enum_label();
      break;
    case ValueKind::Bool:
      key.tag = IndexKey::Tag::Boolean;
      key.boolean = value.as_bool();
      break;
    default:
      *indexable = false;
      break;
  }
  if (key.tag == IndexKey::Tag::Number && key.number == 0.0) {
    key.number = 0.0;  // collapse -0.0 onto +0.0 (they compare equal)
  }
  return key;
}

OfferStore::IndexedBasePtr OfferStore::rebuild_base(const Bucket& bucket) {
  auto next = std::make_shared<IndexedBase>();
  auto& slots = next->slots;
  if (bucket.base) {
    slots.reserve(bucket.base->slots.size() + bucket.delta.size());
    for (const StoredOffer& so : bucket.base->slots) {
      if (bucket.dead.empty() || bucket.dead.count(so.offer->id) == 0) {
        slots.push_back(so);
      }
    }
  }
  slots.insert(slots.end(), bucket.delta.begin(), bucket.delta.end());
  // modify() keeps an offer's original sequence number, so delta entries
  // are not necessarily newer than every base entry.
  std::sort(slots.begin(), slots.end(),
            [](const StoredOffer& a, const StoredOffer& b) {
              return a.seq < b.seq;
            });

  for (std::uint32_t slot = 0; slot < slots.size(); ++slot) {
    const Offer& offer = *slots[slot].offer;
    next->slot_of_id.emplace(offer.id, slot);
    if (!offer.dynamic_attrs.empty()) {
      // Values fetched at import time cannot be pre-indexed; these offers
      // bypass narrowing entirely.
      next->dynamic_slots.push_back(slot);
      continue;
    }
    for (const auto& [name, value] : offer.attributes) {
      bool indexable = false;
      IndexKey key = key_of(value, &indexable);
      if (!indexable) continue;
      next->eq[name][key].push_back(slot);
      if (key.tag == IndexKey::Tag::Number) {
        next->ord[name].emplace_back(key.number, slot);
      }
    }
  }
  for (auto& [name, entries] : next->ord) {
    std::sort(entries.begin(), entries.end());
  }
  return next;
}

bool OfferStore::maybe_merge(Bucket& bucket) {
  std::size_t base_size = bucket.base ? bucket.base->slots.size() : 0;
  std::size_t threshold =
      std::max(tuning_.min_delta, base_size / std::max<std::size_t>(
                                                  1, tuning_.delta_fraction));
  bool delta_full = bucket.delta.size() > threshold;
  bool too_dead = !bucket.dead.empty() && bucket.dead.size() > base_size / 4;
  if (!delta_full && !too_dead) return false;
  bucket.base = rebuild_base(bucket);
  bucket.delta.clear();
  bucket.dead.clear();
  base_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void OfferStore::publish(std::shared_ptr<Snapshot> next) {
  std::lock_guard lock(snapshot_mutex_);
  snapshot_ = std::move(next);
}

void OfferStore::insert(OfferPtr offer,
                        const std::vector<AttributeDef>& schema) {
  std::lock_guard lock(writer_mutex_);
  auto snap = snapshot();
  auto next = std::make_shared<Snapshot>(*snap);

  const std::string& type = offer->service_type;
  auto existing = next->buckets.find(type);
  auto bucket = existing == next->buckets.end()
                    ? std::make_shared<Bucket>()
                    : std::make_shared<Bucket>(*existing->second);
  if (!bucket->base) bucket->base = std::make_shared<IndexedBase>();

  // Index eligibility rests on "every static offer of this bucket carries
  // the attribute": keep the intersection of required names across the
  // schemas seen (a type re-registered with a laxer schema narrows it).
  std::unordered_set<std::string> required;
  for (const auto& def : schema) {
    bucket->declared_attrs.insert(def.name);
    if (def.required) required.insert(def.name);
  }
  if (bucket->live == 0 && bucket->delta.empty()) {
    bucket->required_attrs = std::move(required);
  } else {
    for (auto it = bucket->required_attrs.begin();
         it != bucket->required_attrs.end();) {
      it = required.count(*it) ? std::next(it)
                               : bucket->required_attrs.erase(it);
    }
  }

  type_of_id_.emplace(offer->id, type);
  bucket->delta.push_back(StoredOffer{next_seq_++, std::move(offer)});
  bucket->live += 1;
  maybe_merge(*bucket);
  next->buckets[type] = std::move(bucket);
  publish(std::move(next));
}

OfferPtr OfferStore::find(const std::string& id) const {
  std::lock_guard lock(writer_mutex_);
  auto type_it = type_of_id_.find(id);
  if (type_it == type_of_id_.end()) return nullptr;
  auto snap = snapshot();
  auto bucket_it = snap->buckets.find(type_it->second);
  if (bucket_it == snap->buckets.end()) return nullptr;
  const Bucket& bucket = *bucket_it->second;
  for (const StoredOffer& so : bucket.delta) {
    if (so.offer->id == id) return so.offer;
  }
  auto slot_it = bucket.base->slot_of_id.find(id);
  if (slot_it == bucket.base->slot_of_id.end()) return nullptr;
  return bucket.base->slots[slot_it->second].offer;
}

bool OfferStore::erase(const std::string& id) {
  std::lock_guard lock(writer_mutex_);
  auto type_it = type_of_id_.find(id);
  if (type_it == type_of_id_.end()) return false;
  auto snap = snapshot();
  auto next = std::make_shared<Snapshot>(*snap);
  auto bucket_it = next->buckets.find(type_it->second);
  if (bucket_it == next->buckets.end()) return false;
  auto bucket = std::make_shared<Bucket>(*bucket_it->second);

  auto delta_it = std::find_if(
      bucket->delta.begin(), bucket->delta.end(),
      [&](const StoredOffer& so) { return so.offer->id == id; });
  if (delta_it != bucket->delta.end()) {
    bucket->delta.erase(delta_it);
  } else if (bucket->base->slot_of_id.count(id)) {
    bucket->dead.insert(id);
  } else {
    return false;  // map and bucket disagree — defensive, cannot happen
  }
  bucket->live -= 1;
  type_of_id_.erase(type_it);
  maybe_merge(*bucket);
  bucket_it->second = std::move(bucket);
  publish(std::move(next));
  return true;
}

bool OfferStore::replace(const std::string& id, OfferPtr next_offer) {
  std::lock_guard lock(writer_mutex_);
  auto type_it = type_of_id_.find(id);
  if (type_it == type_of_id_.end()) return false;
  auto snap = snapshot();
  auto next = std::make_shared<Snapshot>(*snap);
  auto bucket_it = next->buckets.find(type_it->second);
  if (bucket_it == next->buckets.end()) return false;
  auto bucket = std::make_shared<Bucket>(*bucket_it->second);

  auto delta_it = std::find_if(
      bucket->delta.begin(), bucket->delta.end(),
      [&](const StoredOffer& so) { return so.offer->id == id; });
  if (delta_it != bucket->delta.end()) {
    delta_it->offer = std::move(next_offer);
  } else {
    auto slot_it = bucket->base->slot_of_id.find(id);
    if (slot_it == bucket->base->slot_of_id.end()) return false;
    // Keep the original sequence number so export order is stable.
    std::uint64_t seq = bucket->base->slots[slot_it->second].seq;
    bucket->dead.insert(id);
    bucket->delta.push_back(StoredOffer{seq, std::move(next_offer)});
  }
  maybe_merge(*bucket);
  bucket_it->second = std::move(bucket);
  publish(std::move(next));
  return true;
}

std::size_t OfferStore::erase_if(
    const std::function<bool(const Offer&)>& pred) {
  std::lock_guard lock(writer_mutex_);
  auto snap = snapshot();
  auto next = std::make_shared<Snapshot>(*snap);
  std::size_t erased = 0;
  for (auto& [type, bucket_ptr] : next->buckets) {
    std::vector<std::string> victims;
    for (const StoredOffer& so : bucket_ptr->base->slots) {
      if ((bucket_ptr->dead.empty() ||
           bucket_ptr->dead.count(so.offer->id) == 0) &&
          pred(*so.offer)) {
        victims.push_back(so.offer->id);
      }
    }
    bool delta_hit = std::any_of(
        bucket_ptr->delta.begin(), bucket_ptr->delta.end(),
        [&](const StoredOffer& so) { return pred(*so.offer); });
    if (victims.empty() && !delta_hit) continue;

    auto bucket = std::make_shared<Bucket>(*bucket_ptr);
    for (auto& id : victims) {
      bucket->dead.insert(id);
      type_of_id_.erase(id);
    }
    std::erase_if(bucket->delta, [&](const StoredOffer& so) {
      if (!pred(*so.offer)) return false;
      victims.push_back(so.offer->id);  // count only; id already unique
      type_of_id_.erase(so.offer->id);
      return true;
    });
    erased += victims.size();
    bucket->live -= victims.size();
    maybe_merge(*bucket);
    bucket_ptr = std::move(bucket);
  }
  if (erased > 0) publish(std::move(next));
  return erased;
}

std::size_t OfferStore::size() const {
  std::lock_guard lock(writer_mutex_);
  return type_of_id_.size();
}

void OfferStore::collect_bucket(const Bucket& bucket,
                                const Constraint* constraint,
                                std::vector<StoredOffer>& out,
                                MatchStats* stats) const {
  const IndexedBase& base = *bucket.base;
  if (stats) stats->type_candidates += bucket.live;
  std::size_t before = out.size();

  auto emit = [&](std::uint32_t slot) {
    const StoredOffer& so = base.slots[slot];
    if (!bucket.dead.empty() && bucket.dead.count(so.offer->id)) return;
    out.push_back(so);
  };

  // The planner: keep the hints this bucket can serve exactly, seed from
  // the most selective, intersect the rest via a vote array.
  struct Selection {
    const std::vector<std::uint32_t>* posting = nullptr;  // Equality
    const std::vector<std::pair<double, std::uint32_t>>* ord = nullptr;
    std::size_t lo = 0, hi = 0;  // Range half-open span into *ord
    std::size_t size() const { return posting ? posting->size() : hi - lo; }
  };
  static const std::vector<std::uint32_t> kEmptyPosting;

  std::vector<Selection> selections;
  if (indexes_enabled() && constraint != nullptr && !base.slots.empty()) {
    for (const IndexHint& hint : constraint->index_hints()) {
      // Intersecting a subset of the filters still yields a superset of
      // the matches; capping also keeps the vote counters from wrapping.
      if (selections.size() >= 16) break;
      if (bucket.required_attrs.count(hint.attr) == 0) continue;
      if (hint.kind == IndexHint::Kind::Equality) {
        if (hint.key_kind == IndexHint::KeyKind::Text &&
            hint.text_is_bare_ident && bucket.declared_attrs.count(hint.text)) {
          continue;  // the "literal" may resolve as an attribute per offer
        }
        IndexKey key;
        switch (hint.key_kind) {
          case IndexHint::KeyKind::Number:
            key.tag = IndexKey::Tag::Number;
            key.number = hint.number == 0.0 ? 0.0 : hint.number;
            break;
          case IndexHint::KeyKind::Text:
            key.tag = IndexKey::Tag::Text;
            key.text = hint.text;
            break;
          case IndexHint::KeyKind::Boolean:
            key.tag = IndexKey::Tag::Boolean;
            key.boolean = hint.boolean;
            break;
        }
        Selection sel;
        sel.posting = &kEmptyPosting;
        if (auto attr_it = base.eq.find(hint.attr); attr_it != base.eq.end()) {
          if (auto key_it = attr_it->second.find(key);
              key_it != attr_it->second.end()) {
            sel.posting = &key_it->second;
          }
        }
        selections.push_back(sel);
      } else {
        Selection sel;
        auto attr_it = base.ord.find(hint.attr);
        if (attr_it == base.ord.end()) {
          sel.posting = &kEmptyPosting;  // no static offer has a number here
          selections.push_back(sel);
          continue;
        }
        sel.ord = &attr_it->second;
        switch (hint.bound) {
          case IndexHint::Bound::Lt:
            sel.lo = 0;
            sel.hi = lower_pos(*sel.ord, hint.number);
            break;
          case IndexHint::Bound::Le:
            sel.lo = 0;
            sel.hi = upper_pos(*sel.ord, hint.number);
            break;
          case IndexHint::Bound::Gt:
            sel.lo = upper_pos(*sel.ord, hint.number);
            sel.hi = sel.ord->size();
            break;
          case IndexHint::Bound::Ge:
            sel.lo = lower_pos(*sel.ord, hint.number);
            sel.hi = sel.ord->size();
            break;
        }
        selections.push_back(sel);
      }
    }
  }

  if (!selections.empty()) {
    if (stats) stats->index_used = true;
    index_lookups_.fetch_add(1, std::memory_order_relaxed);
    auto primary = std::min_element(
        selections.begin(), selections.end(),
        [](const Selection& a, const Selection& b) { return a.size() < b.size(); });
    auto for_each_slot = [](const Selection& sel, auto&& fn) {
      if (sel.posting) {
        for (std::uint32_t slot : *sel.posting) fn(slot);
      } else {
        for (std::size_t i = sel.lo; i < sel.hi; ++i) fn((*sel.ord)[i].second);
      }
    };
    if (primary->size() > 0) {
      if (selections.size() == 1) {
        for_each_slot(*primary, emit);
      } else {
        // Every selection is an exact filter; a slot survives only with a
        // vote from each.  The vote array costs one zeroed byte per base
        // slot — far below the per-candidate constraint evaluation saved.
        std::vector<std::uint8_t> votes(base.slots.size(), 0);
        for (const Selection& sel : selections) {
          for_each_slot(sel, [&](std::uint32_t slot) { ++votes[slot]; });
        }
        auto wanted = static_cast<std::uint8_t>(
            std::min<std::size_t>(selections.size(), 255));
        for_each_slot(*primary, [&](std::uint32_t slot) {
          if (votes[slot] >= wanted) emit(slot);
        });
      }
    }
    // Dynamic offers fetch their values at import time: always candidates.
    for (std::uint32_t slot : base.dynamic_slots) emit(slot);
  } else {
    for (std::uint32_t slot = 0; slot < base.slots.size(); ++slot) emit(slot);
  }
  out.insert(out.end(), bucket.delta.begin(), bucket.delta.end());
  if (stats) stats->scanned += out.size() - before;
}

std::vector<StoredOffer> OfferStore::collect(
    const std::vector<std::string>& types, const Constraint& constraint,
    MatchStats* stats) const {
  auto snap = snapshot();
  std::vector<StoredOffer> out;
  for (const std::string& type : types) {
    auto it = snap->buckets.find(type);
    if (it == snap->buckets.end()) continue;
    collect_bucket(*it->second, &constraint, out, stats);
  }
  return out;
}

std::vector<StoredOffer> OfferStore::collect_all(
    const std::vector<std::string>& types) const {
  auto snap = snapshot();
  std::vector<StoredOffer> out;
  for (const std::string& type : types) {
    auto it = snap->buckets.find(type);
    if (it == snap->buckets.end()) continue;
    collect_bucket(*it->second, nullptr, out, nullptr);
  }
  return out;
}

}  // namespace cosm::trader
