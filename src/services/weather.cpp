#include "services/weather.h"

#include <memory>
#include <sstream>

#include "common/rng.h"
#include "sidl/parser.h"

namespace cosm::services {

std::string weather_sidl(const WeatherConfig& config) {
  std::ostringstream os;
  os << "module " << config.name << " {\n"
     << "  typedef enum { SUNNY, CLOUDY, RAIN, SNOW, STORM } Condition_t;\n"
        "  typedef struct {\n"
        "    string city;\n"
        "    long day;\n"
        "    double temperature;\n"
        "    Condition_t condition;\n"
        "  } Forecast_t;\n"
        "  interface COSM_Operations {\n"
        "    Forecast_t GetForecast([in] string city, [in] long day);\n"
        "    sequence<string> Cities();\n"
        "  };\n"
        "  module COSM_Annotations {\n"
        "    annotate " << config.name
     << " \"Weather forecasts for European cities — an innovative service "
        "with no standardised type\";\n"
        "    annotate GetForecast \"Forecast for a city, N days ahead\";\n"
        "  };\n"
        "};\n";
  return os.str();
}

rpc::ServiceObjectPtr make_weather_service(const WeatherConfig& config) {
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(weather_sidl(config)));
  auto object = std::make_shared<rpc::ServiceObject>(std::move(sid));

  std::uint64_t seed = config.seed;
  object->on("GetForecast", [seed](const std::vector<wire::Value>& args) {
    const std::string& city = args.at(0).as_string();
    std::int64_t day = args.at(1).as_int();
    // Deterministic per (seed, city, day).
    Rng rng(seed ^ std::hash<std::string>{}(city) ^
            static_cast<std::uint64_t>(day) * 0x9E3779B97F4A7C15ULL);
    static const char* conditions[] = {"SUNNY", "CLOUDY", "RAIN", "SNOW", "STORM"};
    double temperature = -10.0 + rng.uniform() * 40.0;
    return wire::Value::structure(
        "Forecast_t",
        {{"city", wire::Value::string(city)},
         {"day", wire::Value::integer(day)},
         {"temperature", wire::Value::real(temperature)},
         {"condition",
          wire::Value::enumerated("Condition_t", conditions[rng.below(5)])}});
  });
  object->on("Cities", [](const std::vector<wire::Value>&) {
    std::vector<wire::Value> cities;
    for (const char* c : {"Hamburg", "Paris", "Zurich", "London", "Rome"}) {
      cities.push_back(wire::Value::string(c));
    }
    return wire::Value::sequence(std::move(cities));
  });
  return object;
}

}  // namespace cosm::services
