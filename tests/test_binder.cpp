#include "naming/binder.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "sidl/parser.h"

namespace cosm::naming {
namespace {

using wire::Value;

rpc::ServiceObjectPtr echo_service() {
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid("module Echo { interface I { string Echo([in] string s); }; };"));
  auto object = std::make_shared<rpc::ServiceObject>(sid);
  object->on("Echo", [](const std::vector<Value>& args) { return args.at(0); });
  return object;
}

TEST(Binder, BindProbesAndDeliversSid) {
  rpc::InProcNetwork net;
  rpc::RpcServer server(net, "host");
  auto ref = server.add(echo_service());

  Binder binder(net);
  BoundService bound = binder.bind(ref);
  ASSERT_TRUE(bound.sid);
  EXPECT_EQ(bound.sid->name, "Echo");
  EXPECT_EQ(bound.channel->call("Echo", {Value::string("hi")}).as_string(), "hi");
  EXPECT_EQ(binder.bindings_established(), 1u);
}

TEST(Binder, ProbeDetectsInterfaceMismatch) {
  rpc::InProcNetwork net;
  rpc::RpcServer server(net, "host");
  auto ref = server.add(echo_service());
  ref.interface_name = "SomethingElse";  // stale/forged reference

  Binder binder(net);
  EXPECT_THROW(binder.bind(ref), TypeError);
}

TEST(Binder, ProbeDetectsDeadEndpoint) {
  rpc::InProcNetwork net;
  Binder binder(net);
  sidl::ServiceRef dead{"svc-x", "inproc://nowhere", "Echo"};
  EXPECT_THROW(binder.bind(dead), RpcError);
}

TEST(Binder, ProbeCanBeDisabled) {
  rpc::InProcNetwork net;
  rpc::RpcServer server(net, "host");
  auto ref = server.add(echo_service());
  ref.interface_name = "WrongButUnchecked";

  BinderOptions options;
  options.probe_on_bind = false;
  Binder binder(net, options);
  BoundService bound = binder.bind(ref);
  EXPECT_EQ(bound.sid, nullptr);
  // The channel still works; validation happens per call.
  EXPECT_EQ(bound.channel->call("Echo", {Value::string("x")}).as_string(), "x");
}

TEST(Binder, InvalidReferenceRejected) {
  rpc::InProcNetwork net;
  Binder binder(net);
  EXPECT_THROW(binder.bind(sidl::ServiceRef{}), ContractError);
}

}  // namespace
}  // namespace cosm::naming
