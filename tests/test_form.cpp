#include "uims/form.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sidl/parser.h"

namespace cosm::uims {
namespace {

sidl::Sid car_sid() {
  return sidl::parse_sid(R"(
    module CarRentalService {
      typedef enum { AUDI, FIAT_Uno, VW_Golf } CarModel_t;
      typedef struct {
        CarModel_t model;
        string booking_date;
        long days;
        sequence<string> extras;
        optional<double> discount;
      } SelectCar_t;
      typedef struct { boolean available; double total_charge; } Return_t;
      interface COSM_Operations {
        Return_t SelectCar([in] SelectCar_t selection);
        void Reset();
        sequence<CarModel_t> ListModels();
      };
      module COSM_FSM {
        states { INIT, SELECTED };
        initial INIT;
        transition INIT SelectCar SELECTED;
        transition SELECTED Reset INIT;
      };
      module COSM_Annotations {
        annotate CarRentalService "Rent a car";
        annotate SelectCar "Select and quote";
        annotate booking_date "ISO date of pickup";
      };
    };
  )");
}

/// Widget mapping per SIDL type kind — the §3.2 "well-defined relationship
/// of linguistic service description elements to UIMS components".
struct KindCase {
  const char* type_spec;
  WidgetKind expected;
};

class WidgetMapping : public ::testing::TestWithParam<KindCase> {};

TEST_P(WidgetMapping, TypeToWidget) {
  sidl::Sid empty;
  empty.name = "M";
  auto type = sidl::parse_type(GetParam().type_spec);
  Widget w = widget_for(empty, "x", type);
  EXPECT_EQ(w.kind, GetParam().expected) << GetParam().type_spec;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, WidgetMapping,
    ::testing::Values(KindCase{"boolean", WidgetKind::CheckBox},
                      KindCase{"long", WidgetKind::NumberField},
                      KindCase{"double", WidgetKind::NumberField},
                      KindCase{"string", WidgetKind::TextField},
                      KindCase{"enum E { A, B }", WidgetKind::EnumChoice},
                      KindCase{"struct { long x; }", WidgetKind::StructGroup},
                      KindCase{"sequence<long>", WidgetKind::SequenceEditor},
                      KindCase{"optional<string>", WidgetKind::OptionalToggle},
                      KindCase{"ServiceReference", WidgetKind::BindButton},
                      KindCase{"SID", WidgetKind::SidViewer},
                      KindCase{"any", WidgetKind::AnyField}));

TEST(Form, EnumChoicesListLabels) {
  sidl::Sid empty;
  empty.name = "M";
  Widget w = widget_for(empty, "m", sidl::parse_type("enum E { A, B, C }"));
  EXPECT_EQ(w.choices, (std::vector<std::string>{"A", "B", "C"}));
}

TEST(Form, StructGroupNestsChildren) {
  sidl::Sid sid = car_sid();
  Widget w = widget_for(sid, "selection", sid.find_type("SelectCar_t"));
  ASSERT_EQ(w.children.size(), 5u);
  EXPECT_EQ(w.children[0].kind, WidgetKind::EnumChoice);
  EXPECT_EQ(w.children[3].kind, WidgetKind::SequenceEditor);
  EXPECT_EQ(w.children[4].kind, WidgetKind::OptionalToggle);
  // Sequence and optional wrap a prototype child.
  ASSERT_EQ(w.children[3].children.size(), 1u);
  EXPECT_EQ(w.children[3].children[0].kind, WidgetKind::TextField);
}

TEST(Form, VoidHasNoWidget) {
  sidl::Sid empty;
  empty.name = "M";
  EXPECT_THROW(widget_for(empty, "x", sidl::TypeDesc::void_()), ContractError);
}

TEST(Form, AnnotationsAttachToWidgetsAndOperations) {
  sidl::Sid sid = car_sid();
  OperationForm form = generate_operation_form(sid, "SelectCar");
  EXPECT_EQ(form.annotation, "Select and quote");
  // Parameter field annotation found by element name.
  const Widget& group = form.inputs.at(0);
  const Widget* date = nullptr;
  for (const auto& c : group.children) {
    if (c.label == "booking_date") date = &c;
  }
  ASSERT_NE(date, nullptr);
  EXPECT_EQ(date->annotation, "ISO date of pickup");
}

TEST(Form, FsmRestrictionMarked) {
  sidl::Sid sid = car_sid();
  EXPECT_TRUE(generate_operation_form(sid, "SelectCar").fsm_restricted);
  EXPECT_FALSE(generate_operation_form(sid, "ListModels").fsm_restricted);
}

TEST(Form, UnknownOperationThrows) {
  EXPECT_THROW(generate_operation_form(car_sid(), "Teleport"), NotFound);
}

TEST(Form, VoidResultHasNoResultView) {
  OperationForm form = generate_operation_form(car_sid(), "Reset");
  EXPECT_EQ(form.result_view.type, nullptr);
  EXPECT_TRUE(form.inputs.empty());
}

TEST(Form, ServiceFormCoversAllOperations) {
  ServiceForm form = generate_form(car_sid());
  EXPECT_EQ(form.service, "CarRentalService");
  EXPECT_EQ(form.annotation, "Rent a car");
  ASSERT_EQ(form.operations.size(), 3u);
  EXPECT_GT(widget_count(form), 8u);
}

TEST(Form, TextRenderingShowsStructure) {
  std::string text = render_text(generate_form(car_sid()));
  EXPECT_NE(text.find("CarRentalService"), std::string::npos);
  EXPECT_NE(text.find("INVOKE SelectCar"), std::string::npos);
  EXPECT_NE(text.find("AUDI | FIAT_Uno | VW_Golf"), std::string::npos);
  EXPECT_NE(text.find("(protocol-controlled)"), std::string::npos);
  EXPECT_NE(text.find("ISO date of pickup"), std::string::npos);
}

TEST(Form, OutParamsGetNoInputWidgets) {
  sidl::Sid sid = sidl::parse_sid(R"(
    module M { interface I { void Op([in] long a, [out] string b); }; };
  )");
  OperationForm form = generate_operation_form(sid, "Op");
  EXPECT_EQ(form.inputs.size(), 1u);
  EXPECT_EQ(form.inputs[0].label, "a");
}

TEST(Form, WidgetKindNames) {
  EXPECT_EQ(to_string(WidgetKind::CheckBox), "checkbox");
  EXPECT_EQ(to_string(WidgetKind::BindButton), "bind");
}

}  // namespace
}  // namespace cosm::uims
