# Empty dependencies file for test_sid.
# This may be replaced when dependencies are built.
