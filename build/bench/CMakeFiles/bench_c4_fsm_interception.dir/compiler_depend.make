# Empty compiler generated dependencies file for bench_c4_fsm_interception.
# This may be replaced when dependencies are built.
