#include "rpc/fault_injection.h"

#include <thread>

#include "common/error.h"

namespace cosm::rpc {

void FaultInjectingNetwork::set_default_profile(FaultProfile profile) {
  std::lock_guard lock(mutex_);
  default_profile_ = profile;
}

void FaultInjectingNetwork::set_profile(const std::string& endpoint,
                                        FaultProfile profile) {
  std::lock_guard lock(mutex_);
  per_endpoint_[endpoint] = profile;
}

void FaultInjectingNetwork::clear_profiles() {
  std::lock_guard lock(mutex_);
  per_endpoint_.clear();
  default_profile_ = FaultProfile{};
}

void FaultInjectingNetwork::fail_next(int calls) {
  fail_next_.store(calls < 0 ? 0 : calls);
}

PendingCallPtr FaultInjectingNetwork::call_async(const std::string& endpoint,
                                                 const Bytes& request,
                                                 const CallContext& ctx) {
  calls_.fetch_add(1, std::memory_order_relaxed);

  int scheduled = fail_next_.load();
  while (scheduled > 0 &&
         !fail_next_.compare_exchange_weak(scheduled, scheduled - 1)) {
  }
  if (scheduled > 0) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return failed_call(std::make_exception_ptr(
        RpcError("injected fault: connection reset to '" + endpoint + "'")));
  }

  bool fail = false, drop = false, duplicate = false, delayed = false;
  std::chrono::milliseconds delay_for{0};
  {
    std::lock_guard lock(mutex_);
    auto it = per_endpoint_.find(endpoint);
    const FaultProfile& profile =
        it == per_endpoint_.end() ? default_profile_ : it->second;
    if (!profile.quiet()) {
      // One die per hazard, rolled in fixed order so a seed fully determines
      // the fault schedule regardless of which hazards are enabled.
      fail = rng_.chance(profile.fail);
      drop = rng_.chance(profile.drop) && !fail;
      duplicate = rng_.chance(profile.duplicate);
      delayed = rng_.chance(profile.delay);
      delay_for = profile.delay_for;
    }
  }

  if (delayed) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(delay_for);
  }
  if (fail) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return failed_call(std::make_exception_ptr(
        RpcError("injected fault: connection reset to '" + endpoint + "'")));
  }
  if (drop) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    // A lost request: nothing ever settles this call.  The caller's
    // deadline (or the retry policy's attempt_timeout) is the only way out.
    return std::make_shared<PendingCall>();
  }
  if (duplicate) {
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    // Shadow delivery: same frame, result dropped.  Against an at-most-once
    // server the replay cache must make this invisible.
    inner_.call_async(endpoint, request, ctx);
  }
  return inner_.call_async(endpoint, request, ctx);
}

}  // namespace cosm::rpc
