#include "services/market.h"

namespace cosm::services {

std::vector<CarRentalConfig> generate_market(const MarketConfig& config) {
  Rng rng(config.seed);
  static const std::vector<std::string> kCurrencies = {"USD", "DEM", "FF",
                                                       "SFR", "GBP"};
  const std::vector<std::string>& kModelPool = car_model_pool();

  std::vector<CarRentalConfig> providers;
  providers.reserve(config.providers);
  for (std::size_t i = 0; i < config.providers; ++i) {
    CarRentalConfig c;
    c.name = "CarRental_" + std::to_string(i);
    // Between 1 and all models, drawn without replacement from the pool.
    std::size_t model_count = 1 + rng.below(kModelPool.size());
    std::vector<std::string> pool = kModelPool;
    c.models.clear();
    for (std::size_t m = 0; m < model_count; ++m) {
      std::size_t pick = rng.below(pool.size());
      c.models.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    c.charge_per_day = 30.0 + static_cast<double>(rng.below(12000)) / 100.0;
    c.currency = kCurrencies[rng.below(kCurrencies.size())];
    c.average_milage = rng.range(5000, 60000);
    c.tradable = rng.uniform() < config.tradable_fraction;
    c.extra_fields =
        config.max_extra_fields > 0
            ? static_cast<int>(rng.below(static_cast<std::uint64_t>(
                  config.max_extra_fields + 1)))
            : 0;
    c.fleet_per_model = rng.range(5, 200);
    providers.push_back(std::move(c));
  }
  return providers;
}

std::uint64_t EstablishmentOutcome::total_hours() const {
  std::uint64_t total = 0;
  for (const auto& phase : phases) total += phase.hours;
  return total;
}

EstablishmentOutcome trader_path_establishment(const EstablishmentModel& model,
                                               std::size_t operations,
                                               std::size_t federated_traders,
                                               bool type_already_standardised) {
  EstablishmentOutcome out;
  out.phases.push_back({"author SID", model.sid_authoring_hours});
  if (!type_already_standardised) {
    out.phases.push_back(
        {"service type standardisation", model.type_standardisation_hours});
  }
  std::size_t traders = federated_traders == 0 ? 1 : federated_traders;
  out.phases.push_back(
      {"type registration at " + std::to_string(traders) + " trader(s)",
       model.type_registration_hours * traders});
  out.phases.push_back({"offer export", model.offer_export_hours});
  out.phases.push_back(
      {"client stub development (" + std::to_string(operations) + " ops)",
       model.client_dev_hours_per_op * operations});
  return out;
}

EstablishmentOutcome mediation_path_establishment(const EstablishmentModel& model) {
  EstablishmentOutcome out;
  out.phases.push_back({"author SID", model.sid_authoring_hours});
  out.phases.push_back({"browser registration", model.browser_registration_hours});
  // No client development: the generic client already exists (§3.3 "there is
  // no adaptation effort required for generic clients").
  return out;
}

}  // namespace cosm::services
