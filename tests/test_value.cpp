#include "wire/value.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sidl/parser.h"

namespace cosm::wire {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.kind(), ValueKind::Null);
}

TEST(Value, ScalarFactoriesAndAccessors) {
  EXPECT_TRUE(Value::boolean(true).as_bool());
  EXPECT_EQ(Value::integer(-42).as_int(), -42);
  EXPECT_DOUBLE_EQ(Value::real(2.5).as_real(), 2.5);
  EXPECT_EQ(Value::string("hi").as_string(), "hi");
}

TEST(Value, WrongAccessorThrowsTypeError) {
  EXPECT_THROW(Value::integer(1).as_bool(), TypeError);
  EXPECT_THROW(Value::boolean(true).as_string(), TypeError);
  EXPECT_THROW(Value::string("x").elements(), TypeError);
  EXPECT_THROW(Value::null().field_count(), TypeError);
}

TEST(Value, EnumCarriesTypeNameAndLabel) {
  Value e = Value::enumerated("CarModel_t", "VW_Golf");
  EXPECT_EQ(e.type_name(), "CarModel_t");
  EXPECT_EQ(e.enum_label(), "VW_Golf");
  EXPECT_THROW(Value::enumerated("E", ""), ContractError);
}

TEST(Value, StructFieldAccess) {
  Value s = Value::structure("P", {{"x", Value::integer(1)},
                                   {"y", Value::string("two")}});
  EXPECT_EQ(s.field_count(), 2u);
  EXPECT_EQ(s.field_name(0), "x");
  EXPECT_EQ(s.field(1).as_string(), "two");
  ASSERT_NE(s.find_field("y"), nullptr);
  EXPECT_EQ(s.find_field("z"), nullptr);
  EXPECT_EQ(s.at("x").as_int(), 1);
  EXPECT_THROW(s.at("z"), TypeError);
  EXPECT_THROW(s.field(2), TypeError);
}

TEST(Value, SequenceElements) {
  Value seq = Value::sequence({Value::integer(1), Value::integer(2)});
  EXPECT_EQ(seq.elements().size(), 2u);
  EXPECT_EQ(seq.elements()[1].as_int(), 2);
}

TEST(Value, OptionalPresenceAndPayload) {
  Value absent = Value::optional_absent();
  EXPECT_FALSE(absent.has_payload());
  EXPECT_THROW(absent.payload(), TypeError);
  Value present = Value::optional_of(Value::string("x"));
  EXPECT_TRUE(present.has_payload());
  EXPECT_EQ(present.payload().as_string(), "x");
}

TEST(Value, ServiceRefValue) {
  sidl::ServiceRef ref{"id", "inproc://ep", "I"};
  EXPECT_EQ(Value::service_ref(ref).as_ref(), ref);
}

TEST(Value, SidValueRejectsNull) {
  EXPECT_THROW(Value::sid(nullptr), ContractError);
}

TEST(Value, SidValueHoldsDescription) {
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid("module M { interface I { void Op(); }; };"));
  Value v = Value::sid(sid);
  EXPECT_EQ(v.as_sid()->name, "M");
}

TEST(Value, EqualityPerKind) {
  EXPECT_EQ(Value::integer(5), Value::integer(5));
  EXPECT_NE(Value::integer(5), Value::integer(6));
  EXPECT_NE(Value::integer(5), Value::real(5.0));
  EXPECT_EQ(Value::enumerated("E", "A"), Value::enumerated("E", "A"));
  EXPECT_NE(Value::enumerated("E", "A"), Value::enumerated("F", "A"));
  EXPECT_EQ(Value::null(), Value::null());
  EXPECT_EQ(Value::sequence({Value::integer(1)}),
            Value::sequence({Value::integer(1)}));
  EXPECT_NE(Value::sequence({Value::integer(1)}), Value::sequence({}));
}

TEST(Value, StructEqualityIsOrderSensitive) {
  Value a = Value::structure("S", {{"x", Value::integer(1)},
                                   {"y", Value::integer(2)}});
  Value b = Value::structure("S", {{"y", Value::integer(2)},
                                   {"x", Value::integer(1)}});
  EXPECT_NE(a, b);  // field order is part of the wire form
}

TEST(Value, SidEqualityIsStructural) {
  auto s1 = std::make_shared<sidl::Sid>(
      sidl::parse_sid("module M { interface I { void Op(); }; };"));
  auto s2 = std::make_shared<sidl::Sid>(
      sidl::parse_sid("module M { interface I { void Op(); }; };"));
  EXPECT_EQ(Value::sid(s1), Value::sid(s2));
}

TEST(Value, DebugStrings) {
  EXPECT_EQ(Value::integer(7).to_debug_string(), "7");
  EXPECT_EQ(Value::string("a").to_debug_string(), "\"a\"");
  EXPECT_EQ(Value::enumerated("E", "A").to_debug_string(), "E.A");
  EXPECT_EQ(Value::optional_absent().to_debug_string(), "absent");
  Value s = Value::structure("S", {{"x", Value::boolean(false)}});
  EXPECT_EQ(s.to_debug_string(), "S{ x: false }");
  EXPECT_EQ(Value::sequence({Value::integer(1), Value::integer(2)}).to_debug_string(),
            "[1, 2]");
}

TEST(FromLiteral, AllFlavours) {
  using sidl::EnumLabel;
  using sidl::Literal;
  EXPECT_EQ(from_literal(Literal(true)), Value::boolean(true));
  EXPECT_EQ(from_literal(Literal(std::int64_t{9})), Value::integer(9));
  EXPECT_EQ(from_literal(Literal(1.5)), Value::real(1.5));
  EXPECT_EQ(from_literal(Literal(std::string("s"))), Value::string("s"));
  EXPECT_EQ(from_literal(Literal(EnumLabel{"A"}), "E_t"),
            Value::enumerated("E_t", "A"));
}

}  // namespace
}  // namespace cosm::wire
