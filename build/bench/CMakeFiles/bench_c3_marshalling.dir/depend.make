# Empty dependencies file for bench_c3_marshalling.
# This may be replaced when dependencies are built.
