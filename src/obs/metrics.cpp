#include "obs/metrics.h"

#include <bit>
#include <sstream>

namespace cosm::obs {

namespace {

/// Bucket index for a sample: 0 for 0..1 us, otherwise bit width clamped to
/// the last bucket, so bucket i covers [2^(i-1), 2^i).
int bucket_of(std::uint64_t us) noexcept {
  if (us <= 1) return 0;
  int idx = std::bit_width(us - 1);
  return idx < Histogram::kBuckets ? idx : Histogram::kBuckets - 1;
}

/// Upper bound (us) of bucket i — what percentiles report.
std::uint64_t bucket_bound(int i) noexcept { return std::uint64_t{1} << i; }

}  // namespace

void Histogram::record_us(std::uint64_t us) noexcept {
  buckets_[bucket_of(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
  std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (us > seen &&
         !max_us_.compare_exchange_weak(seen, us, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot s;
  std::uint64_t counts[kBuckets];
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += counts[i];
  }
  s.sum_us = sum_us_.load(std::memory_order_relaxed);
  s.max_us = max_us_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  auto quantile = [&](double q) {
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(s.count - 1)) + 1;
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen >= rank) return bucket_bound(i);
    }
    return bucket_bound(kBuckets - 1);
  };
  s.p50_us = quantile(0.50);
  s.p90_us = quantile(0.90);
  s.p99_us = quantile(0.99);
  return s;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
  max_us_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": " << g->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    Histogram::Snapshot s = h->snapshot();
    out << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
        << s.count << ", \"sum_us\": " << s.sum_us << ", \"max_us\": "
        << s.max_us << ", \"p50_us\": " << s.p50_us << ", \"p90_us\": "
        << s.p90_us << ", \"p99_us\": " << s.p99_us << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}";
  return out.str();
}

std::string MetricsRegistry::to_text() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    Histogram::Snapshot s = h->snapshot();
    out << name << " count=" << s.count << " p50=" << s.p50_us
        << "us p90=" << s.p90_us << "us p99=" << s.p99_us
        << "us max=" << s.max_us << "us\n";
  }
  return out.str();
}

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point start) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace cosm::obs
