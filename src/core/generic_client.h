// The Generic Client — the paper's central mechanism (§3.2).
//
// A generic client binds to *arbitrary* services knowing nothing about them
// at compile time.  On bind it transfers the service's SID (Fig. 3), then:
//   * generates the user interface from the SID (src/uims),
//   * marshals parameters dynamically against the transferred signature,
//   * tracks the communication state of the session and rejects invocations
//     the service's FSM does not allow *locally*, before any RPC (§4.2),
//   * treats service references in results as first-class: binding to them
//     yields further Bindings — the Fig. 4 cascade.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rpc/channel.h"
#include "rpc/network.h"
#include "sidl/service_ref.h"
#include "sidl/sid.h"
#include "uims/editor.h"
#include "uims/form.h"
#include "wire/value.h"

namespace cosm::core {

struct GenericClientOptions {
  /// Local FSM enforcement (§4.2).  Benchmark C4 turns this off to measure
  /// the cost of server-side-only rejection.
  bool enforce_fsm = true;
  std::chrono::milliseconds timeout{5000};
  /// Per-invocation retry on transport failure (see ChannelOptions::retry).
  /// Disabled by default; gated on `idempotent` unless the policy says
  /// otherwise.
  rpc::RetryPolicy retry{};
  /// Declares every operation invoked through this client safe to reissue.
  bool idempotent = false;
};

class GenericClient;

/// A live binding to one service: channel + transferred SID + session FSM
/// state.  Move-only.
class Binding {
 public:
  Binding(Binding&&) noexcept = default;
  Binding& operator=(Binding&&) noexcept = default;
  Binding(const Binding&) = delete;
  Binding& operator=(const Binding&) = delete;

  const sidl::SidPtr& sid() const noexcept { return sid_; }
  const sidl::ServiceRef& ref() const noexcept { return channel_->ref(); }

  /// Current communication state ("" when the service has no FSM).
  const std::string& state() const noexcept { return state_; }

  /// Operations the FSM allows in the current state (all operations when
  /// the service has no FSM).
  std::vector<std::string> allowed_operations() const;

  /// Would invoke(op) pass the local protocol check right now?
  bool allowed(const std::string& operation) const;

  /// Invoke an operation with dynamically marshalled arguments.  Throws
  /// cosm::ProtocolError on a local FSM rejection (no RPC issued),
  /// cosm::NotFound for unknown operations, cosm::TypeError for
  /// non-conforming arguments, cosm::RemoteFault for server errors.
  wire::Value invoke(const std::string& operation, std::vector<wire::Value> args);

  /// The generated user interface for the whole service (Fig. 7).
  uims::ServiceForm form() const;

  /// A typed form editor for one operation.
  uims::FormEditor edit(const std::string& operation) const;

  /// Invoke using the editor's captured argument values.
  wire::Value invoke_form(const uims::FormEditor& editor);

  /// Local FSM rejections on this binding (instrumentation for C4).
  std::uint64_t local_rejections() const noexcept { return rejections_; }
  std::uint64_t invocations() const noexcept { return invocations_; }

 private:
  friend class GenericClient;
  Binding(std::unique_ptr<rpc::RpcChannel> channel, sidl::SidPtr sid,
          GenericClientOptions options);

  bool fsm_restricted(const std::string& operation) const;

  std::unique_ptr<rpc::RpcChannel> channel_;
  sidl::SidPtr sid_;
  GenericClientOptions options_;
  std::string state_;
  std::uint64_t rejections_ = 0;
  std::uint64_t invocations_ = 0;
};

class GenericClient {
 public:
  explicit GenericClient(rpc::Network& network, GenericClientOptions options = {});

  /// Bind to a service by reference: opens a channel, transfers the SID,
  /// initialises the session's communication state.
  Binding bind(const sidl::ServiceRef& ref);

  /// Bind to a reference received inside a result value (Fig. 4: "a further
  /// binding can be effected out of the user interface based on this
  /// service reference").
  Binding bind(const wire::Value& ref_value) { return bind(ref_value.as_ref()); }

  std::uint64_t bindings_established() const noexcept {
    return bindings_.load(std::memory_order_relaxed);
  }

  rpc::Network& network() noexcept { return network_; }
  const GenericClientOptions& options() const noexcept { return options_; }

 private:
  rpc::Network& network_;
  GenericClientOptions options_;
  // bind() may run concurrently (parallel deep search binds per subtree).
  std::atomic<std::uint64_t> bindings_{0};
};

}  // namespace cosm::core
