file(REMOVE_RECURSE
  "libcosm_naming.a"
)
