# Empty dependencies file for test_form.
# This may be replaced when dependencies are built.
