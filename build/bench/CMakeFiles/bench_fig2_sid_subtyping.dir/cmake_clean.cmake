file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_sid_subtyping.dir/bench_fig2_sid_subtyping.cpp.o"
  "CMakeFiles/bench_fig2_sid_subtyping.dir/bench_fig2_sid_subtyping.cpp.o.d"
  "bench_fig2_sid_subtyping"
  "bench_fig2_sid_subtyping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_sid_subtyping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
