#include "rpc/service_object.h"

#include "common/error.h"
#include "sidl/validate.h"

namespace cosm::rpc {

ServiceObject::ServiceObject(sidl::SidPtr sid, ServiceObjectOptions options)
    : sid_(std::move(sid)), options_(options) {
  if (!sid_) throw ContractError("ServiceObject needs a SID");
  sidl::ensure_valid(*sid_);
}

void ServiceObject::on(const std::string& operation, OpHandler handler) {
  if (!handler) throw ContractError("handler for '" + operation + "' must be callable");
  if (operation.empty()) throw ContractError("operation name must not be empty");
  if (operation[0] != '_' && sid_->find_operation(operation) == nullptr) {
    throw ContractError("operation '" + operation +
                        "' is not declared in SID '" + sid_->name + "'");
  }
  handlers_[operation] = std::move(handler);
}

bool ServiceObject::fsm_restricted(const std::string& operation) const {
  if (!sid_->fsm) return false;
  for (const auto& tr : sid_->fsm->transitions) {
    if (tr.operation == operation) return true;
  }
  return false;
}

wire::Value ServiceObject::dispatch(const std::string& session,
                                    const std::string& operation,
                                    const std::vector<wire::Value>& args) {
  auto it = handlers_.find(operation);
  if (it == handlers_.end()) {
    throw NotFound("service '" + sid_->name + "' does not implement operation '" +
                   operation + "'");
  }

  const bool infrastructure = !operation.empty() && operation[0] == '_';
  const sidl::FsmTransition* transition = nullptr;

  if (!infrastructure && options_.enforce_fsm && sid_->fsm &&
      fsm_restricted(operation)) {
    std::lock_guard lock(mutex_);
    auto state_it = session_states_.find(session);
    const std::string& state =
        state_it == session_states_.end() ? sid_->fsm->initial : state_it->second;
    transition = sid_->fsm->find(state, operation);
    if (transition == nullptr) {
      rejections_.fetch_add(1, std::memory_order_relaxed);
      throw ProtocolError("operation '" + operation +
                              "' is not allowed in communication state '" +
                              state + "'",
                          state, operation);
    }
  }

  wire::Value result = it->second(args);

  dispatches_.fetch_add(1, std::memory_order_relaxed);
  if (transition != nullptr) {
    std::lock_guard lock(mutex_);
    session_states_[session] = transition->to;
  }
  return result;
}

std::string ServiceObject::session_state(const std::string& session) const {
  std::lock_guard lock(mutex_);
  auto it = session_states_.find(session);
  if (it != session_states_.end()) return it->second;
  return sid_->fsm ? sid_->fsm->initial : "";
}

void ServiceObject::reset_session(const std::string& session) {
  std::lock_guard lock(mutex_);
  session_states_.erase(session);
}

bool ServiceObject::implements(const std::string& operation) const {
  return handlers_.count(operation) > 0;
}

}  // namespace cosm::rpc
