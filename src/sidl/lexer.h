// SIDL tokenizer.
//
// Produces the full token stream for a SIDL compilation unit.  Tokens carry
// byte offsets into the source so the parser can capture the verbatim text
// of unknown extension modules (the skip-and-preserve rule of §4.1).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cosm::sidl {

enum class TokKind {
  Ident,
  IntLit,
  FloatLit,
  StringLit,
  LBrace,    // {
  RBrace,    // }
  LParen,    // (
  RParen,    // )
  LBracket,  // [
  RBracket,  // ]
  LAngle,    // <
  RAngle,    // >
  Semi,      // ;
  Comma,     // ,
  Equals,    // =
  Minus,     // -  (only in numeric literal contexts; kept for robustness)
  End,
};

std::string to_string(TokKind kind);

struct Token {
  TokKind kind;
  std::string text;   // identifier text, literal spelling (unquoted for strings)
  int line = 1;
  int column = 1;
  std::size_t begin = 0;  // byte offset of first char
  std::size_t end = 0;    // byte offset one past last char
};

/// Tokenize SIDL source.  Handles // and /* */ comments.  Throws
/// cosm::ParseError on malformed input (unterminated string/comment,
/// unexpected character).
std::vector<Token> tokenize(std::string_view source);

}  // namespace cosm::sidl
