#include "trader/service_type.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosm::trader {
namespace {

using sidl::TypeDesc;
using wire::Value;

ServiceType rental_type() {
  ServiceType t;
  t.name = "CarRentalService";
  t.attributes = {
      {"CarModel", TypeDesc::enum_("CarModel_t", {"AUDI", "FIAT_Uno"}), true},
      {"ChargePerDay", TypeDesc::float_(), true},
      {"Notes", TypeDesc::string_(), false},
  };
  return t;
}

AttrMap good_attrs() {
  return {{"CarModel", Value::enumerated("CarModel_t", "AUDI")},
          {"ChargePerDay", Value::real(80.0)}};
}

TEST(ServiceTypeManager, AddAndGet) {
  ServiceTypeManager m;
  m.add(rental_type());
  EXPECT_TRUE(m.has("CarRentalService"));
  EXPECT_EQ(m.get("CarRentalService").attributes.size(), 3u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(ServiceTypeManager, DuplicateAndBadTypesRejected) {
  ServiceTypeManager m;
  m.add(rental_type());
  EXPECT_THROW(m.add(rental_type()), ContractError);
  ServiceType anon;
  EXPECT_THROW(m.add(anon), ContractError);
  ServiceType null_attr;
  null_attr.name = "X";
  null_attr.attributes = {{"a", nullptr, true}};
  EXPECT_THROW(m.add(null_attr), ContractError);
}

TEST(ServiceTypeManager, UnknownSupertypeRejected) {
  ServiceTypeManager m;
  ServiceType sub;
  sub.name = "LuxuryRental";
  sub.supertype = "CarRentalService";
  EXPECT_THROW(m.add(sub), ContractError);
  m.add(rental_type());
  EXPECT_NO_THROW(m.add(sub));
}

TEST(ServiceTypeManager, RemoveGuardsDerivedTypes) {
  ServiceTypeManager m;
  m.add(rental_type());
  ServiceType sub;
  sub.name = "LuxuryRental";
  sub.supertype = "CarRentalService";
  m.add(sub);
  EXPECT_THROW(m.remove("CarRentalService"), ContractError);
  m.remove("LuxuryRental");
  EXPECT_NO_THROW(m.remove("CarRentalService"));
  EXPECT_THROW(m.remove("CarRentalService"), NotFound);
}

TEST(ServiceTypeManager, SubtypeChainQueries) {
  ServiceTypeManager m;
  m.add(rental_type());
  ServiceType mid;
  mid.name = "LuxuryRental";
  mid.supertype = "CarRentalService";
  m.add(mid);
  ServiceType leaf;
  leaf.name = "ChauffeuredRental";
  leaf.supertype = "LuxuryRental";
  m.add(leaf);

  EXPECT_TRUE(m.is_subtype("ChauffeuredRental", "CarRentalService"));
  EXPECT_TRUE(m.is_subtype("CarRentalService", "CarRentalService"));
  EXPECT_FALSE(m.is_subtype("CarRentalService", "LuxuryRental"));
  EXPECT_FALSE(m.is_subtype("Unknown", "CarRentalService"));

  auto subs = m.subtypes_of("CarRentalService");
  EXPECT_EQ(subs.size(), 3u);
  EXPECT_EQ(m.subtypes_of("ChauffeuredRental").size(), 1u);
}

TEST(ServiceTypeManager, SubtypeClosureMemoizedAndInvalidated) {
  ServiceTypeManager m;
  m.add(rental_type());

  SubtypeClosurePtr first = m.subtype_closure("CarRentalService");
  EXPECT_EQ(first->types, std::vector<std::string>{"CarRentalService"});
  EXPECT_EQ(m.closure_builds(), 1u);
  EXPECT_EQ(m.subtype_closure("CarRentalService"), first);  // memoized object
  EXPECT_GE(m.closure_hits(), 1u);

  // Registration invalidates: the closure is rebuilt and sees the new type.
  ServiceType sub;
  sub.name = "LuxuryRental";
  sub.supertype = "CarRentalService";
  m.add(sub);
  SubtypeClosurePtr rebuilt = m.subtype_closure("CarRentalService");
  EXPECT_NE(rebuilt, first);
  EXPECT_EQ(m.closure_builds(), 2u);
  EXPECT_TRUE(rebuilt->members.count("LuxuryRental"));
  // The old closure still describes the graph as of its build (immutable).
  EXPECT_FALSE(first->members.count("LuxuryRental"));

  // is_subtype is served from the memoized closure: no further builds.
  std::uint64_t builds = m.closure_builds();
  EXPECT_TRUE(m.is_subtype("LuxuryRental", "CarRentalService"));
  EXPECT_TRUE(m.is_subtype("LuxuryRental", "CarRentalService"));
  EXPECT_EQ(m.closure_builds(), builds);

  // Removal invalidates too.
  m.remove("LuxuryRental");
  SubtypeClosurePtr after_remove = m.subtype_closure("CarRentalService");
  EXPECT_FALSE(after_remove->members.count("LuxuryRental"));
  EXPECT_FALSE(m.is_subtype("LuxuryRental", "CarRentalService"));
}

TEST(ServiceTypeManager, CheckOfferAcceptsConforming) {
  ServiceTypeManager m;
  m.add(rental_type());
  EXPECT_NO_THROW(m.check_offer("CarRentalService", good_attrs()));
  // Optional attribute may be present too.
  AttrMap with_notes = good_attrs();
  with_notes["Notes"] = Value::string("weekend special");
  EXPECT_NO_THROW(m.check_offer("CarRentalService", with_notes));
}

TEST(ServiceTypeManager, CheckOfferMissingRequired) {
  ServiceTypeManager m;
  m.add(rental_type());
  AttrMap attrs = good_attrs();
  attrs.erase("ChargePerDay");
  EXPECT_THROW(m.check_offer("CarRentalService", attrs), TypeError);
}

TEST(ServiceTypeManager, CheckOfferOptionalMayBeAbsent) {
  ServiceTypeManager m;
  m.add(rental_type());
  EXPECT_NO_THROW(m.check_offer("CarRentalService", good_attrs()));
}

TEST(ServiceTypeManager, CheckOfferWrongValueType) {
  ServiceTypeManager m;
  m.add(rental_type());
  AttrMap attrs = good_attrs();
  attrs["ChargePerDay"] = Value::string("eighty");
  EXPECT_THROW(m.check_offer("CarRentalService", attrs), TypeError);
}

TEST(ServiceTypeManager, CheckOfferUndeclaredLabel) {
  ServiceTypeManager m;
  m.add(rental_type());
  AttrMap attrs = good_attrs();
  attrs["CarModel"] = Value::enumerated("CarModel_t", "TRABANT");
  EXPECT_THROW(m.check_offer("CarRentalService", attrs), TypeError);
}

TEST(ServiceTypeManager, CheckOfferUndeclaredAttributeRejected) {
  ServiceTypeManager m;
  m.add(rental_type());
  AttrMap attrs = good_attrs();
  attrs["Bogus"] = Value::integer(1);
  EXPECT_THROW(m.check_offer("CarRentalService", attrs), TypeError);
}

TEST(ServiceTypeManager, SubtypeInheritsBaseSchema) {
  ServiceTypeManager m;
  m.add(rental_type());
  ServiceType sub;
  sub.name = "LuxuryRental";
  sub.supertype = "CarRentalService";
  sub.attributes = {{"Chauffeur", TypeDesc::bool_(), true}};
  m.add(sub);

  AttrMap attrs = good_attrs();
  attrs["Chauffeur"] = Value::boolean(true);
  EXPECT_NO_THROW(m.check_offer("LuxuryRental", attrs));
  // Base attribute still required for the subtype.
  attrs.erase("ChargePerDay");
  EXPECT_THROW(m.check_offer("LuxuryRental", attrs), TypeError);
}

TEST(ServiceTypeManager, CheckOfferUnknownType) {
  ServiceTypeManager m;
  EXPECT_THROW(m.check_offer("Ghost", {}), NotFound);
}

TEST(ServiceType, FindAttribute) {
  ServiceType t = rental_type();
  ASSERT_NE(t.find_attribute("CarModel"), nullptr);
  EXPECT_FALSE(t.find_attribute("CarModel")->type->labels().empty());
  EXPECT_EQ(t.find_attribute("Ghost"), nullptr);
}

TEST(Attributes, WireRoundTrip) {
  AttrMap attrs = good_attrs();
  attrs["Notes"] = Value::string("x");
  EXPECT_EQ(attrs_from_value(attrs_to_value(attrs)), attrs);
  EXPECT_EQ(attrs_from_value(attrs_to_value({})), AttrMap{});
}

}  // namespace
}  // namespace cosm::trader
