# Empty dependencies file for cosm_wire.
# This may be replaced when dependencies are built.
