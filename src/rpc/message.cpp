#include "rpc/message.h"

#include "common/error.h"

namespace cosm::rpc {

std::string to_string(MsgType type) {
  switch (type) {
    case MsgType::Request: return "request";
    case MsgType::Response: return "response";
    case MsgType::Fault: return "fault";
  }
  return "?";
}

Bytes Message::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.varint(request_id);
  w.str(target);
  w.str(operation);
  w.str(session);
  w.varint(deadline_ms);
  // Biased by one so "unlimited" (-1) encodes as 0 in an unsigned varint.
  w.varint(static_cast<std::uint64_t>(hop_budget + 1));
  w.varint(trace_id);
  w.varint(parent_span_id);
  w.varint(body.size());
  w.raw(body);
  w.str(fault);
  return w.take();
}

Message Message::decode(const Bytes& frame) {
  ByteReader r(frame);
  Message m;
  std::uint8_t t = r.u8();
  if (t > static_cast<std::uint8_t>(MsgType::Fault)) {
    throw WireError("invalid message type " + std::to_string(t));
  }
  m.type = static_cast<MsgType>(t);
  m.request_id = r.varint();
  m.target = r.str();
  m.operation = r.str();
  m.session = r.str();
  m.deadline_ms = r.varint();
  m.hop_budget = static_cast<std::int32_t>(r.varint()) - 1;
  m.trace_id = r.varint();
  m.parent_span_id = r.varint();
  std::uint64_t n = r.varint();
  m.body = r.raw(n);
  m.fault = r.str();
  if (!r.at_end()) throw WireError("trailing bytes after message");
  return m;
}

Message Message::request(std::uint64_t id, std::string target, std::string op,
                         Bytes body) {
  Message m;
  m.type = MsgType::Request;
  m.request_id = id;
  m.target = std::move(target);
  m.operation = std::move(op);
  m.body = std::move(body);
  return m;
}

Message Message::response(std::uint64_t id, Bytes body) {
  Message m;
  m.type = MsgType::Response;
  m.request_id = id;
  m.body = std::move(body);
  return m;
}

Message Message::make_fault(std::uint64_t id, std::string text) {
  Message m;
  m.type = MsgType::Fault;
  m.request_id = id;
  m.fault = std::move(text);
  return m;
}

}  // namespace cosm::rpc
