#include "rpc/replay_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.h"

namespace cosm::rpc {
namespace {

Bytes frame(std::uint8_t tag) { return Bytes{tag, tag, tag}; }

TEST(ReplayCache, ZeroCapacityRejected) {
  EXPECT_THROW(ReplayCache(0), ContractError);
}

TEST(ReplayCache, MissThenHit) {
  ReplayCache cache(4);
  Bytes out;
  EXPECT_EQ(ReplayCache::Lookup::Miss, cache.lookup({"s", 1}, &out));
  cache.insert({"s", 1}, frame(7));
  ASSERT_EQ(ReplayCache::Lookup::Hit, cache.lookup({"s", 1}, &out));
  EXPECT_EQ(out, frame(7));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReplayCache, EvictsLeastRecentlyUsedAtCapacity) {
  ReplayCache cache(3);
  cache.insert({"s", 1}, frame(1));
  cache.insert({"s", 2}, frame(2));
  cache.insert({"s", 3}, frame(3));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 0u);

  // A fourth entry pushes out the oldest (request 1).
  cache.insert({"s", 4}, frame(4));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  Bytes out;
  EXPECT_EQ(ReplayCache::Lookup::Miss, cache.lookup({"s", 1}, &out));
  EXPECT_EQ(ReplayCache::Lookup::Hit, cache.lookup({"s", 2}, &out));
  EXPECT_EQ(ReplayCache::Lookup::Hit, cache.lookup({"s", 4}, &out));
}

TEST(ReplayCache, LookupRefreshesRecency) {
  ReplayCache cache(2);
  cache.insert({"s", 1}, frame(1));
  cache.insert({"s", 2}, frame(2));
  // Touch 1 so 2 becomes the LRU entry...
  Bytes out;
  ASSERT_EQ(ReplayCache::Lookup::Hit, cache.lookup({"s", 1}, &out));
  cache.insert({"s", 3}, frame(3));
  // ...and is the one evicted.
  EXPECT_EQ(ReplayCache::Lookup::Hit, cache.lookup({"s", 1}, &out));
  EXPECT_EQ(ReplayCache::Lookup::Miss, cache.lookup({"s", 2}, &out));
  EXPECT_EQ(ReplayCache::Lookup::Hit, cache.lookup({"s", 3}, &out));
}

TEST(ReplayCache, DuplicateInsertKeepsOriginalResponse) {
  // At-most-once: a racing duplicate must not change the recorded answer —
  // and the suppression is counted, so the save is observable.
  ReplayCache cache(4);
  EXPECT_EQ(cache.duplicates_suppressed(), 0u);
  cache.insert({"s", 1}, frame(1));
  EXPECT_EQ(cache.duplicates_suppressed(), 0u);
  cache.insert({"s", 1}, frame(9));
  EXPECT_EQ(cache.duplicates_suppressed(), 1u);
  Bytes out;
  ASSERT_EQ(ReplayCache::Lookup::Hit, cache.lookup({"s", 1}, &out));
  EXPECT_EQ(out, frame(1));
  EXPECT_EQ(cache.size(), 1u);
  cache.insert({"s", 1}, frame(9));
  EXPECT_EQ(cache.duplicates_suppressed(), 2u);
}

TEST(ReplayCache, CountsHitsAndMisses) {
  ReplayCache cache(4);
  EXPECT_EQ(ReplayCache::Lookup::Miss, cache.lookup({"s", 1}, nullptr));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  cache.insert({"s", 1}, frame(1));
  EXPECT_EQ(ReplayCache::Lookup::Hit, cache.lookup({"s", 1}, nullptr));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ReplayCache, RecoveredMarksReportLostDuplicates) {
  // After a restart, the journal's high-water marks prove requests at or
  // below them executed — but their response frames are gone.  Those must
  // come back DuplicateLost (refuse), not Miss (re-execute).
  ReplayCache cache(4);
  cache.seed_marks({{"s", 5}});
  Bytes out;
  EXPECT_EQ(ReplayCache::Lookup::DuplicateLost, cache.lookup({"s", 3}, &out));
  EXPECT_EQ(ReplayCache::Lookup::DuplicateLost, cache.lookup({"s", 5}, &out));
  EXPECT_EQ(ReplayCache::Lookup::Miss, cache.lookup({"s", 6}, &out));
  EXPECT_EQ(ReplayCache::Lookup::Miss, cache.lookup({"other", 1}, &out));
  EXPECT_EQ(cache.duplicates_lost(), 2u);
  // A post-restart response cached under a marked id replays normally.
  cache.insert({"s", 6}, frame(6));
  EXPECT_EQ(ReplayCache::Lookup::Hit, cache.lookup({"s", 6}, &out));
  // Re-seeding keeps the highest mark per session.
  cache.seed_marks({{"s", 2}});
  EXPECT_EQ(ReplayCache::Lookup::DuplicateLost, cache.lookup({"s", 4}, &out));
}

TEST(ReplayCache, SessionsAreDistinct) {
  ReplayCache cache(4);
  cache.insert({"a", 1}, frame(1));
  cache.insert({"b", 1}, frame(2));
  Bytes out;
  ASSERT_EQ(ReplayCache::Lookup::Hit, cache.lookup({"a", 1}, &out));
  EXPECT_EQ(out, frame(1));
  ASSERT_EQ(ReplayCache::Lookup::Hit, cache.lookup({"b", 1}, &out));
  EXPECT_EQ(out, frame(2));
}

TEST(ReplayCache, ConcurrentInsertLookupStaysConsistent) {
  ReplayCache cache(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      std::string session = "s" + std::to_string(t);
      for (std::uint64_t i = 0; i < 500; ++i) {
        cache.insert({session, i}, frame(static_cast<std::uint8_t>(i)));
        Bytes out;
        if (cache.lookup({session, i}, &out) == ReplayCache::Lookup::Hit) {
          EXPECT_EQ(out, frame(static_cast<std::uint8_t>(i)));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(cache.size(), 64u);
  EXPECT_EQ(cache.evictions(), 4 * 500 - cache.size());
}

}  // namespace
}  // namespace cosm::rpc
