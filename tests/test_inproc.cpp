#include "rpc/inproc.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosm::rpc {
namespace {

TEST(InProc, ListenAndCall) {
  InProcNetwork net;
  std::string ep = net.listen("echo", [](const Bytes& b) { return b; });
  EXPECT_EQ(ep.rfind("inproc://", 0), 0u);
  Bytes payload = {1, 2, 3};
  EXPECT_EQ(net.call(ep, payload, std::chrono::milliseconds(100)), payload);
}

TEST(InProc, HintBecomesEndpointName) {
  InProcNetwork net;
  EXPECT_EQ(net.listen("myservice", [](const Bytes& b) { return b; }),
            "inproc://myservice");
}

TEST(InProc, DuplicateHintsGetUniqueEndpoints) {
  InProcNetwork net;
  auto e1 = net.listen("same", [](const Bytes& b) { return b; });
  auto e2 = net.listen("same", [](const Bytes& b) { return b; });
  EXPECT_NE(e1, e2);
}

TEST(InProc, UnknownEndpointThrows) {
  InProcNetwork net;
  EXPECT_THROW(net.call("inproc://ghost", {}, std::chrono::milliseconds(10)),
               RpcError);
}

TEST(InProc, UnlistenDisconnects) {
  InProcNetwork net;
  auto ep = net.listen("temp", [](const Bytes& b) { return b; });
  net.unlisten(ep);
  EXPECT_THROW(net.call(ep, {}, std::chrono::milliseconds(10)), RpcError);
}

TEST(InProc, NullHandlerRejected) {
  InProcNetwork net;
  EXPECT_THROW(net.listen("x", nullptr), ContractError);
}

TEST(InProc, CountsFramesAndBytes) {
  InProcNetwork net;
  auto ep = net.listen("count", [](const Bytes& b) { return b; });
  net.call(ep, {1, 2, 3}, std::chrono::milliseconds(10));
  net.call(ep, {4}, std::chrono::milliseconds(10));
  NetworkStats stats = net.stats();
  EXPECT_EQ(stats.frames, 2u);
  EXPECT_EQ(stats.bytes_in, 4u);
}

TEST(InProc, HandlersMayCallOtherEndpoints) {
  // Browsers call traders, converters call archives: reentrancy must work.
  InProcNetwork net;
  auto inner = net.listen("inner", [](const Bytes&) { return Bytes{9}; });
  auto outer = net.listen("outer", [&net, inner](const Bytes&) {
    return net.call(inner, {}, std::chrono::milliseconds(10));
  });
  EXPECT_EQ(net.call(outer, {}, std::chrono::milliseconds(10)), Bytes{9});
}

TEST(InProc, SimulatedLatencyIsApplied) {
  InProcOptions options;
  options.latency = std::chrono::microseconds(2000);
  InProcNetwork net(options);
  auto ep = net.listen("slow", [](const Bytes& b) { return b; });
  auto start = std::chrono::steady_clock::now();
  net.call(ep, {}, std::chrono::milliseconds(100));
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count(),
            1500);
}

TEST(InProc, SchemeIsInproc) {
  InProcNetwork net;
  EXPECT_EQ(net.scheme(), "inproc");
}

}  // namespace
}  // namespace cosm::rpc
