// Ablation A5: trading-cycle goodput under injected transport faults.
//
// The F1 trading cycle — trader import over a remote gateway, SID-transfer
// bind, dynamic invoke — runs over a FaultInjectingNetwork that drops and
// delays frames at a configurable rate, with and without the deadline-aware
// retry policy.  Expected shape: without retries the success rate decays
// roughly as (1-p)^calls-per-cycle; with jittered-backoff retries against an
// at-most-once server the cycle recovers nearly all of the fault-free
// success rate (the ISSUE acceptance bar: >= 90% at 5% faults), paying only
// a latency tax for the reissued attempts.

#include <chrono>
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "common/error.h"
#include "core/generic_client.h"
#include "rpc/fault_injection.h"
#include "rpc/inproc.h"
#include "rpc/retry.h"
#include "rpc/server.h"
#include "services/car_rental.h"
#include "sidl/parser.h"
#include "trader/facade.h"
#include "trader/sid_export.h"

using namespace cosm;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kCycles = 300;
constexpr auto kCycleDeadline = std::chrono::milliseconds(250);

struct Deployment {
  explicit Deployment(rpc::Network& net, rpc::RetryPolicy retry)
      : server(net, "host", at_most_once()), trader("trader") {
    trader.types().add(services::canonical_car_rental_type());
    for (int i = 0; i < 4; ++i) {
      services::CarRentalConfig config;
      config.name = "CarRental_" + std::to_string(i);
      config.tradable = true;
      auto ref = server.add(services::make_car_rental_service(config));
      auto sid = std::make_shared<sidl::Sid>(
          sidl::parse_sid(services::car_rental_sidl(config)));
      trader::export_sid_offer(trader, *sid, ref);
    }
    auto trader_ref = server.add(trader::make_trader_service(trader));
    gateway = std::make_unique<trader::RemoteTraderGateway>(net, trader_ref,
                                                            retry);
    core::GenericClientOptions client_options;
    client_options.timeout = kCycleDeadline;
    client_options.retry = retry;
    client_options.idempotent = true;  // the cycle only quotes, never books
    client = std::make_unique<core::GenericClient>(net, client_options);
  }

  static rpc::ServerOptions at_most_once() {
    rpc::ServerOptions o;
    o.at_most_once = true;
    return o;
  }

  rpc::RpcServer server;
  trader::Trader trader;
  std::unique_ptr<trader::RemoteTraderGateway> gateway;
  std::unique_ptr<core::GenericClient> client;
};

struct RunResult {
  int ok = 0;
  double seconds = 0;

  double success_rate() const { return static_cast<double>(ok) / kCycles; }
  double cycles_per_sec() const { return ok / seconds; }
};

/// One full trading cycle: import, bind to the chosen offer, invoke.
bool trading_cycle(Deployment& d, int cycle) {
  try {
    trader::ImportRequest request;
    request.service_type = services::car_rental_service_type_name();
    request.deadline = Clock::now() + kCycleDeadline;
    auto offers = d.gateway->import(request);
    if (offers.empty()) return false;
    core::Binding rental =
        d.client->bind(offers[cycle % offers.size()].ref);
    rental.invoke("ListModels", {});
    return true;
  } catch (const Error&) {
    return false;
  }
}

RunResult run(double fault_rate, bool with_retry) {
  rpc::InProcNetwork inner;
  rpc::FaultInjectingNetwork net(inner, 1994);

  rpc::RetryPolicy retry;  // disabled (max_attempts == 1)
  if (with_retry) {
    retry = rpc::RetryPolicy::standard();
    // Abandon a dropped request quickly instead of burning the whole
    // deadline waiting for a reply that will never come.
    retry.attempt_timeout = std::chrono::milliseconds(60);
  }
  Deployment d(net, retry);

  rpc::FaultProfile faults;
  faults.drop = fault_rate;
  faults.delay = fault_rate;
  faults.delay_for = std::chrono::milliseconds(2);
  net.set_default_profile(faults);

  RunResult result;
  auto start = Clock::now();
  for (int i = 0; i < kCycles; ++i) {
    if (trading_cycle(d, i)) ++result.ok;
  }
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace

int main() {
  std::cout << "A5: trading-cycle goodput under injected faults\n"
            << "  cycle = import (remote gateway) + bind (SID transfer) + "
               "invoke; " << kCycles << " cycles per cell\n"
            << "  fault profile: drop and delay each at the given rate; "
               "at-most-once server; retry = 3 attempts, jittered backoff\n\n";

  std::cout << "  " << std::left << std::setw(8) << "fault%" << std::setw(10)
            << "mode" << std::right << std::setw(10) << "ok" << std::setw(12)
            << "success%" << std::setw(12) << "cycles/s" << std::setw(12)
            << "recovery%" << "\n";

  const double rates[] = {0.0, 0.01, 0.05, 0.10};
  double baseline_retry = 1.0;
  double recovery_at_5 = 0.0;
  for (double rate : rates) {
    for (bool with_retry : {false, true}) {
      RunResult r = run(rate, with_retry);
      double recovery = 0.0;
      if (with_retry) {
        if (rate == 0.0) baseline_retry = r.success_rate();
        recovery = baseline_retry > 0 ? 100.0 * r.success_rate() / baseline_retry
                                      : 0.0;
        if (rate == 0.05) recovery_at_5 = recovery;
      }
      std::cout << "  " << std::left << std::setw(8) << std::fixed
                << std::setprecision(0) << rate * 100 << std::setw(10)
                << (with_retry ? "retry" : "none") << std::right
                << std::setw(7) << r.ok << "/" << kCycles << std::setw(12)
                << std::setprecision(1) << 100.0 * r.success_rate()
                << std::setw(12) << std::setprecision(0) << r.cycles_per_sec()
                << std::setw(12) << std::setprecision(1)
                << (with_retry ? recovery : 0.0) << "\n";
    }
  }

  std::cout << "\n  acceptance: retry at 5% faults recovers "
            << std::setprecision(1) << recovery_at_5
            << "% of the fault-free success rate (target >= 90%)\n";
  return recovery_at_5 >= 90.0 ? 0 : 1;
}
