#include "naming/name_server.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosm::naming {
namespace {

sidl::ServiceRef ref(const std::string& id) {
  return {id, "inproc://host", "I"};
}

TEST(NameServer, BindAndResolve) {
  NameServer ns;
  ns.bind_name("market/rental/hamburg", ref("svc-1"));
  EXPECT_EQ(ns.resolve("market/rental/hamburg").id, "svc-1");
  EXPECT_TRUE(ns.has("market/rental/hamburg"));
  EXPECT_FALSE(ns.has("market/rental/munich"));
}

TEST(NameServer, RebindReplaces) {
  NameServer ns;
  ns.bind_name("a", ref("svc-1"));
  ns.bind_name("a", ref("svc-2"));
  EXPECT_EQ(ns.resolve("a").id, "svc-2");
  EXPECT_EQ(ns.size(), 1u);
}

TEST(NameServer, ResolveUnboundThrows) {
  NameServer ns;
  EXPECT_THROW(ns.resolve("ghost"), NotFound);
}

TEST(NameServer, UnbindRemovesAndThrowsWhenAbsent) {
  NameServer ns;
  ns.bind_name("a", ref("svc-1"));
  ns.unbind_name("a");
  EXPECT_FALSE(ns.has("a"));
  EXPECT_THROW(ns.unbind_name("a"), NotFound);
}

TEST(NameServer, EmptyPathAndInvalidRefRejected) {
  NameServer ns;
  EXPECT_THROW(ns.bind_name("", ref("svc-1")), ContractError);
  EXPECT_THROW(ns.bind_name("a", sidl::ServiceRef{}), ContractError);
}

TEST(NameServer, ListByPrefix) {
  NameServer ns;
  ns.bind_name("cosm/trader", ref("t"));
  ns.bind_name("cosm/browser", ref("b"));
  ns.bind_name("market/rental", ref("m"));
  auto cosm_entries = ns.list("cosm/");
  ASSERT_EQ(cosm_entries.size(), 2u);
  EXPECT_EQ(cosm_entries[0].first, "cosm/browser");  // sorted
  EXPECT_EQ(cosm_entries[1].first, "cosm/trader");
  EXPECT_EQ(ns.list("").size(), 3u);
  EXPECT_TRUE(ns.list("zzz").empty());
}

TEST(NameServer, PrefixDoesNotMatchPartialOverruns) {
  NameServer ns;
  ns.bind_name("ab", ref("1"));
  ns.bind_name("abc", ref("2"));
  ns.bind_name("b", ref("3"));
  EXPECT_EQ(ns.list("ab").size(), 2u);
  EXPECT_EQ(ns.list("abc").size(), 1u);
}

}  // namespace
}  // namespace cosm::naming
