#include "core/generic_client.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "services/stock_quote.h"
#include "sidl/parser.h"

namespace cosm::core {
namespace {

using wire::Value;

class GenericClientTest : public ::testing::Test {
 protected:
  GenericClientTest() : server(net, "host"), client(net) {
    ticker_ref = server.add(services::make_stock_quote_service({}));
  }

  rpc::InProcNetwork net;
  rpc::RpcServer server;
  GenericClient client;
  sidl::ServiceRef ticker_ref;
};

TEST_F(GenericClientTest, BindTransfersSid) {
  Binding b = client.bind(ticker_ref);
  EXPECT_EQ(b.sid()->name, "TickerService");
  EXPECT_EQ(b.ref().id, ticker_ref.id);
  EXPECT_EQ(client.bindings_established(), 1u);
}

TEST_F(GenericClientTest, InitialFsmStateFromSid) {
  Binding b = client.bind(ticker_ref);
  EXPECT_EQ(b.state(), "LOGGED_OUT");
  EXPECT_EQ(b.allowed_operations(), std::vector<std::string>{"Login"});
  EXPECT_TRUE(b.allowed("Login"));
  EXPECT_FALSE(b.allowed("GetQuote"));
}

TEST_F(GenericClientTest, LocalFsmRejectionWithoutRpc) {
  Binding b = client.bind(ticker_ref);
  std::uint64_t frames_before = net.stats().frames;
  EXPECT_THROW(b.invoke("GetQuote", {Value::string("IBM")}), ProtocolError);
  // No RPC was issued — the rejection happened locally (§4.2).
  EXPECT_EQ(net.stats().frames, frames_before);
  EXPECT_EQ(b.local_rejections(), 1u);
}

TEST_F(GenericClientTest, FsmStateAdvancesOnSuccess) {
  Binding b = client.bind(ticker_ref);
  b.invoke("Login", {Value::string("user")});
  EXPECT_EQ(b.state(), "LOGGED_IN");
  Value quote = b.invoke("GetQuote", {Value::string("IBM")});
  EXPECT_GT(quote.at("price").as_real(), 0.0);
  EXPECT_EQ(b.state(), "LOGGED_IN");  // self-loop
  b.invoke("Logout", {});
  EXPECT_EQ(b.state(), "LOGGED_OUT");
  EXPECT_EQ(b.invocations(), 3u);
}

TEST_F(GenericClientTest, UnknownOperationRejectedLocally) {
  Binding b = client.bind(ticker_ref);
  EXPECT_THROW(b.invoke("Teleport", {}), NotFound);
}

TEST_F(GenericClientTest, ArgumentTypesValidatedLocally) {
  Binding b = client.bind(ticker_ref);
  std::uint64_t frames_before = net.stats().frames;
  EXPECT_THROW(b.invoke("Login", {Value::integer(42)}), TypeError);
  EXPECT_EQ(net.stats().frames, frames_before);
}

TEST_F(GenericClientTest, EnforcementOffGoesToServer) {
  GenericClientOptions options;
  options.enforce_fsm = false;
  GenericClient lax(net, options);
  Binding b = lax.bind(ticker_ref);
  std::uint64_t frames_before = net.stats().frames;
  // The call reaches the server, which rejects it there (defence in depth).
  EXPECT_THROW(b.invoke("GetQuote", {Value::string("IBM")}), RemoteFault);
  EXPECT_GT(net.stats().frames, frames_before);
  EXPECT_EQ(b.local_rejections(), 0u);
}

TEST_F(GenericClientTest, EnforcementOffStillMirrorsState) {
  GenericClientOptions options;
  options.enforce_fsm = false;
  GenericClient lax(net, options);
  Binding b = lax.bind(ticker_ref);
  b.invoke("Login", {Value::string("user")});
  EXPECT_EQ(b.state(), "LOGGED_IN");
}

TEST_F(GenericClientTest, SessionsAreIndependent) {
  Binding b1 = client.bind(ticker_ref);
  Binding b2 = client.bind(ticker_ref);
  b1.invoke("Login", {Value::string("a")});
  EXPECT_EQ(b1.state(), "LOGGED_IN");
  EXPECT_EQ(b2.state(), "LOGGED_OUT");
  EXPECT_THROW(b2.invoke("GetQuote", {Value::string("IBM")}), ProtocolError);
}

TEST_F(GenericClientTest, FormGenerationAndInvokeForm) {
  Binding b = client.bind(ticker_ref);
  uims::ServiceForm form = b.form();
  EXPECT_EQ(form.service, "TickerService");

  uims::FormEditor login = b.edit("Login");
  login.set("user", "mueller");
  EXPECT_TRUE(b.invoke_form(login).as_bool());

  uims::FormEditor quote = b.edit("GetQuote");
  quote.set("symbol", "IBM");
  Value q = b.invoke_form(quote);
  EXPECT_EQ(q.at("symbol").as_string(), "IBM");
}

TEST_F(GenericClientTest, BindFromResultValue) {
  // A service that hands out a reference to the ticker.
  auto directory_sid = std::make_shared<sidl::Sid>(sidl::parse_sid(
      "module Directory { interface I { ServiceReference Find([in] string n); }; };"));
  auto directory = std::make_shared<rpc::ServiceObject>(directory_sid);
  sidl::ServiceRef ticker = ticker_ref;
  directory->on("Find", [ticker](const std::vector<Value>&) {
    return Value::service_ref(ticker);
  });
  auto dir_ref = server.add(directory);

  Binding dir = client.bind(dir_ref);
  Value found = dir.invoke("Find", {Value::string("ticker")});
  Binding t = client.bind(found);  // Fig. 4 cascade
  EXPECT_EQ(t.sid()->name, "TickerService");
}

TEST_F(GenericClientTest, InvalidRefRejected) {
  EXPECT_THROW(client.bind(sidl::ServiceRef{}), ContractError);
}

TEST_F(GenericClientTest, DeadEndpointSurfacesRpcError) {
  sidl::ServiceRef dead{"x", "inproc://nowhere", "I"};
  EXPECT_THROW(client.bind(dead), RpcError);
}

TEST_F(GenericClientTest, ResultConformanceChecked) {
  // A service whose SID promises a long but whose handler returns a string:
  // the server-side conformance check turns this into a fault.
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid("module Liar { interface I { long Get(); }; };"));
  auto liar = std::make_shared<rpc::ServiceObject>(sid);
  liar->on("Get", [](const std::vector<Value>&) { return Value::string("lie"); });
  auto liar_ref = server.add(liar);
  Binding b = client.bind(liar_ref);
  EXPECT_THROW(b.invoke("Get", {}), RemoteFault);
}

}  // namespace
}  // namespace cosm::core
