// Construction-time knobs for the TCP transport.
//
// Every knob is fixed when the network is built — TcpNetwork keeps the
// bundle const — so there is no window in which callers race a
// half-configured transport.  The options ride on
// `core::RuntimeOptions::transport` so one options bundle configures the
// whole stack:
//
//   core::RuntimeOptions opts;
//   opts.transport.event_loop_threads = 4;
//   rpc::TcpNetwork net(opts.transport);   // honored at construction
//   core::CosmRuntime runtime(net, opts);

#pragma once

#include <cstddef>

#include "rpc/retry.h"

namespace cosm::rpc {

struct TransportOptions {
  /// Event-loop (reactor) threads owning all sockets.  Each loop runs its
  /// own epoll instance; connections are distributed round-robin.  Minimum
  /// 1.
  std::size_t event_loop_threads = 2;

  /// Worker threads dispatching decoded request frames to handlers
  /// (0 = auto, sized like rpc::Executor's default).  Server-side
  /// parallelism now comes from this pool, not from per-connection
  /// threads.
  std::size_t dispatch_workers = 0;

  /// Max pooled client connections per endpoint.  Beyond the cap, calls
  /// multiplex over the least-loaded pooled connection — correlation ids
  /// keep interleaved responses sorted, and the reactor server no longer
  /// head-of-line-blocks a shared socket, so a small pool carries many
  /// concurrent callers.  Minimum 1.
  std::size_t client_pool_cap = 8;

  /// Server-side backpressure: with this many frames of one connection
  /// dispatched but unanswered, the reactor stops reading from that socket
  /// (the kernel receive window then throttles the peer) until completions
  /// drain.  Minimum 1.
  std::size_t max_in_flight_per_connection = 256;

  /// Policy for *send* retries (dial + frame write).  A request that
  /// failed to reach the wire is always safe to reissue, so
  /// `only_idempotent` is ignored here; at-most-once for requests that did
  /// reach the server stays with the replay cache.
  RetryPolicy send_retry = RetryPolicy::transport();
};

}  // namespace cosm::rpc
