// Hand-written ("compiled-stub") codecs for the paper-era baseline.
//
// Before COSM, a client developer wrote per-service marshalling stubs from
// the service's published description (§3.1 "traditionally, service
// descriptions are used as an input for stub code generation").  These
// fixed-layout codecs for the CarRental messages are that baseline: they
// encode the same logical content as the dynamic marshaller but with all
// type knowledge compiled in.  Benchmark C3 compares the two.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace cosm::wire::static_stub {

enum class CarModel : std::uint8_t { AUDI = 0, FIAT_Uno = 1, VW_Golf = 2 };

struct SelectCarRequest {
  CarModel model = CarModel::AUDI;
  std::string booking_date;
  std::int64_t days = 0;

  bool operator==(const SelectCarRequest&) const = default;
};

struct SelectCarReply {
  bool available = false;
  double total_charge = 0.0;
  std::string offer_code;

  bool operator==(const SelectCarReply&) const = default;
};

struct BookCarRequest {
  std::string offer_code;
  std::string customer;
  std::vector<std::string> extras;

  bool operator==(const BookCarRequest&) const = default;
};

struct BookCarReply {
  bool confirmed = false;
  std::int64_t booking_id = 0;

  bool operator==(const BookCarReply&) const = default;
};

void encode(ByteWriter& w, const SelectCarRequest& m);
void encode(ByteWriter& w, const SelectCarReply& m);
void encode(ByteWriter& w, const BookCarRequest& m);
void encode(ByteWriter& w, const BookCarReply& m);

SelectCarRequest decode_select_car_request(ByteReader& r);
SelectCarReply decode_select_car_reply(ByteReader& r);
BookCarRequest decode_book_car_request(ByteReader& r);
BookCarReply decode_book_car_reply(ByteReader& r);

}  // namespace cosm::wire::static_stub
