#include "core/mediation.h"

#include <iterator>
#include <thread>

#include "common/error.h"

namespace cosm::core {

namespace {

std::vector<BrowseItem> items_from(const wire::Value& entries) {
  std::vector<BrowseItem> items;
  items.reserve(entries.elements().size());
  for (const wire::Value& e : entries.elements()) {
    items.push_back({e.at("name").as_string(), e.at("ref").as_ref()});
  }
  return items;
}

}  // namespace

MediationSession::MediationSession(GenericClient& client,
                                   const sidl::ServiceRef& browser_ref)
    : MediationSession(client, browser_ref, 0) {}

MediationSession::MediationSession(GenericClient& client,
                                   const sidl::ServiceRef& browser_ref,
                                   std::size_t depth)
    : client_(client), browser_(client.bind(browser_ref)), depth_(depth) {
  // A mediation session only makes sense against something browser-shaped.
  if (browser_.sid()->find_operation("List") == nullptr ||
      browser_.sid()->find_operation("Describe") == nullptr) {
    throw TypeError("service '" + browser_.sid()->name +
                    "' does not offer a browsing interface");
  }
}

std::vector<BrowseItem> MediationSession::browse() {
  return items_from(browser_.invoke("List", {}));
}

std::vector<BrowseItem> MediationSession::search(const std::string& keyword) {
  return items_from(browser_.invoke("Search", {wire::Value::string(keyword)}));
}

sidl::SidPtr MediationSession::describe(const std::string& entry_name) {
  return browser_.invoke("Describe", {wire::Value::string(entry_name)}).as_sid();
}

sidl::ServiceRef MediationSession::find_ref(const std::string& entry_name) {
  for (const auto& item : browse()) {
    if (item.name == entry_name) return item.ref;
  }
  throw NotFound("no browser entry named '" + entry_name + "'");
}

Binding MediationSession::select(const std::string& entry_name) {
  return client_.bind(find_ref(entry_name));
}

MediationSession MediationSession::enter(const std::string& entry_name) {
  return MediationSession(client_, find_ref(entry_name), depth_ + 1);
}

namespace {

/// Browser-shaped = offers the browsing operations a session needs.
bool browser_shaped(const sidl::Sid& sid) {
  return sid.find_operation("List") != nullptr &&
         sid.find_operation("Describe") != nullptr &&
         sid.find_operation("Search") != nullptr;
}

}  // namespace

void MediationSession::deep_search_into(const std::string& keyword,
                                        std::size_t remaining_depth,
                                        const std::string& prefix,
                                        std::mutex& visited_mutex,
                                        std::set<std::string>& visited,
                                        std::vector<DeepHit>& hits) {
  for (const auto& item : search(keyword)) {
    hits.push_back({prefix + item.name, item.ref});
  }
  if (remaining_depth == 0) return;

  // Claim every unvisited browser-shaped child in entry order *before* any
  // descent starts: claiming is the only shared-state mutation, so doing it
  // up front keeps which-subtree-owns-which-browser deterministic.  The
  // browse/describe calls run on this thread — a Binding is single-threaded.
  std::vector<BrowseItem> children;
  for (const auto& item : browse()) {
    {
      std::lock_guard lock(visited_mutex);
      if (!visited.insert(item.ref.id).second) continue;  // cycle / revisit
    }
    sidl::SidPtr entry_sid;
    try {
      entry_sid = describe(item.name);
    } catch (const Error&) {
      continue;  // entry vanished between browse and describe
    }
    if (!browser_shaped(*entry_sid)) continue;
    children.push_back(item);
  }
  if (children.empty()) return;

  // Descend into sibling subtrees in parallel, one session (and therefore
  // one binding) per thread; merge their hits in entry order.
  std::vector<std::vector<DeepHit>> child_hits(children.size());
  auto descend = [&](std::size_t i) {
    try {
      MediationSession nested(client_, children[i].ref, depth_ + 1);
      nested.deep_search_into(keyword, remaining_depth - 1,
                              prefix + children[i].name + "/", visited_mutex,
                              visited, child_hits[i]);
    } catch (const Error&) {
      // Unreachable cascaded browser: skip its subtree.
    }
  };
  if (children.size() == 1) {
    descend(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(children.size());
    for (std::size_t i = 0; i < children.size(); ++i) {
      threads.emplace_back(descend, i);
    }
    for (auto& t : threads) t.join();
  }
  for (auto& sub : child_hits) {
    hits.insert(hits.end(), std::make_move_iterator(sub.begin()),
                std::make_move_iterator(sub.end()));
  }
}

std::vector<DeepHit> MediationSession::deep_search(const std::string& keyword,
                                                   std::size_t max_depth) {
  std::vector<DeepHit> hits;
  std::mutex visited_mutex;
  std::set<std::string> visited;
  visited.insert(browser_.ref().id);
  deep_search_into(keyword, max_depth, "", visited_mutex, visited, hits);
  return hits;
}

}  // namespace cosm::core
