file(REMOVE_RECURSE
  "libcosm_services.a"
)
