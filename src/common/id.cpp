#include "common/id.h"

#include <atomic>

namespace cosm {

std::uint64_t next_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::string next_name(const std::string& prefix) {
  return prefix + "-" + std::to_string(next_id());
}

}  // namespace cosm
