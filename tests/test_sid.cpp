#include "sidl/sid.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sidl/parser.h"
#include "sidl/service_ref.h"

namespace cosm::sidl {
namespace {

Sid base_sid() {
  return parse_sid(R"(
    module Svc {
      typedef enum { A, B } E_t;
      typedef struct { long x; } In_t;
      typedef struct { string s; } Out_t;
      interface I {
        Out_t Op([in] In_t v);
        void Ping();
      };
    };
  )");
}

TEST(FsmSpec, FindAndAllowed) {
  FsmSpec fsm;
  fsm.states = {"S0", "S1"};
  fsm.initial = "S0";
  fsm.transitions = {{"S0", "go", "S1"}, {"S1", "go", "S1"}, {"S1", "stop", "S0"}};
  EXPECT_TRUE(fsm.has_state("S1"));
  EXPECT_FALSE(fsm.has_state("S9"));
  ASSERT_NE(fsm.find("S0", "go"), nullptr);
  EXPECT_EQ(fsm.find("S0", "go")->to, "S1");
  EXPECT_EQ(fsm.find("S0", "stop"), nullptr);
  auto allowed = fsm.allowed("S1");
  EXPECT_EQ(allowed.size(), 2u);
}

TEST(Sid, LookupsAndExtensionCount) {
  Sid sid = base_sid();
  EXPECT_NE(sid.find_operation("Op"), nullptr);
  EXPECT_EQ(sid.find_operation("Nope"), nullptr);
  EXPECT_TRUE(sid.find_type("E_t"));
  EXPECT_FALSE(sid.find_type("Nope_t"));
  EXPECT_EQ(sid.extension_count(), 0u);

  sid.annotations["Op"] = "x";
  sid.unknown_extensions.push_back({"X", " "});
  EXPECT_EQ(sid.extension_count(), 2u);
}

TEST(SidConformance, IdenticalSidsConform) {
  EXPECT_TRUE(conforms_to(base_sid(), base_sid()));
}

TEST(SidConformance, ExtraOperationsAllowed) {
  Sid sub = base_sid();
  sub.operations.push_back({"Extra", TypeDesc::void_(), {}});
  EXPECT_TRUE(conforms_to(sub, base_sid()));
  EXPECT_FALSE(conforms_to(base_sid(), sub));
}

TEST(SidConformance, MissingOperationBreaks) {
  Sid sub = base_sid();
  sub.operations.pop_back();
  EXPECT_FALSE(conforms_to(sub, base_sid()));
}

TEST(SidConformance, ExtensionsNeverBreakConformance) {
  Sid sub = base_sid();
  sub.fsm = FsmSpec{{"S"}, "S", {}};
  sub.trader_export = TraderExport{"T", {}};
  sub.annotations["Op"] = "note";
  sub.unknown_extensions.push_back({"X", "stuff"});
  EXPECT_TRUE(conforms_to(sub, base_sid()));
}

TEST(SidConformance, CovariantResult) {
  Sid base = base_sid();
  Sid sub = base_sid();
  // Sub returns a *wider* struct (extra field): still conforms.
  sub.types[2].second = TypeDesc::struct_(
      "Out_t", {{"s", TypeDesc::string_()}, {"extra", TypeDesc::int_()}});
  sub.operations[0].result = sub.types[2].second;
  EXPECT_TRUE(conforms_to(sub, base));
  // The other direction fails: base's result lacks the field.
  EXPECT_FALSE(conforms_to(base, sub));
}

TEST(SidConformance, ContravariantInParams) {
  Sid base = base_sid();
  Sid sub = base_sid();
  // Sub accepts a *narrower* requirement (fewer required fields): its
  // parameter type has fewer fields, so everything the base accepts
  // conforms to it.
  sub.types[1].second = TypeDesc::struct_("In_t", {});
  sub.operations[0].params[0].type = sub.types[1].second;
  EXPECT_TRUE(conforms_to(sub, base));
  EXPECT_FALSE(conforms_to(base, sub));
}

TEST(SidConformance, ParamCountMustMatch) {
  Sid sub = base_sid();
  sub.operations[0].params.push_back(
      {ParamDir::In, "extra", TypeDesc::int_()});
  EXPECT_FALSE(conforms_to(sub, base_sid()));
}

TEST(SidConformance, ParamDirectionMustMatch) {
  Sid sub = base_sid();
  sub.operations[0].params[0].dir = ParamDir::InOut;
  EXPECT_FALSE(conforms_to(sub, base_sid()));
}

TEST(SidConformance, MissingNamedTypeBreaks) {
  Sid sub = base_sid();
  sub.types.erase(sub.types.begin());  // drop E_t
  EXPECT_FALSE(conforms_to(sub, base_sid()));
}

TEST(TraderExport, FindAttribute) {
  TraderExport te;
  te.service_type = "T";
  te.attributes.emplace_back("Price", Literal(9.5));
  ASSERT_NE(te.find("Price"), nullptr);
  EXPECT_EQ(te.find("Missing"), nullptr);
}

TEST(ServiceRef, StringRoundTrip) {
  ServiceRef ref{"svc-1", "tcp://127.0.0.1:9000", "CarRentalService"};
  EXPECT_EQ(ServiceRef::from_string(ref.to_string()), ref);
  EXPECT_TRUE(ref.valid());
  EXPECT_FALSE(ServiceRef{}.valid());
}

TEST(ServiceRef, MalformedStringsThrow) {
  EXPECT_THROW(ServiceRef::from_string("no-pipes"), WireError);
  EXPECT_THROW(ServiceRef::from_string("one|pipe"), WireError);
}

TEST(ParamDir, ToString) {
  EXPECT_EQ(to_string(ParamDir::In), "in");
  EXPECT_EQ(to_string(ParamDir::Out), "out");
  EXPECT_EQ(to_string(ParamDir::InOut), "inout");
}

}  // namespace
}  // namespace cosm::sidl
