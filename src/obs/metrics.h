// Lock-cheap metrics registry (the observability pillar).
//
// Instruments are registered by name once and then updated through stable
// references with relaxed atomics — no lock is ever taken on a hot path.
// The registry's mutex guards only name->instrument registration and
// snapshot serialisation.  Three instrument kinds:
//   * Counter   — monotonically increasing u64 (resettable for benches);
//   * Gauge     — last-written i64 (pool sizes, quarantine flags, folded
//                 lifetime totals at snapshot time);
//   * Histogram — fixed power-of-two latency buckets in microseconds with
//                 approximate p50/p90/p99 read off the bucket bounds.
//
// The registry is process-global and *disabled by default*: every
// instrumentation site checks `metrics().enabled()` (one relaxed load)
// before touching an instrument or reading a clock, so the disabled-mode
// overhead is a branch per event — near-zero against an RPC round trip.
// Instrument references stay valid for the process lifetime; reset() zeroes
// values without invalidating them.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace cosm::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram.  Bucket i holds samples whose value in
/// microseconds is in [2^(i-1), 2^i); percentiles report the upper bound of
/// the bucket the quantile falls into, so they are exact to within 2x —
/// plenty for "which federation link is degrading" questions.
class Histogram {
 public:
  /// 1 us .. ~2^26 us (~67 s); larger samples land in the last bucket.
  static constexpr int kBuckets = 28;

  void record_us(std::uint64_t us) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum_us = 0;
    std::uint64_t max_us = 0;
    std::uint64_t p50_us = 0;
    std::uint64_t p90_us = 0;
    std::uint64_t p99_us = 0;
  };
  Snapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

class MetricsRegistry {
 public:
  /// The process-wide registry every instrumentation site uses.
  static MetricsRegistry& global();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Find-or-create by name; the returned reference is stable forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zero every registered instrument (references stay valid).
  void reset();

  /// Serialise all instruments: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum_us,max_us,p50_us,p90_us,p99_us}}}.
  std::string to_json() const;
  /// One instrument per line, for human eyes.
  std::string to_text() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for MetricsRegistry::global().
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

/// Microseconds elapsed since `start` (helper for latency instruments).
std::uint64_t elapsed_us(std::chrono::steady_clock::time_point start) noexcept;

}  // namespace cosm::obs
