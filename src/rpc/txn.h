// Transactional RPC: two-phase commit over service groups.
//
// Fig. 6 places a TP-Monitor and "Transactional RPC" in the architecture but
// the authors' prototype left them out; this is the future-work extension.
// A participant service mixes in _prepare/_commit/_abort handlers via
// TxnParticipant; the coordinator drives the classic 2PC protocol and the
// at-most-once replay cache in RpcServer keeps retried decisions idempotent.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "rpc/network.h"
#include "rpc/service_object.h"
#include "sidl/service_ref.h"

namespace cosm::rpc {

/// Participant-side transaction hooks.
struct TxnHooks {
  /// Vote: return true to vote commit.  Must leave the participant able to
  /// either commit or abort until the decision arrives.
  std::function<bool(const std::string& txn_id)> prepare;
  std::function<void(const std::string& txn_id)> commit;
  std::function<void(const std::string& txn_id)> abort;
};

/// Install _prepare/_commit/_abort handlers on a service object.  The
/// participant tracks per-transaction votes so a decision for an unknown or
/// already-finished transaction is ignored (idempotence).
void install_txn_participant(ServiceObject& object, TxnHooks hooks);

enum class TxnOutcome { Committed, Aborted };

std::string to_string(TxnOutcome outcome);

struct TxnReport {
  TxnOutcome outcome = TxnOutcome::Aborted;
  std::string txn_id;
  /// Participants that voted no / failed during prepare.
  std::vector<std::string> dissenters;
};

/// Two-phase-commit coordinator.
class TxnCoordinator {
 public:
  explicit TxnCoordinator(Network& network) : network_(network) {}

  /// Run one transaction across the participants.  Phase 1 collects votes
  /// with _prepare; if all vote yes, phase 2 sends _commit, else _abort.
  /// Transport failure during prepare counts as a no vote.
  TxnReport run(const std::vector<sidl::ServiceRef>& participants,
                const std::string& txn_id);

  std::uint64_t committed() const noexcept { return committed_; }
  std::uint64_t aborted() const noexcept { return aborted_; }

 private:
  Network& network_;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
};

}  // namespace cosm::rpc
