# Empty dependencies file for cosm_uims.
# This may be replaced when dependencies are built.
