#include "trader/facade.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "rpc/channel.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "sidl/parser.h"

namespace cosm::trader {
namespace {

using wire::Value;

Value attr(const std::string& name, Value v) {
  return Value::structure("Attribute_t",
                          {{"name", Value::string(name)}, {"value", std::move(v)}});
}

Value attr_def(const std::string& name, const std::string& spec, bool required) {
  return Value::structure("AttributeDef_t",
                          {{"name", Value::string(name)},
                           {"type_spec", Value::string(spec)},
                           {"required", Value::boolean(required)}});
}

class TraderFacadeTest : public ::testing::Test {
 protected:
  TraderFacadeTest() : server(net, "host") {
    trader_ref = server.add(make_trader_service(trader));
    channel = std::make_unique<rpc::RpcChannel>(net, trader_ref);
    // Management interface: register the service type over RPC.
    channel->call("AddType",
                  {Value::string("CarRentalService"), Value::string(""),
                   Value::sequence({attr_def("ChargePerDay", "double", true),
                                    attr_def("Notes", "string", false)})});
  }

  Value export_offer(const std::string& id, double charge) {
    sidl::ServiceRef ref{id, "inproc://provider", "CarRentalService"};
    return channel->call("Export",
                         {Value::string("CarRentalService"),
                          Value::service_ref(ref),
                          Value::sequence({attr("ChargePerDay", Value::real(charge))})});
  }

  rpc::InProcNetwork net;
  Trader trader{"t"};
  rpc::RpcServer server;
  sidl::ServiceRef trader_ref;
  std::unique_ptr<rpc::RpcChannel> channel;
};

TEST_F(TraderFacadeTest, SidlParsesAndDeclaresFullInterface) {
  sidl::Sid sid = sidl::parse_sid(trader_sidl());
  EXPECT_EQ(sid.name, "TraderService");
  for (const char* op : {"Export", "ExportBatch", "Withdraw", "WithdrawBatch",
                         "Modify", "ModifyBatch", "Import", "ListOffers",
                         "AddType", "RemoveType", "TypeNames"}) {
    EXPECT_NE(sid.find_operation(op), nullptr) << op;
  }
}

TEST_F(TraderFacadeTest, AddTypeRegisteredType) {
  EXPECT_TRUE(trader.types().has("CarRentalService"));
  Value names = channel->call("TypeNames", {});
  ASSERT_EQ(names.elements().size(), 1u);
  EXPECT_EQ(names.elements()[0].as_string(), "CarRentalService");
}

TEST_F(TraderFacadeTest, ExportImportRoundTrip) {
  export_offer("cheap", 40);
  export_offer("dear", 90);

  Value offers = channel->call(
      "Import", {Value::string("CarRentalService"),
                 Value::string("ChargePerDay < 50"), Value::string(""),
                 Value::integer(0), Value::integer(0)});
  ASSERT_EQ(offers.elements().size(), 1u);
  Offer offer = offer_from_value(offers.elements()[0]);
  EXPECT_EQ(offer.ref.id, "cheap");
  EXPECT_DOUBLE_EQ(offer.attributes.at("ChargePerDay").as_real(), 40.0);
}

TEST_F(TraderFacadeTest, WithdrawAndModifyOverRpc) {
  std::string id = export_offer("x", 70).as_string();
  channel->call("Modify",
                {Value::string(id),
                 Value::sequence({attr("ChargePerDay", Value::real(65))})});
  Value listed = channel->call("ListOffers", {Value::string("CarRentalService")});
  ASSERT_EQ(listed.elements().size(), 1u);
  EXPECT_DOUBLE_EQ(offer_from_value(listed.elements()[0])
                       .attributes.at("ChargePerDay")
                       .as_real(),
                   65.0);
  channel->call("Withdraw", {Value::string(id)});
  EXPECT_TRUE(channel->call("ListOffers", {Value::string("CarRentalService")})
                  .elements()
                  .empty());
}

TEST_F(TraderFacadeTest, ExportBatchOverRpc) {
  auto spec = [](const std::string& id, double charge) {
    sidl::ServiceRef ref{id, "inproc://provider", "CarRentalService"};
    return Value::structure(
        "OfferSpec_t",
        {{"ref", Value::service_ref(ref)},
         {"attributes",
          Value::sequence({attr("ChargePerDay", Value::real(charge))})},
         {"dynamics", Value::sequence({})}});
  };
  Value ids = channel->call(
      "ExportBatch", {Value::string("CarRentalService"),
                      Value::sequence({spec("a", 40), spec("b", 60),
                                       spec("c", 80)})});
  ASSERT_EQ(ids.elements().size(), 3u);
  Value listed = channel->call("ListOffers", {Value::string("CarRentalService")});
  EXPECT_EQ(listed.elements().size(), 3u);

  // All-or-nothing: one invalid spec (missing the required attribute)
  // fails the whole batch and registers none of it.
  Value bad = Value::structure(
      "OfferSpec_t",
      {{"ref", Value::service_ref({"d", "inproc://provider", "CarRentalService"})},
       {"attributes", Value::sequence({attr("Notes", Value::string("no price"))})},
       {"dynamics", Value::sequence({})}});
  EXPECT_THROW(channel->call("ExportBatch",
                             {Value::string("CarRentalService"),
                              Value::sequence({spec("ok", 10), bad})}),
               RemoteFault);
  EXPECT_EQ(channel->call("ListOffers", {Value::string("CarRentalService")})
                .elements()
                .size(),
            3u);
}

TEST_F(TraderFacadeTest, WithdrawBatchOverRpc) {
  std::string id1 = export_offer("w1", 10).as_string();
  std::string id2 = export_offer("w2", 20).as_string();
  // Unknown ids are skipped, not faulted: the count reports what happened.
  Value count = channel->call(
      "WithdrawBatch", {Value::sequence({Value::string(id1),
                                         Value::string("ghost"),
                                         Value::string(id2)})});
  EXPECT_EQ(count.as_int(), 2);
  EXPECT_TRUE(channel->call("ListOffers", {Value::string("CarRentalService")})
                  .elements()
                  .empty());
}

TEST_F(TraderFacadeTest, ModifyBatchOverRpc) {
  std::string id1 = export_offer("m1", 10).as_string();
  std::string id2 = export_offer("m2", 20).as_string();
  auto mod = [](const std::string& id, double charge) {
    return Value::structure(
        "OfferMod_t",
        {{"id", Value::string(id)},
         {"attributes",
          Value::sequence({attr("ChargePerDay", Value::real(charge))})}});
  };
  Value count = channel->call(
      "ModifyBatch",
      {Value::sequence({mod(id1, 11), mod("ghost", 99), mod(id2, 22)})});
  EXPECT_EQ(count.as_int(), 2);
  Value offers = channel->call(
      "Import", {Value::string("CarRentalService"),
                 Value::string("ChargePerDay > 10"), Value::string(""),
                 Value::integer(0), Value::integer(0)});
  EXPECT_EQ(offers.elements().size(), 2u);
}

TEST_F(TraderFacadeTest, RemoveTypeOverRpc) {
  channel->call("RemoveType", {Value::string("CarRentalService")});
  EXPECT_FALSE(trader.types().has("CarRentalService"));
}

TEST_F(TraderFacadeTest, NegativeLimitsRejected) {
  EXPECT_THROW(channel->call("Import", {Value::string("CarRentalService"),
                                        Value::string(""), Value::string(""),
                                        Value::integer(-1), Value::integer(0)}),
               RemoteFault);
}

TEST_F(TraderFacadeTest, ApplicationErrorsBecomeFaults) {
  EXPECT_THROW(channel->call("Withdraw", {Value::string("ghost")}), RemoteFault);
  EXPECT_THROW(channel->call("Import", {Value::string("GhostType"),
                                        Value::string(""), Value::string(""),
                                        Value::integer(0), Value::integer(0)}),
               RemoteFault);
}

TEST_F(TraderFacadeTest, OfferValueRoundTrip) {
  Offer offer;
  offer.id = "t/offer-1";
  offer.service_type = "CarRentalService";
  offer.ref = {"svc", "inproc://p", "CarRentalService"};
  offer.attributes = {{"ChargePerDay", Value::real(12.5)},
                      {"Tags", Value::sequence({Value::string("x")})}};
  EXPECT_EQ(offer_from_value(offer_to_value(offer)), offer);
}

}  // namespace
}  // namespace cosm::trader
