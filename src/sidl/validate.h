// SID well-formedness validation.
//
// Parsing guarantees syntactic shape; validation checks the cross-element
// rules: the FSM must reference declared states and real operations, trader
// attributes must be unique, parameter names must be unique per operation,
// annotations should point at existing elements.

#pragma once

#include <string>
#include <vector>

#include "sidl/sid.h"

namespace cosm::sidl {

/// All well-formedness violations found, as human-readable messages; empty
/// means the SID is valid.
std::vector<std::string> validate_sid(const Sid& sid);

/// Throws cosm::TypeError listing every violation if the SID is not valid.
void ensure_valid(const Sid& sid);

}  // namespace cosm::sidl
