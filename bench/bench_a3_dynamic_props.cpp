// Ablation A3: static-only vs dynamic-property matching.
//
// Dynamic properties buy freshness (live availability influences matching)
// at the cost of one exporter round trip per dynamic offer per import.
// Expected shape: import cost grows linearly with the number of dynamic
// offers evaluated; static offers cost the same as in C5; the staleness of
// the static design shows up as bookings against sold-out providers.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/runtime.h"
#include "rpc/inproc.h"
#include "sidl/parser.h"
#include "trader/trader.h"

namespace {

using namespace cosm;
using wire::Value;

struct Fleet {
  std::int64_t cars = 5;
};

struct World {
  explicit World(std::size_t providers, bool dynamic)
      : runtime(net) {
    trader::ServiceType type;
    type.name = "Rental";
    type.attributes = {{"ChargePerDay", sidl::TypeDesc::float_(), true},
                       {"CarsAvailable", sidl::TypeDesc::int_(), true}};
    runtime.trader().types().add(type);

    auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(
        "module Rental { interface I { long CurrentAvailability(); }; };"));
    for (std::size_t i = 0; i < providers; ++i) {
      auto fleet = std::make_shared<Fleet>();
      fleets.push_back(fleet);
      auto object = std::make_shared<rpc::ServiceObject>(sid);
      object->on("CurrentAvailability", [fleet](const std::vector<Value>&) {
        return Value::integer(fleet->cars);
      });
      auto ref = runtime.host(object);
      if (dynamic) {
        runtime.trader().export_offer(
            "Rental", ref,
            {{"ChargePerDay", Value::real(50.0 + static_cast<double>(i))}},
            {{"CarsAvailable", "CurrentAvailability"}});
      } else {
        // Static design: availability frozen at export time.
        runtime.trader().export_offer(
            "Rental", ref,
            {{"ChargePerDay", Value::real(50.0 + static_cast<double>(i))},
             {"CarsAvailable", Value::integer(fleet->cars)}});
      }
    }
  }

  rpc::InProcNetwork net;
  core::CosmRuntime runtime;
  std::vector<std::shared_ptr<Fleet>> fleets;
};

trader::ImportRequest available_request() {
  trader::ImportRequest request;
  request.service_type = "Rental";
  request.constraint = "CarsAvailable > 0";
  request.preference = "min ChargePerDay";
  return request;
}

void BM_ImportStaticProps(benchmark::State& state) {
  World world(static_cast<std::size_t>(state.range(0)), /*dynamic=*/false);
  auto request = available_request();
  for (auto _ : state) {
    auto offers = world.runtime.trader().import(request);
    benchmark::DoNotOptimize(offers);
  }
  state.counters["providers"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ImportStaticProps)->RangeMultiplier(4)->Range(1, 256);

void BM_ImportDynamicProps(benchmark::State& state) {
  World world(static_cast<std::size_t>(state.range(0)), /*dynamic=*/true);
  auto request = available_request();
  for (auto _ : state) {
    auto offers = world.runtime.trader().import(request);
    benchmark::DoNotOptimize(offers);
  }
  state.counters["providers"] = static_cast<double>(state.range(0));
  state.counters["fetches"] =
      static_cast<double>(world.runtime.trader().dynamic_fetches());
}
BENCHMARK(BM_ImportDynamicProps)->RangeMultiplier(4)->Range(1, 256);

void BM_StalenessOfStaticDesign(benchmark::State& state) {
  // Fleets empty out after export; the static trader keeps matching
  // sold-out providers, the dynamic one stops.  The counter reports how
  // many stale matches the static design returns.
  World static_world(16, false);
  World dynamic_world(16, true);
  for (auto& fleet : static_world.fleets) fleet->cars = 0;
  for (auto& fleet : dynamic_world.fleets) fleet->cars = 0;
  auto request = available_request();
  std::size_t stale = 0, fresh = 0;
  for (auto _ : state) {
    stale = static_world.runtime.trader().import(request).size();
    fresh = dynamic_world.runtime.trader().import(request).size();
  }
  state.counters["stale_matches_static"] = static_cast<double>(stale);
  state.counters["matches_dynamic"] = static_cast<double>(fresh);
}
BENCHMARK(BM_StalenessOfStaticDesign);

}  // namespace

BENCHMARK_MAIN();
