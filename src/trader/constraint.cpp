#include "trader/constraint.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <set>
#include <stdexcept>

#include "common/error.h"

namespace cosm::trader {

namespace detail {

enum class NodeKind { And, Or, Not, Exists, Cmp, In, True, False };
enum class CmpOp { Eq, Ne, Lt, Le, Gt, Ge };

/// One operand of a comparison: either a literal or an attribute name that
/// resolves at evaluation time (falling back to a label literal when the
/// attribute is absent everywhere).
struct Operand {
  enum class Kind { Ident, Int, Float, String };
  Kind kind = Kind::Ident;
  std::string text;   // Ident name or String payload
  std::int64_t i = 0;
  double f = 0.0;
};

struct Node {
  NodeKind kind;
  std::unique_ptr<Node> lhs;  // And/Or/Not
  std::unique_ptr<Node> rhs;  // And/Or
  std::string attr;           // Exists
  CmpOp op = CmpOp::Eq;       // Cmp
  Operand a, b;               // Cmp; `a` also the In subject
  std::vector<Operand> set;   // In members
};

namespace {

// ---- evaluation ----

/// Resolved operand value at evaluation time.
struct Resolved {
  enum class Kind { Missing, Number, Text, Boolean };
  Kind kind = Kind::Missing;
  double number = 0.0;
  std::string text;
  bool boolean = false;
};

Resolved resolve_value(const wire::Value& v) {
  using wire::ValueKind;
  Resolved r;
  switch (v.kind()) {
    case ValueKind::Int:
      r.kind = Resolved::Kind::Number;
      r.number = static_cast<double>(v.as_int());
      return r;
    case ValueKind::Float:
      r.kind = Resolved::Kind::Number;
      r.number = v.as_real();
      return r;
    case ValueKind::String:
      r.kind = Resolved::Kind::Text;
      r.text = v.as_string();
      return r;
    case ValueKind::Enum:
      // Enum values compare by label (so `Currency == USD` works).
      r.kind = Resolved::Kind::Text;
      r.text = v.enum_label();
      return r;
    case ValueKind::Bool:
      r.kind = Resolved::Kind::Boolean;
      r.boolean = v.as_bool();
      return r;
    default:
      return r;  // structured attributes are not comparable
  }
}

Resolved resolve_operand(const Operand& o, const AttrMap& attrs) {
  Resolved r;
  switch (o.kind) {
    case Operand::Kind::Int:
      r.kind = Resolved::Kind::Number;
      r.number = static_cast<double>(o.i);
      return r;
    case Operand::Kind::Float:
      r.kind = Resolved::Kind::Number;
      r.number = o.f;
      return r;
    case Operand::Kind::String:
      r.kind = Resolved::Kind::Text;
      r.text = o.text;
      return r;
    case Operand::Kind::Ident: {
      if (o.text == "true" || o.text == "false") {
        r.kind = Resolved::Kind::Boolean;
        r.boolean = o.text == "true";
        return r;
      }
      auto it = attrs.find(o.text);
      if (it != attrs.end()) return resolve_value(it->second);
      // Not an attribute of this offer: the identifier denotes itself
      // (enum label / symbolic constant).
      r.kind = Resolved::Kind::Text;
      r.text = o.text;
      return r;
    }
  }
  return r;
}

bool compare(CmpOp op, const Resolved& a, const Resolved& b) {
  if (a.kind == Resolved::Kind::Missing || b.kind == Resolved::Kind::Missing) {
    return false;
  }
  if (a.kind != b.kind) return false;
  int cmp;
  switch (a.kind) {
    case Resolved::Kind::Number:
      cmp = a.number < b.number ? -1 : (a.number > b.number ? 1 : 0);
      break;
    case Resolved::Kind::Text:
      cmp = a.text.compare(b.text) < 0 ? -1 : (a.text == b.text ? 0 : 1);
      break;
    case Resolved::Kind::Boolean:
      cmp = static_cast<int>(a.boolean) - static_cast<int>(b.boolean);
      break;
    default:
      return false;
  }
  switch (op) {
    case CmpOp::Eq: return cmp == 0;
    case CmpOp::Ne: return cmp != 0;
    case CmpOp::Lt: return cmp < 0;
    case CmpOp::Le: return cmp <= 0;
    case CmpOp::Gt: return cmp > 0;
    case CmpOp::Ge: return cmp >= 0;
  }
  return false;
}

bool eval_node(const Node& n, const AttrMap& attrs) {
  switch (n.kind) {
    case NodeKind::True: return true;
    case NodeKind::False: return false;
    case NodeKind::And: return eval_node(*n.lhs, attrs) && eval_node(*n.rhs, attrs);
    case NodeKind::Or: return eval_node(*n.lhs, attrs) || eval_node(*n.rhs, attrs);
    case NodeKind::Not: return !eval_node(*n.lhs, attrs);
    case NodeKind::Exists: return attrs.count(n.attr) > 0;
    case NodeKind::Cmp:
      return compare(n.op, resolve_operand(n.a, attrs), resolve_operand(n.b, attrs));
    case NodeKind::In: {
      Resolved subject = resolve_operand(n.a, attrs);
      for (const Operand& member : n.set) {
        if (compare(CmpOp::Eq, subject, resolve_operand(member, attrs))) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

void collect_attrs(const Node& n, std::set<std::string>& out) {
  switch (n.kind) {
    case NodeKind::And:
    case NodeKind::Or:
      collect_attrs(*n.lhs, out);
      collect_attrs(*n.rhs, out);
      return;
    case NodeKind::Not:
      collect_attrs(*n.lhs, out);
      return;
    case NodeKind::Exists:
      out.insert(n.attr);
      return;
    case NodeKind::Cmp:
      if (n.a.kind == Operand::Kind::Ident) out.insert(n.a.text);
      if (n.b.kind == Operand::Kind::Ident) out.insert(n.b.text);
      return;
    case NodeKind::In:
      if (n.a.kind == Operand::Kind::Ident) out.insert(n.a.text);
      for (const Operand& member : n.set) {
        if (member.kind == Operand::Kind::Ident) out.insert(member.text);
      }
      return;
    default:
      return;
  }
}

// ---- parsing ----

struct CTok {
  enum class Kind { Ident, Int, Float, String, AndAnd, OrOr, Not, LParen, RParen,
                    LBrace, RBrace, Comma, Eq, Ne, Lt, Le, Gt, Ge, End };
  Kind kind;
  std::string text;
  int column;
};

std::vector<CTok> lex(const std::string& s) {
  std::vector<CTok> toks;
  std::size_t i = 0;
  auto err = [&](const std::string& m) {
    throw ParseError("constraint: " + m, 1, static_cast<int>(i + 1));
  };
  while (i < s.size()) {
    char c = s[i];
    int col = static_cast<int>(i + 1);
    if (std::isspace(static_cast<unsigned char>(c))) { ++i; continue; }
    auto push = [&](CTok::Kind k, std::string text, std::size_t advance_by) {
      toks.push_back({k, std::move(text), col});
      i += advance_by;
    };
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < s.size() && (std::isalnum(static_cast<unsigned char>(s[j])) || s[j] == '_')) ++j;
      push(CTok::Kind::Ident, s.substr(i, j - i), j - i);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < s.size() &&
                std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
      std::size_t j = i + 1;
      bool is_float = false;
      while (j < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[j])) || s[j] == '.')) {
        if (s[j] == '.') is_float = true;
        ++j;
      }
      push(is_float ? CTok::Kind::Float : CTok::Kind::Int, s.substr(i, j - i), j - i);
    } else if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t j = i + 1;
      while (j < s.size() && s[j] != quote) ++j;
      if (j >= s.size()) err("unterminated string literal");
      push(CTok::Kind::String, s.substr(i + 1, j - i - 1), j - i + 1);
    } else if (c == '&' && i + 1 < s.size() && s[i + 1] == '&') {
      push(CTok::Kind::AndAnd, "&&", 2);
    } else if (c == '|' && i + 1 < s.size() && s[i + 1] == '|') {
      push(CTok::Kind::OrOr, "||", 2);
    } else if (c == '=' && i + 1 < s.size() && s[i + 1] == '=') {
      push(CTok::Kind::Eq, "==", 2);
    } else if (c == '!' && i + 1 < s.size() && s[i + 1] == '=') {
      push(CTok::Kind::Ne, "!=", 2);
    } else if (c == '<' && i + 1 < s.size() && s[i + 1] == '=') {
      push(CTok::Kind::Le, "<=", 2);
    } else if (c == '>' && i + 1 < s.size() && s[i + 1] == '=') {
      push(CTok::Kind::Ge, ">=", 2);
    } else if (c == '<') {
      push(CTok::Kind::Lt, "<", 1);
    } else if (c == '>') {
      push(CTok::Kind::Gt, ">", 1);
    } else if (c == '!') {
      push(CTok::Kind::Not, "!", 1);
    } else if (c == '(') {
      push(CTok::Kind::LParen, "(", 1);
    } else if (c == ')') {
      push(CTok::Kind::RParen, ")", 1);
    } else if (c == '{') {
      push(CTok::Kind::LBrace, "{", 1);
    } else if (c == '}') {
      push(CTok::Kind::RBrace, "}", 1);
    } else if (c == ',') {
      push(CTok::Kind::Comma, ",", 1);
    } else {
      err(std::string("unexpected character '") + c + "'");
    }
  }
  toks.push_back({CTok::Kind::End, "", static_cast<int>(s.size() + 1)});
  return toks;
}

class ConstraintParser {
 public:
  explicit ConstraintParser(std::vector<CTok> toks) : toks_(std::move(toks)) {}

  std::unique_ptr<Node> parse() {
    auto node = parse_or();
    if (!at(CTok::Kind::End)) fail("trailing input after expression");
    return node;
  }

 private:
  const CTok& peek() const { return toks_[pos_]; }
  bool at(CTok::Kind k) const { return peek().kind == k; }
  const CTok& advance() { return toks_[pos_ == toks_.size() - 1 ? pos_ : pos_++]; }
  bool accept(CTok::Kind k) {
    if (at(k)) { advance(); return true; }
    return false;
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("constraint: " + msg, 1, peek().column);
  }

  std::unique_ptr<Node> parse_or() {
    auto lhs = parse_and();
    while (accept(CTok::Kind::OrOr)) {
      auto node = std::make_unique<Node>();
      node->kind = NodeKind::Or;
      node->lhs = std::move(lhs);
      node->rhs = parse_and();
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Node> parse_and() {
    auto lhs = parse_unary();
    while (accept(CTok::Kind::AndAnd)) {
      auto node = std::make_unique<Node>();
      node->kind = NodeKind::And;
      node->lhs = std::move(lhs);
      node->rhs = parse_unary();
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Node> parse_unary() {
    if (accept(CTok::Kind::Not)) {
      auto node = std::make_unique<Node>();
      node->kind = NodeKind::Not;
      node->lhs = parse_unary();
      return node;
    }
    return parse_primary();
  }

  std::unique_ptr<Node> parse_primary() {
    if (accept(CTok::Kind::LParen)) {
      auto node = parse_or();
      if (!accept(CTok::Kind::RParen)) fail("expected ')'");
      return node;
    }
    if (at(CTok::Kind::Ident) && peek().text == "exists") {
      advance();
      if (!at(CTok::Kind::Ident)) fail("expected attribute name after 'exists'");
      auto node = std::make_unique<Node>();
      node->kind = NodeKind::Exists;
      node->attr = advance().text;
      return node;
    }
    // Bare true/false as a full expression.
    if (at(CTok::Kind::Ident) &&
        (peek().text == "true" || peek().text == "false") &&
        !is_cmp(toks_[pos_ + 1].kind)) {
      auto node = std::make_unique<Node>();
      node->kind = advance().text == "true" ? NodeKind::True : NodeKind::False;
      return node;
    }
    // Comparison or set membership.
    auto node = std::make_unique<Node>();
    node->a = parse_operand();
    if (at(CTok::Kind::Ident) && peek().text == "in") {
      advance();
      node->kind = NodeKind::In;
      if (!accept(CTok::Kind::LBrace)) fail("expected '{' after 'in'");
      if (at(CTok::Kind::RBrace)) fail("'in' set must not be empty");
      node->set.push_back(parse_operand());
      while (accept(CTok::Kind::Comma)) node->set.push_back(parse_operand());
      if (!accept(CTok::Kind::RBrace)) fail("expected '}' closing the 'in' set");
      return node;
    }
    node->kind = NodeKind::Cmp;
    switch (peek().kind) {
      case CTok::Kind::Eq: node->op = CmpOp::Eq; break;
      case CTok::Kind::Ne: node->op = CmpOp::Ne; break;
      case CTok::Kind::Lt: node->op = CmpOp::Lt; break;
      case CTok::Kind::Le: node->op = CmpOp::Le; break;
      case CTok::Kind::Gt: node->op = CmpOp::Gt; break;
      case CTok::Kind::Ge: node->op = CmpOp::Ge; break;
      default: fail("expected comparison operator");
    }
    advance();
    node->b = parse_operand();
    return node;
  }

  static bool is_cmp(CTok::Kind k) {
    return k == CTok::Kind::Eq || k == CTok::Kind::Ne || k == CTok::Kind::Lt ||
           k == CTok::Kind::Le || k == CTok::Kind::Gt || k == CTok::Kind::Ge;
  }

  Operand parse_operand() {
    Operand o;
    switch (peek().kind) {
      case CTok::Kind::Ident:
        o.kind = Operand::Kind::Ident;
        o.text = advance().text;
        return o;
      case CTok::Kind::Int:
        o.kind = Operand::Kind::Int;
        try {
          o.i = std::stoll(peek().text);
        } catch (const std::out_of_range&) {
          fail("integer literal out of range");
        }
        advance();
        return o;
      case CTok::Kind::Float:
        o.kind = Operand::Kind::Float;
        // strtod saturates (±HUGE_VAL on overflow, ~0 on underflow)
        // instead of throwing like std::stod — a 400-digit literal must
        // surface as an infinity, never a std::out_of_range escaping the
        // parser.  (The lexer has no exponent notation, but plain decimals
        // can still overflow a double.)
        o.f = std::strtod(peek().text.c_str(), nullptr);
        advance();
        return o;
      case CTok::Kind::String:
        o.kind = Operand::Kind::String;
        o.text = advance().text;
        return o;
      default:
        fail("expected attribute name or literal");
    }
  }

  std::vector<CTok> toks_;
  std::size_t pos_ = 0;
};

// ---- index-hint extraction ----

CmpOp flip_cmp(CmpOp op) {
  switch (op) {
    case CmpOp::Lt: return CmpOp::Gt;
    case CmpOp::Le: return CmpOp::Ge;
    case CmpOp::Gt: return CmpOp::Lt;
    case CmpOp::Ge: return CmpOp::Le;
    default: return op;  // Eq/Ne are symmetric
  }
}

/// Emit a hint for `subject op key` when the subject is an identifier and
/// the key is literal-ish.  Bare-identifier keys are emitted but flagged:
/// per-offer resolution could turn them into attribute reads, so the store
/// only uses them against buckets where the name is not a schema attribute.
void try_emit_hint(const Operand& subject, CmpOp op, const Operand& key,
                   std::vector<IndexHint>& out) {
  if (subject.kind != Operand::Kind::Ident) return;
  if (subject.text == "true" || subject.text == "false") return;
  IndexHint hint;
  hint.attr = subject.text;
  if (op == CmpOp::Eq) {
    hint.kind = IndexHint::Kind::Equality;
    switch (key.kind) {
      case Operand::Kind::Int:
        hint.key_kind = IndexHint::KeyKind::Number;
        hint.number = static_cast<double>(key.i);
        break;
      case Operand::Kind::Float:
        hint.key_kind = IndexHint::KeyKind::Number;
        hint.number = key.f;
        break;
      case Operand::Kind::String:
        hint.key_kind = IndexHint::KeyKind::Text;
        hint.text = key.text;
        break;
      case Operand::Kind::Ident:
        if (key.text == "true" || key.text == "false") {
          hint.key_kind = IndexHint::KeyKind::Boolean;
          hint.boolean = key.text == "true";
        } else {
          hint.key_kind = IndexHint::KeyKind::Text;
          hint.text = key.text;
          hint.text_is_bare_ident = true;
        }
        break;
    }
    out.push_back(std::move(hint));
    return;
  }
  // Range: only numeric literal bounds index exactly (an identifier bound
  // could resolve to another attribute per offer).
  if (op == CmpOp::Ne) return;
  if (key.kind != Operand::Kind::Int && key.kind != Operand::Kind::Float) return;
  hint.kind = IndexHint::Kind::Range;
  hint.number = key.kind == Operand::Kind::Int ? static_cast<double>(key.i) : key.f;
  switch (op) {
    case CmpOp::Lt: hint.bound = IndexHint::Bound::Lt; break;
    case CmpOp::Le: hint.bound = IndexHint::Bound::Le; break;
    case CmpOp::Gt: hint.bound = IndexHint::Bound::Gt; break;
    case CmpOp::Ge: hint.bound = IndexHint::Bound::Ge; break;
    default: return;
  }
  out.push_back(std::move(hint));
}

/// Walk the top-level AND spine only: a conjunct there must hold for the
/// whole expression to hold, so narrowing by it is exact.  Anything under
/// Or/Not must not narrow.
void collect_index_hints(const Node* n, std::vector<IndexHint>& out) {
  if (n == nullptr) return;
  if (n->kind == NodeKind::And) {
    collect_index_hints(n->lhs.get(), out);
    collect_index_hints(n->rhs.get(), out);
    return;
  }
  if (n->kind != NodeKind::Cmp) return;
  try_emit_hint(n->a, n->op, n->b, out);
  try_emit_hint(n->b, flip_cmp(n->op), n->a, out);
}

}  // namespace
}  // namespace detail

Constraint::Constraint() = default;
Constraint::~Constraint() = default;
Constraint::Constraint(Constraint&&) noexcept = default;
Constraint& Constraint::operator=(Constraint&&) noexcept = default;

Constraint Constraint::parse(const std::string& text) {
  Constraint c;
  c.text_ = text;
  bool blank = true;
  for (char ch : text) {
    if (!std::isspace(static_cast<unsigned char>(ch))) blank = false;
  }
  if (blank) return c;
  c.root_ = detail::ConstraintParser(detail::lex(text)).parse();
  detail::collect_index_hints(c.root_.get(), c.hints_);
  return c;
}

bool Constraint::eval(const AttrMap& attrs) const {
  return root_ == nullptr || detail::eval_node(*root_, attrs);
}

std::vector<std::string> Constraint::referenced_attributes() const {
  std::set<std::string> set;
  if (root_) detail::collect_attrs(*root_, set);
  return {set.begin(), set.end()};
}

ConstraintCache::ConstraintCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const Constraint> ConstraintCache::get(const std::string& text) {
  {
    std::lock_guard lock(mutex_);
    auto it = entries_.find(text);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.constraint;
    }
  }
  // Parse outside the lock: compilation is the expensive part, and two
  // threads racing on the same text just means one redundant parse.
  auto compiled = std::make_shared<const Constraint>(Constraint::parse(text));
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  if (capacity_ == 0) return compiled;
  auto it = entries_.find(text);
  if (it != entries_.end()) return it->second.constraint;  // lost the race
  lru_.push_front(text);
  entries_.emplace(text, Entry{compiled, lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  return compiled;
}

void ConstraintCache::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity;
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

std::size_t ConstraintCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace cosm::trader
