// Experiment C7: scored top-k selection via the constraint/scoring bytecode
// VM (trader/cexpr_vm.h) against the reference path (tree-walking
// evaluators, full materialisation, full sort).
//
// The trader is populated with N offers (default 1M) and imports run with a
// `score:` preference and max_matches = k for k in {1, 10, 100}, crossed
// with {none, selective} hard constraints and {vm, reference} engines.  The
// reference engine (TraderTuning::enable_selection_vm = false) evaluates
// constraint and score with the tree walkers, materialises every match and
// sorts the lot — the cost model a naive top-k pays.  The vm engine runs
// compiled bytecode under the store's indexes with a bounded heap and
// monotone score-bound pruning.  Both engines must return byte-identical
// offer id sequences; the harness checks this before timing.
//
// Writes BENCH_c7_topk.json and exits nonzero when the gate fails.
//
// Flags:
//   --offers=N            population size (default 1000000)
//   --out=FILE            JSON destination (default BENCH_c7_topk.json)
//   --gate-min-speedup=F  fail unless vm ops/s >= F x reference ops/s at
//                         k=10 on the selective constraint (0 disables)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "trader/trader.h"

namespace {

using namespace cosm;
using trader::AttrMap;
using wire::Value;

constexpr const char* kType = "CarRentalService";

struct Pref {
  const char* label;
  const char* text;
};
constexpr Pref kPrefs[] = {
    // Affine in one attribute: eligible for the ord-directed walk, which
    // scores ~k offers instead of every match when no planner selection
    // narrows the bucket first.
    {"affine", "score: -ChargePerDay"},
    // Two attributes: bytecode + bounded heap only (no index walk).
    {"weighted", "score: -ChargePerDay + AverageMilage / 80000"},
};

struct Query {
  const char* label;
  const char* constraint;
  std::size_t iterations;
};
constexpr Query kQueries[] = {
    // ~1% of the population: the planner narrows, then the engines diverge.
    {"selective", "ChargePerDay < 30 && ChargeCurrency == USD", 80},
    // Whole population: the ord-directed walk's best case.
    {"none", "", 5},
};

std::unique_ptr<trader::Trader> populated_trader(std::size_t offers) {
  auto t = std::make_unique<trader::Trader>("bench-c7");
  trader::ServiceType type;
  type.name = kType;
  type.attributes = {
      {"ChargePerDay", sidl::TypeDesc::float_(), true},
      {"AverageMilage", sidl::TypeDesc::int_(), true},
      {"ChargeCurrency", sidl::TypeDesc::string_(), true},
      {"Insured", sidl::TypeDesc::bool_(), true},
  };
  t->types().add(type);

  Rng rng(7);
  static const char* currencies[] = {"USD", "DEM", "FF", "SFR", "GBP"};
  constexpr std::size_t kBatch = 4096;
  for (std::size_t base = 0; base < offers; base += kBatch) {
    const std::size_t count = std::min(kBatch, offers - base);
    std::vector<trader::BatchOfferSpec> specs;
    specs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      trader::BatchOfferSpec spec;
      spec.ref = sidl::ServiceRef{"svc-" + std::to_string(base + i),
                                  "inproc://x", kType};
      spec.attributes = {
          {"ChargePerDay", Value::real(20.0 + rng.uniform() * 180.0)},
          {"AverageMilage", Value::integer(rng.range(1000, 80000))},
          {"ChargeCurrency", Value::string(currencies[rng.below(5)])},
          {"Insured", Value::boolean(rng.chance(0.5))},
      };
      specs.push_back(std::move(spec));
    }
    t->export_batch(kType, std::move(specs));
  }
  return t;
}

struct ModeResult {
  std::string query;
  std::string pref;
  std::size_t k = 0;
  std::string mode;
  std::size_t iterations = 0;
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::size_t matched = 0;
  double scored_per_import = 0.0;
  double pruned_per_import = 0.0;
};

double percentile(const std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

std::vector<std::string> ids_of(const std::vector<trader::Offer>& offers) {
  std::vector<std::string> ids;
  ids.reserve(offers.size());
  for (const auto& o : offers) ids.push_back(o.id);
  return ids;
}

ModeResult run_mode(trader::Trader& t, const Query& query, const Pref& pref,
                    std::size_t k, bool vm) {
  trader::TraderTuning tuning;
  tuning.enable_selection_vm = vm;
  t.set_tuning(tuning);
  trader::ImportRequest request;
  request.service_type = kType;
  request.constraint = query.constraint;
  request.preference = pref.text;
  request.max_matches = k;

  ModeResult result;
  result.query = query.label;
  result.pref = pref.label;
  result.k = k;
  result.mode = vm ? "vm" : "reference";
  result.iterations = query.iterations;
  result.matched = t.import(request).size();  // warm-up (caches, snapshot)

  t.reset_stats();
  std::vector<double> samples_us;
  samples_us.reserve(query.iterations);
  auto sweep_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < query.iterations; ++i) {
    auto start = std::chrono::steady_clock::now();
    auto matches = t.import(request);
    auto stop = std::chrono::steady_clock::now();
    if (matches.size() != result.matched) {
      std::fprintf(stderr, "[c7-topk] unstable match count\n");
    }
    samples_us.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  double total_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
          .count();

  std::sort(samples_us.begin(), samples_us.end());
  result.ops_per_sec = static_cast<double>(query.iterations) / total_sec;
  result.p50_us = percentile(samples_us, 0.50);
  result.p99_us = percentile(samples_us, 0.99);
  result.scored_per_import = static_cast<double>(t.offers_scored()) /
                             static_cast<double>(query.iterations);
  result.pruned_per_import = static_cast<double>(t.heap_prunes()) /
                             static_cast<double>(query.iterations);
  return result;
}

/// Both engines must agree exactly — offers and order — before any timing
/// is worth reporting.
bool verify_identical(trader::Trader& t, const Query& query, const Pref& pref,
                      std::size_t k) {
  trader::ImportRequest request;
  request.service_type = kType;
  request.constraint = query.constraint;
  request.preference = pref.text;
  request.max_matches = k;
  trader::TraderTuning tuning;
  tuning.enable_selection_vm = true;
  t.set_tuning(tuning);
  auto vm_ids = ids_of(t.import(request));
  tuning.enable_selection_vm = false;
  t.set_tuning(tuning);
  auto ref_ids = ids_of(t.import(request));
  if (vm_ids != ref_ids) {
    std::fprintf(stderr,
                 "[c7-topk] MISMATCH: query=%s pref=%s k=%zu vm=%zu ref=%zu offers\n",
                 query.label, pref.label, k, vm_ids.size(), ref_ids.size());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t offers = 1'000'000;
  std::string out_path = "BENCH_c7_topk.json";
  double gate_min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--offers=", 0) == 0) {
      offers = std::stoull(arg.substr(9));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--gate-min-speedup=", 0) == 0) {
      gate_min_speedup = std::stod(arg.substr(19));
    } else {
      std::fprintf(stderr, "[c7-topk] unknown flag %s\n", arg.c_str());
      return 1;
    }
  }

  std::fprintf(stderr, "[c7-topk] populating %zu offers...\n", offers);
  auto t = populated_trader(offers);

  const std::size_t ks[] = {1, 10, 100};
  std::vector<ModeResult> results;
  bool identical = true;
  double gate_speedup = 0.0;
  for (const Query& query : kQueries) {
    for (const Pref& pref : kPrefs) {
      for (std::size_t k : ks) {
        identical = verify_identical(*t, query, pref, k) && identical;
        // Reference first so the vm numbers cannot benefit from extra
        // warm-up.
        ModeResult ref = run_mode(*t, query, pref, k, /*vm=*/false);
        ModeResult vm = run_mode(*t, query, pref, k, /*vm=*/true);
        const double speedup = vm.ops_per_sec / ref.ops_per_sec;
        std::fprintf(stderr,
                     "[c7-topk] %-9s %-8s k=%3zu: reference %8.1f ops/s"
                     " (p50 %9.1f us)  vm %9.1f ops/s (p50 %9.1f us)"
                     "  speedup %5.1fx  scored/import %.0f"
                     "  pruned/import %.0f\n",
                     query.label, pref.label, k, ref.ops_per_sec, ref.p50_us,
                     vm.ops_per_sec, vm.p50_us, speedup, vm.scored_per_import,
                     vm.pruned_per_import);
        if (std::string(query.label) == "selective" &&
            std::string(pref.label) == "affine" && k == 10) {
          gate_speedup = speedup;
        }
        results.push_back(std::move(ref));
        results.push_back(std::move(vm));
      }
    }
  }

  bool passed = identical;
  if (!identical) {
    std::fprintf(stderr, "[c7-topk] GATE FAILED: engines disagree\n");
  }
  if (gate_min_speedup > 0.0 && gate_speedup < gate_min_speedup) {
    std::fprintf(stderr,
                 "[c7-topk] GATE FAILED: selective k=10 speedup %.2fx < %.2fx\n",
                 gate_speedup, gate_min_speedup);
    passed = false;
  } else if (gate_min_speedup > 0.0) {
    std::fprintf(stderr, "[c7-topk] gate passed: selective k=10 speedup %.2fx\n",
                 gate_speedup);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "[c7-topk] cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"experiment\": \"C7_topk_selection\",\n"
      << "  \"offers\": " << offers << ",\n"
      << "  \"preferences\": {";
  for (std::size_t i = 0; i < std::size(kPrefs); ++i) {
    out << (i ? ", " : "") << "\"" << kPrefs[i].label << "\": \""
        << kPrefs[i].text << "\"";
  }
  out << "},\n  \"constraints\": {";
  for (std::size_t i = 0; i < std::size(kQueries); ++i) {
    out << (i ? ", " : "") << "\"" << kQueries[i].label << "\": \""
        << kQueries[i].constraint << "\"";
  }
  out << "},\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    out << "    {\"query\": \"" << r.query << "\", \"pref\": \"" << r.pref
        << "\", \"k\": " << r.k
        << ", \"mode\": \"" << r.mode << "\", \"iterations\": " << r.iterations
        << ", \"ops_per_sec\": " << r.ops_per_sec << ", \"p50_us\": " << r.p50_us
        << ", \"p99_us\": " << r.p99_us << ", \"matched\": " << r.matched
        << ", \"scored_per_import\": " << r.scored_per_import
        << ", \"pruned_per_import\": " << r.pruned_per_import << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedup_vm_vs_reference\": {";
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    out << (i ? ", " : "") << "\"" << results[i].query << "/"
        << results[i].pref << "/k" << results[i].k
        << "\": " << results[i + 1].ops_per_sec / results[i].ops_per_sec;
  }
  out << "},\n  \"gates\": {\"min_speedup_selective_affine_k10\": " << gate_min_speedup
      << ", \"speedup_selective_affine_k10\": " << gate_speedup
      << ", \"identical_results\": " << (identical ? "true" : "false")
      << ", \"passed\": " << (passed ? "true" : "false") << "}\n}\n";
  std::fprintf(stderr, "[c7-topk] wrote %s\n", out_path.c_str());
  return passed ? 0 : 1;
}
