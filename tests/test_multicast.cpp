#include "rpc/multicast.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "sidl/parser.h"

namespace cosm::rpc {
namespace {

using wire::Value;

ServiceObjectPtr tagged_service(int tag) {
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid("module Member { interface I { long Tag(); long Boom(); }; };"));
  auto object = std::make_shared<ServiceObject>(sid);
  object->on("Tag", [tag](const std::vector<Value>&) { return Value::integer(tag); });
  object->on("Boom", [](const std::vector<Value>&) -> Value {
    throw RemoteFault("boom");
  });
  return object;
}

class MulticastTest : public ::testing::Test {
 protected:
  InProcNetwork net;
  RpcServer server{net, "host"};

  std::vector<sidl::ServiceRef> members(int n) {
    std::vector<sidl::ServiceRef> refs;
    for (int i = 0; i < n; ++i) refs.push_back(server.add(tagged_service(i)));
    return refs;
  }
};

TEST_F(MulticastTest, DeliversToAllMembersInOrder) {
  auto refs = members(4);
  auto outcomes = multicast_call(net, refs, "Tag", {});
  ASSERT_EQ(outcomes.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(outcomes[i].ok());
    EXPECT_EQ(outcomes[i].result->as_int(), i);
    EXPECT_EQ(outcomes[i].member, refs[i]);
  }
}

TEST_F(MulticastTest, EmptyGroupYieldsNoOutcomes) {
  EXPECT_TRUE(multicast_call(net, {}, "Tag", {}).empty());
}

TEST_F(MulticastTest, FailingMemberDoesNotAbortSweep) {
  auto refs = members(3);
  auto outcomes = multicast_call(net, refs, "Boom", {});
  ASSERT_EQ(outcomes.size(), 3u);
  for (const auto& o : outcomes) {
    EXPECT_FALSE(o.ok());
    EXPECT_NE(o.error.find("boom"), std::string::npos);
  }
}

TEST_F(MulticastTest, UnreachableMemberReportedNotFatal) {
  auto refs = members(2);
  refs.push_back(sidl::ServiceRef{"ghost", "inproc://nowhere", "Member"});
  auto outcomes = multicast_call(net, refs, "Tag", {});
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[1].ok());
  EXPECT_FALSE(outcomes[2].ok());
}

TEST_F(MulticastTest, QuorumStopsEarly) {
  auto refs = members(5);
  MulticastOptions options;
  options.quorum = 2;
  auto outcomes = multicast_call(net, refs, "Tag", {}, options);
  EXPECT_EQ(outcomes.size(), 2u);  // stopped after two successes
}

TEST_F(MulticastTest, QuorumCountsOnlySuccesses) {
  auto refs = members(2);
  // Prepend an unreachable member: quorum 2 must still contact 3 members.
  std::vector<sidl::ServiceRef> with_ghost = {
      sidl::ServiceRef{"ghost", "inproc://nowhere", "Member"}};
  with_ghost.insert(with_ghost.end(), refs.begin(), refs.end());
  MulticastOptions options;
  options.quorum = 2;
  auto outcomes = multicast_call(net, with_ghost, "Tag", {}, options);
  EXPECT_EQ(outcomes.size(), 3u);
  EXPECT_FALSE(outcomes[0].ok());
}

}  // namespace
}  // namespace cosm::rpc
