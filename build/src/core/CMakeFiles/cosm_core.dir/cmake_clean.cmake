file(REMOVE_RECURSE
  "CMakeFiles/cosm_core.dir/browser.cpp.o"
  "CMakeFiles/cosm_core.dir/browser.cpp.o.d"
  "CMakeFiles/cosm_core.dir/cost_meter.cpp.o"
  "CMakeFiles/cosm_core.dir/cost_meter.cpp.o.d"
  "CMakeFiles/cosm_core.dir/generic_client.cpp.o"
  "CMakeFiles/cosm_core.dir/generic_client.cpp.o.d"
  "CMakeFiles/cosm_core.dir/mediation.cpp.o"
  "CMakeFiles/cosm_core.dir/mediation.cpp.o.d"
  "CMakeFiles/cosm_core.dir/runtime.cpp.o"
  "CMakeFiles/cosm_core.dir/runtime.cpp.o.d"
  "libcosm_core.a"
  "libcosm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
