// Dynamic marshalling: TypeDesc-driven conformance checking + TLV encoding.
//
// "This idea allows not only a dynamic marshalling of transferred
// parameters, it also provides a prerequisite for a generic client
// component" (§3.1).  The DynamicMarshaller is constructed from a TypeDesc
// obtained out of a *transferred* SID — no compiled-in stubs — and
// validates every value against that description before encoding and after
// decoding.

#pragma once

#include <memory>
#include <string>

#include "common/bytes.h"
#include "sidl/sid.h"
#include "sidl/type_desc.h"
#include "wire/plan.h"
#include "wire/value.h"

namespace cosm::wire {

/// Does `value` conform to `type`?  Structs may carry extra fields (record
/// width subtyping, Fig. 2); enum values must use one of the declared
/// labels; enum/struct type names must match when both sides name them.
bool conforms(const Value& value, const sidl::TypeDesc& type);

/// Like conforms(), but explains the first violation found; throws
/// cosm::TypeError.
void ensure_conforms(const Value& value, const sidl::TypeDesc& type);

/// Marshaller for a single TypeDesc.  Compiles the type into a MarshalPlan
/// (plan.h) at construction; every call then runs the compiled program
/// instead of re-walking the description tree.
class DynamicMarshaller {
 public:
  explicit DynamicMarshaller(sidl::TypePtr type);

  /// Validate + encode.  Throws cosm::TypeError on non-conforming values.
  Bytes marshal(const Value& value) const;

  /// Validate + encode appended into an existing arena (zero-copy caller
  /// paths; rolled back on failure).
  void marshal_into(ByteWriter& writer, const Value& value) const;

  /// Decode + validate.  Throws cosm::WireError / cosm::TypeError.
  Value unmarshal(const Bytes& bytes) const;
  Value unmarshal(BytesView bytes) const;

  const sidl::TypePtr& type() const noexcept { return plan_.type(); }
  const MarshalPlan& plan() const noexcept { return plan_; }

 private:
  MarshalPlan plan_;
};

/// Marshal a full argument list against an operation signature (in/inout
/// parameters, positional).  Returns one encoded Sequence value.
Bytes marshal_arguments(const sidl::OperationDesc& op, const std::vector<Value>& args);

/// Inverse of marshal_arguments.
std::vector<Value> unmarshal_arguments(const sidl::OperationDesc& op, const Bytes& bytes);

/// Build a default-initialised value for a type: zero/empty scalars, the
/// first enum label, absent optionals, empty sequences, all-default struct
/// fields.  Used by UI form generation to seed editors.
Value default_value(const sidl::TypeDesc& type);

}  // namespace cosm::wire
