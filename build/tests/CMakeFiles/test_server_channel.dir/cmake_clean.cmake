file(REMOVE_RECURSE
  "CMakeFiles/test_server_channel.dir/test_server_channel.cpp.o"
  "CMakeFiles/test_server_channel.dir/test_server_channel.cpp.o.d"
  "test_server_channel"
  "test_server_channel.pdb"
  "test_server_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
