
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_editor.cpp" "tests/CMakeFiles/test_editor.dir/test_editor.cpp.o" "gcc" "tests/CMakeFiles/test_editor.dir/test_editor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/cosm_test_support.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/cosm_services.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cosm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trader/CMakeFiles/cosm_trader.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/cosm_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/uims/CMakeFiles/cosm_uims.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/cosm_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/cosm_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sidl/CMakeFiles/cosm_sidl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
