# Empty dependencies file for test_sidlc.
# This may be replaced when dependencies are built.
