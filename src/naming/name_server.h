// Name server (Fig. 6, Service Support Level).
//
// Maps hierarchical path names ("market/rental/hamburg") to service
// references.  Name binding is orthogonal to trading and mediation: names
// locate *well-known* infrastructure (the browser, the trader, the
// repository), while offers and SIDs describe the open service population.

#pragma once

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sidl/service_ref.h"

namespace cosm::naming {

class NameServer {
 public:
  /// Bind or rebind a name.  Path segments are separated by '/'.
  void bind_name(const std::string& path, sidl::ServiceRef ref);

  /// Remove a binding; throws cosm::NotFound when the name is unbound.
  void unbind_name(const std::string& path);

  /// Resolve a name; throws cosm::NotFound when unbound.
  sidl::ServiceRef resolve(const std::string& path) const;

  bool has(const std::string& path) const;

  /// All bindings under a prefix (inclusive), sorted by name.  An empty
  /// prefix lists everything.
  std::vector<std::pair<std::string, sidl::ServiceRef>> list(
      const std::string& prefix) const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, sidl::ServiceRef> bindings_;
};

}  // namespace cosm::naming
