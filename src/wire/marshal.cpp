#include "wire/marshal.h"

#include "common/error.h"
#include "wire/codec.h"

namespace cosm::wire {

using sidl::TypeDesc;
using sidl::TypeKind;

namespace {

/// Returns an empty string when conforming, else a description of the first
/// violation (path-prefixed).
std::string check(const Value& v, const TypeDesc& t, const std::string& path) {
  auto fail = [&](const std::string& msg) { return path + ": " + msg; };
  switch (t.kind()) {
    case TypeKind::Void:
      return v.is_null() ? "" : fail("expected void (null), got " + to_string(v.kind()));
    case TypeKind::Bool:
      return v.is(ValueKind::Bool) ? "" : fail("expected boolean, got " + to_string(v.kind()));
    case TypeKind::Int:
      return v.is(ValueKind::Int) ? "" : fail("expected long, got " + to_string(v.kind()));
    case TypeKind::Float:
      return v.is(ValueKind::Float) ? "" : fail("expected double, got " + to_string(v.kind()));
    case TypeKind::String:
      return v.is(ValueKind::String) ? "" : fail("expected string, got " + to_string(v.kind()));
    case TypeKind::ServiceRef:
      return v.is(ValueKind::ServiceRef) ? ""
             : fail("expected ServiceReference, got " + to_string(v.kind()));
    case TypeKind::Sid:
      return v.is(ValueKind::Sid) ? "" : fail("expected SID, got " + to_string(v.kind()));
    case TypeKind::Any:
      return "";  // the top type accepts every value
    case TypeKind::Enum: {
      if (!v.is(ValueKind::Enum)) return fail("expected enum, got " + to_string(v.kind()));
      if (!v.type_name().empty() && !t.name().empty() && v.type_name() != t.name()) {
        return fail("enum type mismatch: value is " + v.type_name() +
                    ", expected " + t.name());
      }
      if (t.label_index(v.enum_label()) < 0) {
        return fail("label '" + v.enum_label() + "' is not declared by enum " + t.name());
      }
      return "";
    }
    case TypeKind::Struct: {
      if (!v.is(ValueKind::Struct)) {
        return fail("expected struct, got " + to_string(v.kind()));
      }
      if (!v.type_name().empty() && !t.name().empty() && v.type_name() != t.name()) {
        // Allow structurally conforming values under a different name only
        // when one side is anonymous; named mismatches are errors.
        return fail("struct type mismatch: value is " + v.type_name() +
                    ", expected " + t.name());
      }
      for (const auto& f : t.fields()) {
        const Value* fv = v.find_field(f.name);
        if (!fv) return fail("missing field '" + f.name + "'");
        std::string err = check(*fv, *f.type, path + "." + f.name);
        if (!err.empty()) return err;
      }
      return "";  // extra value fields allowed: width subtyping
    }
    case TypeKind::Sequence: {
      if (!v.is(ValueKind::Sequence)) {
        return fail("expected sequence, got " + to_string(v.kind()));
      }
      std::size_t i = 0;
      for (const Value& e : v.elements()) {
        std::string err = check(e, *t.element(), path + "[" + std::to_string(i) + "]");
        if (!err.empty()) return err;
        ++i;
      }
      return "";
    }
    case TypeKind::Optional: {
      if (!v.is(ValueKind::Optional)) {
        return fail("expected optional, got " + to_string(v.kind()));
      }
      if (!v.has_payload()) return "";
      return check(v.payload(), *t.element(), path + ".value");
    }
  }
  return fail("unknown type kind");
}

}  // namespace

bool conforms(const Value& value, const TypeDesc& type) {
  return check(value, type, "$").empty();
}

void ensure_conforms(const Value& value, const TypeDesc& type) {
  std::string err = check(value, type, "$");
  if (!err.empty()) throw TypeError("value does not conform: " + err);
}

DynamicMarshaller::DynamicMarshaller(sidl::TypePtr type)
    : plan_(std::move(type)) {}  // MarshalPlan rejects a null type

Bytes DynamicMarshaller::marshal(const Value& value) const {
  return plan_.marshal(value);
}

void DynamicMarshaller::marshal_into(ByteWriter& writer, const Value& value) const {
  plan_.marshal_into(writer, value);
}

Value DynamicMarshaller::unmarshal(const Bytes& bytes) const {
  return plan_.unmarshal(bytes);
}

Value DynamicMarshaller::unmarshal(BytesView bytes) const {
  return plan_.unmarshal(bytes);
}

Bytes marshal_arguments(const sidl::OperationDesc& op, const std::vector<Value>& args) {
  std::size_t expected = 0;
  for (const auto& p : op.params) {
    if (p.dir != sidl::ParamDir::Out) ++expected;
  }
  if (args.size() != expected) {
    throw TypeError("operation '" + op.name + "' expects " +
                    std::to_string(expected) + " argument(s), got " +
                    std::to_string(args.size()));
  }
  std::size_t ai = 0;
  for (const auto& p : op.params) {
    if (p.dir == sidl::ParamDir::Out) continue;
    std::string err = check(args[ai], *p.type, "$." + p.name);
    if (!err.empty()) {
      throw TypeError("argument for '" + op.name + "' does not conform: " + err);
    }
    ++ai;
  }
  return encode_value(Value::sequence(args));
}

std::vector<Value> unmarshal_arguments(const sidl::OperationDesc& op, const Bytes& bytes) {
  Value v = decode_value(bytes);
  if (!v.is(ValueKind::Sequence)) {
    throw WireError("argument frame for '" + op.name + "' is not a sequence");
  }
  std::vector<Value> args = v.elements();
  std::size_t expected = 0;
  for (const auto& p : op.params) {
    if (p.dir != sidl::ParamDir::Out) ++expected;
  }
  if (args.size() != expected) {
    throw TypeError("operation '" + op.name + "' expects " +
                    std::to_string(expected) + " argument(s), got " +
                    std::to_string(args.size()));
  }
  std::size_t ai = 0;
  for (const auto& p : op.params) {
    if (p.dir == sidl::ParamDir::Out) continue;
    std::string err = check(args[ai], *p.type, "$." + p.name);
    if (!err.empty()) {
      throw TypeError("received argument for '" + op.name + "' does not conform: " + err);
    }
    ++ai;
  }
  return args;
}

Value default_value(const TypeDesc& t) {
  switch (t.kind()) {
    case TypeKind::Void: return Value::null();
    case TypeKind::Bool: return Value::boolean(false);
    case TypeKind::Int: return Value::integer(0);
    case TypeKind::Float: return Value::real(0.0);
    case TypeKind::String: return Value::string("");
    case TypeKind::Enum: return Value::enumerated(t.name(), t.labels().front());
    case TypeKind::Struct: {
      std::vector<std::pair<std::string, Value>> fields;
      fields.reserve(t.fields().size());
      for (const auto& f : t.fields()) {
        fields.emplace_back(f.name, default_value(*f.type));
      }
      return Value::structure(t.name(), std::move(fields));
    }
    case TypeKind::Sequence: return Value::sequence({});
    case TypeKind::Optional: return Value::optional_absent();
    case TypeKind::ServiceRef: return Value::service_ref({});
    case TypeKind::Sid:
      throw ContractError("no default value for SID-typed parameters");
    case TypeKind::Any:
      return Value::null();
  }
  throw ContractError("default_value: unknown type kind");
}

}  // namespace cosm::wire
