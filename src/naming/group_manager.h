// Group manager (Fig. 6, Service Support Level).
//
// Maintains named multicast groups of service references; the multicast
// primitives in src/rpc deliver to a group's member list.  Trader
// federations are one client: each federated trader joins a scope group.

#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sidl/service_ref.h"

namespace cosm::naming {

class GroupManager {
 public:
  /// Add a member; joining twice is a no-op.
  void join(const std::string& group, const sidl::ServiceRef& member);

  /// Remove a member; throws cosm::NotFound when not a member.
  void leave(const std::string& group, const sidl::ServiceRef& member);

  /// Member list in join order; empty for unknown groups.
  std::vector<sidl::ServiceRef> members(const std::string& group) const;

  /// All group names, sorted.
  std::vector<std::string> groups() const;

  std::size_t size(const std::string& group) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<sidl::ServiceRef>> groups_;
};

}  // namespace cosm::naming
