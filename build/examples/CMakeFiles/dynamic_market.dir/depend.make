# Empty dependencies file for dynamic_market.
# This may be replaced when dependencies are built.
