# Empty compiler generated dependencies file for cosm_services.
# This may be replaced when dependencies are built.
