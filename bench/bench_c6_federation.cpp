// Experiment C6 (§2.2): federated trader search.
//
// A hub trader links to N scope traders, each holding a slice of the
// market.  Import cost vs federation size and hop limit, over in-process
// links and over real RPC links.  Expected shape: linear in the number of
// traders actually visited; a hop limit of 1 suffices for a star topology;
// deeper chains pay per hop.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "trader/facade.h"
#include "trader/trader.h"

namespace {

using namespace cosm;
using trader::AttrMap;
using wire::Value;

trader::ServiceType rental_type() {
  trader::ServiceType type;
  type.name = "CarRentalService";
  type.attributes = {{"ChargePerDay", sidl::TypeDesc::float_(), true}};
  return type;
}

void populate(trader::Trader& t, std::size_t offers, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < offers; ++i) {
    AttrMap attrs = {{"ChargePerDay", Value::real(20.0 + rng.uniform() * 180.0)}};
    sidl::ServiceRef ref{t.name() + "-svc-" + std::to_string(i), "inproc://x",
                         "CarRentalService"};
    t.export_offer("CarRentalService", ref, std::move(attrs));
  }
}

trader::ImportRequest cheap_request(int hops) {
  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = "ChargePerDay < 120";
  request.preference = "min ChargePerDay";
  request.hop_limit = hops;
  return request;
}

void BM_StarFederationLocalLinks(benchmark::State& state) {
  const std::size_t scopes = static_cast<std::size_t>(state.range(0));
  trader::Trader hub("hub");
  hub.types().add(rental_type());
  std::vector<std::unique_ptr<trader::Trader>> leaves;
  for (std::size_t i = 0; i < scopes; ++i) {
    leaves.push_back(std::make_unique<trader::Trader>("scope-" + std::to_string(i)));
    leaves.back()->types().add(rental_type());
    populate(*leaves.back(), 64, i + 1);
    hub.link("scope-" + std::to_string(i),
             std::make_shared<trader::LocalTraderGateway>(*leaves.back()));
  }
  auto request = cheap_request(1);
  std::size_t matched = 0;
  for (auto _ : state) {
    auto offers = hub.import(request);
    matched = offers.size();
    benchmark::DoNotOptimize(offers);
  }
  state.counters["scopes"] = static_cast<double>(scopes);
  state.counters["matched"] = static_cast<double>(matched);
}
BENCHMARK(BM_StarFederationLocalLinks)->RangeMultiplier(2)->Range(1, 64);

void BM_ChainFederationHopLimit(benchmark::State& state) {
  // hub -> t1 -> t2 -> ... -> t8, 64 offers at each node.
  constexpr std::size_t kChain = 8;
  std::vector<std::unique_ptr<trader::Trader>> chain;
  for (std::size_t i = 0; i <= kChain; ++i) {
    chain.push_back(std::make_unique<trader::Trader>("t" + std::to_string(i)));
    chain.back()->types().add(rental_type());
    populate(*chain.back(), 64, i + 100);
    if (i > 0) {
      chain[i - 1]->link("next",
                         std::make_shared<trader::LocalTraderGateway>(*chain[i]));
    }
  }
  auto request = cheap_request(static_cast<int>(state.range(0)));
  std::size_t matched = 0;
  for (auto _ : state) {
    auto offers = chain[0]->import(request);
    matched = offers.size();
    benchmark::DoNotOptimize(offers);
  }
  state.counters["hop_limit"] = static_cast<double>(state.range(0));
  state.counters["matched"] = static_cast<double>(matched);
}
BENCHMARK(BM_ChainFederationHopLimit)->DenseRange(0, 8, 1);

void BM_StarFederationRpcLinks(benchmark::State& state) {
  // Same star topology, but every link crosses the RPC substrate.
  const std::size_t scopes = static_cast<std::size_t>(state.range(0));
  rpc::InProcNetwork net;
  rpc::RpcServer server(net, "traders");
  trader::Trader hub("hub");
  hub.types().add(rental_type());
  std::vector<std::unique_ptr<trader::Trader>> leaves;
  for (std::size_t i = 0; i < scopes; ++i) {
    leaves.push_back(std::make_unique<trader::Trader>("scope-" + std::to_string(i)));
    leaves.back()->types().add(rental_type());
    populate(*leaves.back(), 64, i + 1);
    auto ref = server.add(trader::make_trader_service(*leaves.back()));
    hub.link("scope-" + std::to_string(i),
             std::make_shared<trader::RemoteTraderGateway>(net, ref));
  }
  auto request = cheap_request(1);
  for (auto _ : state) {
    auto offers = hub.import(request);
    benchmark::DoNotOptimize(offers);
  }
  state.counters["scopes"] = static_cast<double>(scopes);
}
BENCHMARK(BM_StarFederationRpcLinks)->RangeMultiplier(4)->Range(1, 16);

}  // namespace

BENCHMARK_MAIN();
