file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ui_generation.dir/bench_fig7_ui_generation.cpp.o"
  "CMakeFiles/bench_fig7_ui_generation.dir/bench_fig7_ui_generation.cpp.o.d"
  "bench_fig7_ui_generation"
  "bench_fig7_ui_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ui_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
