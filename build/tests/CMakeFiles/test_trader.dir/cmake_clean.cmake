file(REMOVE_RECURSE
  "CMakeFiles/test_trader.dir/test_trader.cpp.o"
  "CMakeFiles/test_trader.dir/test_trader.cpp.o.d"
  "test_trader"
  "test_trader.pdb"
  "test_trader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
