// Differential tests for compiled marshal plans (wire/plan.h).
//
// The plan's behavioural contract is *exact* equivalence with the
// interpreted reference: byte-identical output on conforming values,
// identical exception class and message otherwise.  These tests enforce the
// contract by running both paths over randomized inputs — including
// deliberately non-conforming ones — and comparing outcomes.

#include "wire/plan.h"

#include <gtest/gtest.h>

#include <memory>
#include <typeinfo>

#include "common/error.h"
#include "common/rng.h"
#include "sidl/parser.h"
#include "support/generators.h"
#include "wire/codec.h"
#include "wire/marshal.h"

namespace cosm::wire {
namespace {

using sidl::TypeDesc;
using sidl::TypePtr;
using testing::GenOptions;
using testing::random_sid;
using testing::random_type;
using testing::random_value;

/// Interpreted reference encode: validate, then tree-walk encode.
Bytes reference_marshal(const Value& v, const TypePtr& t) {
  ensure_conforms(v, *t);
  return encode_value(v);
}

/// Interpreted reference decode: tree-walk decode, trailing check, validate.
Value reference_unmarshal(const Bytes& bytes, const TypePtr& t) {
  ByteReader r(bytes);
  Value v = decode_value(r);
  if (!r.at_end()) {
    throw WireError("decode_value: " + std::to_string(r.remaining()) +
                    " trailing bytes");
  }
  ensure_conforms(v, *t);
  return v;
}

/// Run both closures and require the identical outcome: equal results, or
/// the same cosm::Error subclass with the same message.
template <typename Fast, typename Ref, typename Result>
void expect_identical_outcome(Fast&& fast, Ref&& ref, Result* out,
                              const std::string& context) {
  bool fast_threw = false, ref_threw = false;
  std::string fast_type, ref_type, fast_msg, ref_msg;
  Result fast_result{}, ref_result{};
  try {
    fast_result = fast();
  } catch (const Error& e) {
    fast_threw = true;
    fast_type = typeid(e).name();
    fast_msg = e.what();
  }
  try {
    ref_result = ref();
  } catch (const Error& e) {
    ref_threw = true;
    ref_type = typeid(e).name();
    ref_msg = e.what();
  }
  ASSERT_EQ(fast_threw, ref_threw)
      << context << "\nplan: " << (fast_threw ? fast_msg : "<ok>")
      << "\nreference: " << (ref_threw ? ref_msg : "<ok>");
  if (fast_threw) {
    EXPECT_EQ(fast_type, ref_type) << context;
    EXPECT_EQ(fast_msg, ref_msg) << context;
  } else {
    EXPECT_EQ(fast_result, ref_result) << context;
    if (out) *out = fast_result;
  }
}

TEST(Plan, DifferentialEncodeDecodeConformingValues) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    GenOptions options;
    TypePtr type = random_type(rng, options);
    MarshalPlan plan(type);
    for (int i = 0; i < 5; ++i) {
      Value v = random_value(rng, *type, options);
      const std::string context = "seed " + std::to_string(seed) +
                                  " iteration " + std::to_string(i);
      // Byte-identical encode.
      Bytes compiled = plan.marshal(v);
      EXPECT_EQ(compiled, reference_marshal(v, type)) << context;
      // Round trip through the compiled decoder.
      EXPECT_EQ(plan.unmarshal(compiled), v) << context;
    }
  }
}

TEST(Plan, DifferentialEncodeMismatchedValues) {
  // Values conforming to a *different* random type: the plan must reject
  // (or accept — structural overlap happens) exactly like the reference.
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(seed ^ 0xbadc0de);
    GenOptions options;
    TypePtr type = random_type(rng, options);
    TypePtr other = random_type(rng, options);
    Value v = random_value(rng, *other, options);
    MarshalPlan plan(type);
    const std::string context = "seed " + std::to_string(seed);
    Bytes ignored;
    expect_identical_outcome([&] { return plan.marshal(v); },
                             [&] { return reference_marshal(v, type); },
                             &ignored, context);
  }
}

TEST(Plan, DifferentialDecodeMismatchedBytes) {
  // Wire bytes of a value of some other type, decoded through a plan: the
  // outcome (value or error) must match decode+validate exactly.
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(seed ^ 0x5eed);
    GenOptions options;
    TypePtr type = random_type(rng, options);
    TypePtr other = random_type(rng, options);
    Bytes bytes = encode_value(random_value(rng, *other, options));
    MarshalPlan plan(type);
    const std::string context = "seed " + std::to_string(seed);
    Value ignored;
    expect_identical_outcome([&] { return plan.unmarshal(bytes); },
                             [&] { return reference_unmarshal(bytes, type); },
                             &ignored, context);
  }
}

TEST(Plan, MarshalIntoRollsBackOnFailure) {
  MarshalPlan plan(TypeDesc::int_());
  ByteWriter w;
  w.str("prefix");
  const std::size_t before = w.size();
  EXPECT_THROW(plan.marshal_into(w, Value::string("not an int")), TypeError);
  EXPECT_EQ(w.size(), before);  // partial writes rolled back
  plan.marshal_into(w, Value::integer(7));
  EXPECT_GT(w.size(), before);
}

TEST(Plan, StructWidthSubtypingBytesIdentical) {
  // Record subtyping: extra fields ride along, in the value's own order.
  auto t = TypeDesc::struct_("S", {{"x", TypeDesc::int_()}});
  MarshalPlan plan(t);
  Value wider = Value::structure(
      "S", {{"extra", Value::string("first")},
            {"x", Value::integer(1)},
            {"more", Value::boolean(true)}});
  EXPECT_EQ(plan.marshal(wider), encode_value(wider));
  EXPECT_EQ(plan.unmarshal(plan.marshal(wider)), wider);
}

TEST(Plan, AnonymousValueNamesAccepted) {
  // An anonymous struct/enum value conforms to a named type; the encoded
  // name is the *value's* (empty), matching the value-driven reference.
  auto st = TypeDesc::struct_("S", {{"x", TypeDesc::int_()}});
  Value anon_struct = Value::structure("", {{"x", Value::integer(3)}});
  MarshalPlan splan(st);
  EXPECT_EQ(splan.marshal(anon_struct), encode_value(anon_struct));

  auto et = TypeDesc::enum_("E", {"A", "B"});
  Value anon_enum = Value::enumerated("", "B");
  MarshalPlan eplan(et);
  EXPECT_EQ(eplan.marshal(anon_enum), encode_value(anon_enum));
  // Label membership is still enforced for anonymous values.
  EXPECT_THROW(eplan.marshal(Value::enumerated("", "Z")), TypeError);
}

TEST(Plan, DuplicateFieldsEncodeInValueOrder) {
  auto t = TypeDesc::struct_("S", {{"x", TypeDesc::int_()}});
  Value dup = Value::structure(
      "S", {{"x", Value::integer(1)}, {"x", Value::integer(2)}});
  MarshalPlan plan(t);
  Bytes ignored;
  expect_identical_outcome([&] { return plan.marshal(dup); },
                           [&] { return reference_marshal(dup, t); }, &ignored,
                           "duplicate fields");
}

TEST(Plan, SidTypedValuesRoundTrip) {
  // Generators never emit Sid-typed leaves, so cover them by hand: a SID
  // travels in SIDL source form and re-parses on decode.
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(R"(
    module M {
      typedef enum { A, B } E_t;
      interface I { E_t Op([in] string s); };
    };
  )"));
  MarshalPlan plan(TypeDesc::sid());
  Value v = Value::sid(sid);
  Bytes compiled = plan.marshal(v);
  EXPECT_EQ(compiled, encode_value(v));
  Value back = plan.unmarshal(compiled);
  EXPECT_EQ(back.as_sid()->name, "M");
  EXPECT_THROW(plan.marshal(Value::integer(1)), TypeError);
}

TEST(Plan, AnyTypeAcceptsEverything) {
  MarshalPlan plan(TypeDesc::any());
  for (const Value& v :
       {Value::null(), Value::integer(42), Value::string("s"),
        Value::structure("T", {{"a", Value::real(1.0)}}),
        Value::sequence({Value::boolean(false)})}) {
    Bytes compiled = plan.marshal(v);
    EXPECT_EQ(compiled, encode_value(v));
    EXPECT_EQ(plan.unmarshal(compiled), v);
  }
}

TEST(Plan, TrailingBytesRejectedLikeReference) {
  MarshalPlan plan(TypeDesc::int_());
  Bytes bytes = encode_value(Value::integer(5));
  bytes.push_back(0xEE);
  Value ignored;
  expect_identical_outcome(
      [&] { return plan.unmarshal(bytes); },
      [&] { return reference_unmarshal(bytes, TypeDesc::int_()); }, &ignored,
      "trailing byte");
}

TEST(Plan, NullTypeRejected) {
  EXPECT_THROW(MarshalPlan(nullptr), ContractError);
}

TEST(OperationPlan, DifferentialArgumentsOverRandomSids) {
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    Rng rng(seed * 31 + 7);
    GenOptions options;
    sidl::Sid sid = random_sid(rng, options);
    for (const sidl::OperationDesc& op : sid.operations) {
      OperationPlan plan(op);
      // Conforming arguments: byte-identical frames, identical decode.
      std::vector<Value> args;
      for (const auto& p : op.params) {
        if (p.dir == sidl::ParamDir::Out) continue;
        args.push_back(random_value(rng, *p.type, options));
      }
      Bytes compiled = plan.marshal_arguments(args);
      EXPECT_EQ(compiled, marshal_arguments(op, args)) << "seed " << seed;
      std::vector<Value> ignored;
      expect_identical_outcome(
          [&] { return plan.unmarshal_arguments(compiled); },
          [&] { return unmarshal_arguments(op, compiled); }, &ignored,
          "seed " + std::to_string(seed) + " op " + op.name);

      // Wrong arity: identical error text.
      args.push_back(Value::integer(99));
      std::vector<Value> bad = args;
      Bytes bytes_ignored;
      expect_identical_outcome(
          [&] { return plan.marshal_arguments(bad); },
          [&] { return marshal_arguments(op, bad); }, &bytes_ignored,
          "arity seed " + std::to_string(seed));

      // A frame that is not a sequence: identical error.
      Bytes not_seq = encode_value(Value::integer(1));
      expect_identical_outcome(
          [&] { return plan.unmarshal_arguments(not_seq); },
          [&] { return unmarshal_arguments(op, not_seq); }, &ignored,
          "not-a-sequence seed " + std::to_string(seed));
    }
  }
}

TEST(OperationPlan, MismatchedArgumentErrorsMatchReference) {
  sidl::OperationDesc op;
  op.name = "SelectCar";
  op.result = TypeDesc::string_();
  op.params.push_back({sidl::ParamDir::In, "model",
                       TypeDesc::enum_("CarModel_t", {"FIAT_Uno", "VW_Golf"})});
  op.params.push_back({sidl::ParamDir::In, "days", TypeDesc::int_()});
  OperationPlan plan(op);

  std::vector<Value> wrong_type = {Value::enumerated("CarModel_t", "FIAT_Uno"),
                                   Value::string("three")};
  Bytes bytes_ignored;
  expect_identical_outcome(
      [&] { return plan.marshal_arguments(wrong_type); },
      [&] { return marshal_arguments(op, wrong_type); }, &bytes_ignored,
      "wrong arg type");

  std::vector<Value> bad_label = {Value::enumerated("CarModel_t", "TRABANT"),
                                  Value::integer(3)};
  expect_identical_outcome(
      [&] { return plan.marshal_arguments(bad_label); },
      [&] { return marshal_arguments(op, bad_label); }, &bytes_ignored,
      "bad enum label");

  // Server side: a frame carrying mismatched arguments decodes to the
  // reference's exact "received argument" error.
  Bytes frame = encode_value(Value::sequence(
      {Value::enumerated("CarModel_t", "FIAT_Uno"), Value::real(2.0)}));
  std::vector<Value> ignored;
  expect_identical_outcome(
      [&] { return plan.unmarshal_arguments(frame); },
      [&] { return unmarshal_arguments(op, frame); }, &ignored,
      "received wrong arg");
}

TEST(OperationPlan, OutParamsSkippedAndVoidResult) {
  sidl::OperationDesc op;
  op.name = "Fetch";
  op.result = nullptr;  // defaulted to void
  op.params.push_back({sidl::ParamDir::In, "key", TypeDesc::string_()});
  op.params.push_back({sidl::ParamDir::Out, "value", TypeDesc::string_()});
  op.params.push_back({sidl::ParamDir::InOut, "cursor", TypeDesc::int_()});
  OperationPlan plan(op);

  // Only in/inout params travel: two arguments expected, matching the
  // interpreted reference.
  std::vector<Value> args = {Value::string("k"), Value::integer(0)};
  EXPECT_EQ(plan.marshal_arguments(args), marshal_arguments(op, args));
  EXPECT_EQ(plan.result().type()->kind(), sidl::TypeKind::Void);
}

}  // namespace
}  // namespace cosm::wire
