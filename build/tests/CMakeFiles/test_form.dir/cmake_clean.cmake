file(REMOVE_RECURSE
  "CMakeFiles/test_form.dir/test_form.cpp.o"
  "CMakeFiles/test_form.dir/test_form.cpp.o.d"
  "test_form"
  "test_form.pdb"
  "test_form[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_form.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
