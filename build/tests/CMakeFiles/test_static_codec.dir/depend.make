# Empty dependencies file for test_static_codec.
# This may be replaced when dependencies are built.
