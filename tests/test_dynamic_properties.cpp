// ODP dynamic properties: attribute values fetched from the exporter at
// import time, plus the §2.1 signature check at export.

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/runtime.h"
#include "rpc/inproc.h"
#include "sidl/parser.h"
#include "trader/sid_export.h"
#include "trader/trader.h"

namespace cosm::trader {
namespace {

using wire::Value;

ServiceType rental_type_with_availability() {
  ServiceType t;
  t.name = "CarRentalService";
  t.attributes = {{"ChargePerDay", sidl::TypeDesc::float_(), true},
                  {"CarsAvailable", sidl::TypeDesc::int_(), true}};
  return t;
}

sidl::ServiceRef mk_ref(const std::string& id) {
  return {id, "inproc://host", "CarRentalService"};
}

class DynamicPropsTest : public ::testing::Test {
 protected:
  DynamicPropsTest() : trader("t") {
    trader.types().add(rental_type_with_availability());
  }

  /// Install a fetcher that returns `availability` and counts calls.
  void install_fetcher(std::int64_t availability) {
    trader.set_dynamic_fetcher(
        [this, availability](const sidl::ServiceRef&, const std::string& op) {
          ++fetch_calls;
          last_operation = op;
          return Value::integer(availability);
        });
  }

  Trader trader;
  int fetch_calls = 0;
  std::string last_operation;
};

TEST_F(DynamicPropsTest, DynamicAttrSatisfiesRequiredAtExport) {
  // CarsAvailable is required but provided dynamically: export succeeds.
  EXPECT_NO_THROW(trader.export_offer("CarRentalService", mk_ref("a"),
                                      {{"ChargePerDay", Value::real(80)}},
                                      {{"CarsAvailable", "CurrentAvailability"}}));
  // Without the dynamic declaration the same export fails.
  EXPECT_THROW(trader.export_offer("CarRentalService", mk_ref("b"),
                                   {{"ChargePerDay", Value::real(80)}}),
               TypeError);
}

TEST_F(DynamicPropsTest, UndeclaredDynamicAttrRejected) {
  EXPECT_THROW(trader.export_offer("CarRentalService", mk_ref("a"),
                                   {{"ChargePerDay", Value::real(80)},
                                    {"CarsAvailable", Value::integer(1)}},
                                   {{"Bogus", "Op"}}),
               TypeError);
}

TEST_F(DynamicPropsTest, StaticAndDynamicConflictRejected) {
  EXPECT_THROW(trader.export_offer("CarRentalService", mk_ref("a"),
                                   {{"ChargePerDay", Value::real(80)},
                                    {"CarsAvailable", Value::integer(1)}},
                                   {{"CarsAvailable", "Op"}}),
               TypeError);
}

TEST_F(DynamicPropsTest, EmptyOperationRejected) {
  EXPECT_THROW(trader.export_offer("CarRentalService", mk_ref("a"),
                                   {{"ChargePerDay", Value::real(80)}},
                                   {{"CarsAvailable", ""}}),
               ContractError);
}

TEST_F(DynamicPropsTest, ImportFetchesAndMatches) {
  trader.export_offer("CarRentalService", mk_ref("a"),
                      {{"ChargePerDay", Value::real(80)}},
                      {{"CarsAvailable", "CurrentAvailability"}});
  install_fetcher(5);

  ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = "CarsAvailable > 0";
  auto offers = trader.import(request);
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(fetch_calls, 1);
  EXPECT_EQ(last_operation, "CurrentAvailability");
  // The importer sees the fetched value merged into the attributes.
  EXPECT_EQ(offers[0].attributes.at("CarsAvailable").as_int(), 5);
  EXPECT_EQ(trader.dynamic_fetches(), 1u);
}

TEST_F(DynamicPropsTest, ImportFiltersOnFetchedValue) {
  trader.export_offer("CarRentalService", mk_ref("a"),
                      {{"ChargePerDay", Value::real(80)}},
                      {{"CarsAvailable", "CurrentAvailability"}});
  install_fetcher(0);  // sold out right now

  ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = "CarsAvailable > 0";
  EXPECT_TRUE(trader.import(request).empty());
}

TEST_F(DynamicPropsTest, NoFetcherMeansNoMatch) {
  trader.export_offer("CarRentalService", mk_ref("a"),
                      {{"ChargePerDay", Value::real(80)}},
                      {{"CarsAvailable", "CurrentAvailability"}});
  ImportRequest request;
  request.service_type = "CarRentalService";
  EXPECT_TRUE(trader.import(request).empty());  // conservative
}

TEST_F(DynamicPropsTest, FetchFailureSkipsOffer) {
  trader.export_offer("CarRentalService", mk_ref("down"),
                      {{"ChargePerDay", Value::real(80)}},
                      {{"CarsAvailable", "CurrentAvailability"}});
  trader.export_offer("CarRentalService", mk_ref("static"),
                      {{"ChargePerDay", Value::real(90)},
                       {"CarsAvailable", Value::integer(3)}});
  trader.set_dynamic_fetcher(
      [](const sidl::ServiceRef&, const std::string&) -> Value {
        throw RpcError("exporter unreachable");
      });
  ImportRequest request;
  request.service_type = "CarRentalService";
  auto offers = trader.import(request);
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].ref.id, "static");
}

TEST_F(DynamicPropsTest, IllTypedFetchedValueSkipsOffer) {
  trader.export_offer("CarRentalService", mk_ref("liar"),
                      {{"ChargePerDay", Value::real(80)}},
                      {{"CarsAvailable", "CurrentAvailability"}});
  trader.set_dynamic_fetcher(
      [](const sidl::ServiceRef&, const std::string&) {
        return Value::string("many");  // schema says long
      });
  ImportRequest request;
  request.service_type = "CarRentalService";
  EXPECT_TRUE(trader.import(request).empty());
}

TEST(DynamicPropsRuntime, FetcherWiredOverRpc) {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);
  runtime.trader().types().add(rental_type_with_availability());

  // A live service whose CurrentAvailability op reports fleet state.
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(R"(
    module CarRentalService {
      interface I { long CurrentAvailability(); };
    };
  )"));
  auto object = std::make_shared<rpc::ServiceObject>(sid);
  std::int64_t fleet = 2;
  object->on("CurrentAvailability", [&fleet](const std::vector<Value>&) {
    return Value::integer(fleet);
  });
  auto ref = runtime.host(object);

  runtime.trader().export_offer("CarRentalService", ref,
                                {{"ChargePerDay", Value::real(70)}},
                                {{"CarsAvailable", "CurrentAvailability"}});

  ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = "CarsAvailable > 0";
  EXPECT_EQ(runtime.trader().import(request).size(), 1u);

  fleet = 0;  // the market moved between imports
  EXPECT_TRUE(runtime.trader().import(request).empty());
}

// --- §2.1 signature checking ---

TEST(SignatureCheck, ConformingSidAccepted) {
  ServiceType type;
  type.name = "T";
  sidl::Sid shape = sidl::parse_sid(
      "module S { interface I { string Get([in] long id); }; };");
  type.signature = shape.operations;

  sidl::Sid good = sidl::parse_sid(
      "module Impl { interface I { string Get([in] long id); void Extra(); }; };");
  EXPECT_NO_THROW(check_signature(type, good));
}

TEST(SignatureCheck, MissingOperationRejected) {
  ServiceType type;
  type.name = "T";
  sidl::Sid shape = sidl::parse_sid(
      "module S { interface I { string Get([in] long id); }; };");
  type.signature = shape.operations;

  sidl::Sid bad = sidl::parse_sid("module Impl { interface I { void Other(); }; };");
  EXPECT_THROW(check_signature(type, bad), TypeError);
}

TEST(SignatureCheck, WrongSignatureRejected) {
  ServiceType type;
  type.name = "T";
  sidl::Sid shape = sidl::parse_sid(
      "module S { interface I { string Get([in] long id); }; };");
  type.signature = shape.operations;

  sidl::Sid bad = sidl::parse_sid(
      "module Impl { interface I { long Get([in] long id); }; };");
  EXPECT_THROW(check_signature(type, bad), TypeError);
}

TEST(SignatureCheck, EmptySignatureIsNoOp) {
  ServiceType type;
  type.name = "T";
  sidl::Sid any = sidl::parse_sid("module Impl { interface I { void X(); }; };");
  EXPECT_NO_THROW(check_signature(type, any));
}

TEST(SignatureCheck, EnforcedOnSidExportAgainstRegisteredType) {
  Trader trader("t");
  // Register a type whose signature demands SelectCar + BookCar.
  sidl::Sid canonical = sidl::parse_sid(R"(
    module Canon {
      interface I { void SelectCar(); void BookCar(); };
      module COSM_TraderExport { const string TOD = "CarRentalService"; };
    };
  )");
  trader.types().add(service_type_from_sid(canonical));

  // An exporter missing BookCar is rejected.
  sidl::Sid partial = sidl::parse_sid(R"(
    module Partial {
      interface I { void SelectCar(); };
      module COSM_TraderExport { const string TOD = "CarRentalService"; };
    };
  )");
  sidl::ServiceRef ref{"svc", "inproc://x", "Partial"};
  EXPECT_THROW(export_sid_offer(trader, partial, ref), TypeError);
  EXPECT_NO_THROW(export_sid_offer(trader, canonical, ref));
}

}  // namespace
}  // namespace cosm::trader
