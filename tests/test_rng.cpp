#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"

namespace cosm {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), ContractError);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusiveBothEnds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, RangeSingletonAndInverted) {
  Rng rng(13);
  EXPECT_EQ(rng.range(5, 5), 5);
  EXPECT_THROW(rng.range(3, 2), ContractError);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, IdentHasRequestedLengthAndAlphabet) {
  Rng rng(23);
  std::string s = rng.ident(16);
  EXPECT_EQ(s.size(), 16u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
  EXPECT_TRUE(rng.ident(0).empty());
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(29);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.weighted(weights), 1u);
}

TEST(Rng, WeightedEmptyThrows) {
  Rng rng(31);
  EXPECT_THROW(rng.weighted({}), ContractError);
}

TEST(Rng, WeightedCoversAllPositiveBuckets) {
  Rng rng(37);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.weighted({1.0, 1.0, 1.0}));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, PickReturnsElementFromVector) {
  Rng rng(41);
  std::vector<int> v = {10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

}  // namespace
}  // namespace cosm
