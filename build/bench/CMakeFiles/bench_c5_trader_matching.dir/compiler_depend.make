# Empty compiler generated dependencies file for bench_c5_trader_matching.
# This may be replaced when dependencies are built.
