// The §2.3 value-adding scenario: "if there is a demand for a graphics
// image server in format X, but a suitable image server only supplies
// format Y, it may be profitable to provide a value-adding service by
// converting Y to X".
//
// ImageServer serves synthetic images in one fixed format; FormatConverter
// is a COSM service that is *itself a generic client* of an upstream image
// server — it fetches Y-format images over the same substrate and re-codes
// them, demonstrating that value chains compose without per-service
// adaptation code.

#pragma once

#include <string>
#include <vector>

#include "rpc/network.h"
#include "rpc/service_object.h"
#include "sidl/service_ref.h"

namespace cosm::services {

struct ImageServerConfig {
  std::string name = "ImageArchive";
  /// Format this archive serves: one of PBM, PGM, XBM.
  std::string format = "PGM";
  /// Synthetic image dimensions.
  std::int64_t width = 32;
  std::int64_t height = 32;
};

/// SIDL: GetImage(name) -> Image_t{ name, format, width, height, data },
/// ListImages() -> sequence<string>.
std::string image_server_sidl(const ImageServerConfig& config);

rpc::ServiceObjectPtr make_image_server(const ImageServerConfig& config);

struct FormatConverterConfig {
  std::string name = "ImageConverter";
  /// Format the converter produces.
  std::string target_format = "XBM";
};

/// SIDL: GetImageAs(name, format) -> Image_t (plus Upstream() ->
/// ServiceReference so clients can discover the value chain).
std::string format_converter_sidl(const FormatConverterConfig& config);

/// The converter binds to `upstream` (an image server) over `network` and
/// re-codes its images on demand.
rpc::ServiceObjectPtr make_format_converter(rpc::Network& network,
                                            const sidl::ServiceRef& upstream,
                                            const FormatConverterConfig& config);

/// The deterministic "conversion" both sides agree on (exposed for tests):
/// re-codes pixel data between the synthetic formats.
std::string convert_image_data(const std::string& data,
                               const std::string& from_format,
                               const std::string& to_format);

}  // namespace cosm::services
