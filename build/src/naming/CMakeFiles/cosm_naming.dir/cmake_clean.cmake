file(REMOVE_RECURSE
  "CMakeFiles/cosm_naming.dir/binder.cpp.o"
  "CMakeFiles/cosm_naming.dir/binder.cpp.o.d"
  "CMakeFiles/cosm_naming.dir/facades.cpp.o"
  "CMakeFiles/cosm_naming.dir/facades.cpp.o.d"
  "CMakeFiles/cosm_naming.dir/group_manager.cpp.o"
  "CMakeFiles/cosm_naming.dir/group_manager.cpp.o.d"
  "CMakeFiles/cosm_naming.dir/interface_repository.cpp.o"
  "CMakeFiles/cosm_naming.dir/interface_repository.cpp.o.d"
  "CMakeFiles/cosm_naming.dir/name_server.cpp.o"
  "CMakeFiles/cosm_naming.dir/name_server.cpp.o.d"
  "CMakeFiles/cosm_naming.dir/persistence.cpp.o"
  "CMakeFiles/cosm_naming.dir/persistence.cpp.o.d"
  "libcosm_naming.a"
  "libcosm_naming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_naming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
