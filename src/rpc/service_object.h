// Dynamic service skeleton.
//
// A ServiceObject pairs a SID with operation handlers.  Dispatch is fully
// dynamic: the operation is looked up in the SID at call time and arguments
// arrive as wire::Values — the server-side mirror of the generic client.
//
// When the SID carries a COSM_FSM extension, the object enforces the
// protocol per client session (defence in depth: the generic client already
// rejects non-conforming invocations locally, §4.2, but servers cannot trust
// clients to do so).  An operation that appears in no FSM transition at all
// (e.g. a side-band query) is unrestricted; operations named with a leading
// underscore are infrastructure (e.g. "_get_sid") and bypass the FSM.

#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sidl/sid.h"
#include "wire/value.h"

namespace cosm::rpc {

using OpHandler = std::function<wire::Value(const std::vector<wire::Value>&)>;

struct ServiceObjectOptions {
  /// Server-side FSM enforcement (benchmark C4 turns the client side off and
  /// relies on this path).
  bool enforce_fsm = true;
};

class ServiceObject {
 public:
  explicit ServiceObject(sidl::SidPtr sid, ServiceObjectOptions options = {});

  /// Register the implementation of an operation.  Operations declared in
  /// the SID must be registered before they can be dispatched; handlers for
  /// "_"-prefixed infrastructure operations may be registered freely.
  void on(const std::string& operation, OpHandler handler);

  /// Dispatch a call.  Throws cosm::NotFound for unknown operations,
  /// cosm::ProtocolError for FSM violations; handler exceptions propagate.
  wire::Value dispatch(const std::string& session, const std::string& operation,
                       const std::vector<wire::Value>& args);

  const sidl::SidPtr& sid() const noexcept { return sid_; }

  /// Current FSM state of a session (initial state if the session is new).
  std::string session_state(const std::string& session) const;

  /// Forget a session (binding released).
  void reset_session(const std::string& session);

  /// True when a handler exists for the operation.
  bool implements(const std::string& operation) const;

  /// Total successful dispatches (instrumentation).
  std::uint64_t dispatch_count() const noexcept {
    return dispatches_.load(std::memory_order_relaxed);
  }
  /// Total FSM rejections (instrumentation for C4).
  std::uint64_t fsm_rejections() const noexcept {
    return rejections_.load(std::memory_order_relaxed);
  }

 private:
  /// Is the operation restricted by the FSM (appears in some transition)?
  bool fsm_restricted(const std::string& operation) const;

  sidl::SidPtr sid_;
  ServiceObjectOptions options_;
  std::map<std::string, OpHandler> handlers_;

  // Per-session FSM state; handlers themselves run outside this lock, so
  // independent sessions dispatch concurrently.
  mutable std::mutex mutex_;
  std::map<std::string, std::string> session_states_;
  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<std::uint64_t> rejections_{0};
};

using ServiceObjectPtr = std::shared_ptr<ServiceObject>;

}  // namespace cosm::rpc
