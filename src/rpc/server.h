// RPC server: hosts ServiceObjects behind one network endpoint.
//
// The server owns the endpoint registration, decodes request frames,
// resolves the target service instance, unmarshals arguments against the
// operation's SID signature, dispatches, and marshals the (conformance-
// checked) result.  All failures become Fault messages — a server never
// kills a connection over an application error.
//
// With `at_most_once` enabled the server keeps a per-session replay cache of
// response frames keyed by request id, giving transactional-RPC semantics
// over retrying transports (the "Transactional RPC" box of Fig. 6).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "rpc/message.h"
#include "rpc/network.h"
#include "rpc/service_object.h"
#include "sidl/service_ref.h"

namespace cosm::rpc {

struct ServerOptions {
  /// Enable the replay cache (at-most-once execution for retried requests).
  bool at_most_once = false;
  /// Replay-cache capacity per server (entries evicted FIFO).
  std::size_t replay_cache_capacity = 4096;
};

class RpcServer {
 public:
  /// Binds an endpoint on `network`; `host_hint` names it (in-proc).
  RpcServer(Network& network, const std::string& host_hint,
            ServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Host a service instance; returns the reference clients bind to.
  sidl::ServiceRef add(ServiceObjectPtr object);

  /// Stop hosting an instance.
  void remove(const sidl::ServiceRef& ref);

  /// Find a hosted instance by service id; nullptr when absent.
  ServiceObjectPtr find(const std::string& service_id) const;

  const std::string& endpoint() const noexcept { return endpoint_; }

  std::uint64_t requests_handled() const noexcept { return requests_; }
  std::uint64_t faults_returned() const noexcept { return faults_; }

 private:
  Bytes handle(const Bytes& frame);
  Bytes handle_message(const Message& request);

  Network& network_;
  ServerOptions options_;
  std::string endpoint_;

  mutable std::mutex mutex_;
  std::map<std::string, ServiceObjectPtr> services_;  // id -> object
  // Replay cache: (session, request id) -> encoded response frame.
  std::map<std::pair<std::string, std::uint64_t>, Bytes> replay_;
  std::vector<std::pair<std::string, std::uint64_t>> replay_order_;
  std::uint64_t requests_ = 0;
  std::uint64_t faults_ = 0;
};

}  // namespace cosm::rpc
