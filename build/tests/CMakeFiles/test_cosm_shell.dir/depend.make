# Empty dependencies file for test_cosm_shell.
# This may be replaced when dependencies are built.
