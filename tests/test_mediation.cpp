#include "core/mediation.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/runtime.h"
#include "rpc/inproc.h"
#include "services/stock_quote.h"
#include "services/weather.h"

namespace cosm::core {
namespace {

using wire::Value;

class MediationTest : public ::testing::Test {
 protected:
  MediationTest() : runtime(net), client(net) {
    runtime.offer_mediated("WeatherOracle", services::make_weather_service({}));
    runtime.offer_mediated("Ticker", services::make_stock_quote_service({}));
  }

  rpc::InProcNetwork net;
  CosmRuntime runtime;
  GenericClient client;
};

TEST_F(MediationTest, BrowseListsRegistrations) {
  MediationSession session(client, runtime.browser_ref());
  auto items = session.browse();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].name, "WeatherOracle");
  EXPECT_EQ(session.depth(), 0u);
}

TEST_F(MediationTest, SearchFindsByAnnotation) {
  MediationSession session(client, runtime.browser_ref());
  auto hits = session.search("forecast");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].name, "WeatherOracle");
}

TEST_F(MediationTest, DescribeWithoutBinding) {
  MediationSession session(client, runtime.browser_ref());
  sidl::SidPtr sid = session.describe("Ticker");
  EXPECT_EQ(sid->name, "TickerService");
  ASSERT_TRUE(sid->fsm.has_value());
}

TEST_F(MediationTest, SelectBindsAndWorks) {
  MediationSession session(client, runtime.browser_ref());
  Binding weather = session.select("WeatherOracle");
  Value forecast = weather.invoke(
      "GetForecast", {Value::string("Hamburg"), Value::integer(1)});
  EXPECT_EQ(forecast.at("city").as_string(), "Hamburg");
}

TEST_F(MediationTest, SelectUnknownEntryThrows) {
  MediationSession session(client, runtime.browser_ref());
  EXPECT_THROW(session.select("Ghost"), NotFound);
}

TEST_F(MediationTest, CascadeDescendsIntoNestedBrowser) {
  ServiceBrowser nested("nested");
  auto nested_ref = runtime.server().add(make_browser_service(nested));
  runtime.browser().register_service(
      "Financial", runtime.server().find(nested_ref.id)->sid(), nested_ref);
  auto ticker_ref = runtime.host(services::make_stock_quote_service(
      services::StockQuoteConfig{"NestedTicker", 5}));
  nested.register_service("NestedTicker",
                          runtime.repository().get(ticker_ref.id), ticker_ref);

  MediationSession root(client, runtime.browser_ref());
  MediationSession finance = root.enter("Financial");
  EXPECT_EQ(finance.depth(), 1u);
  auto items = finance.browse();
  ASSERT_EQ(items.size(), 1u);
  Binding ticker = finance.select("NestedTicker");
  EXPECT_EQ(ticker.sid()->name, "NestedTicker");
}

TEST_F(MediationTest, DeepSearchSpansCascade) {
  // root -> Financial (browser) -> NestedTicker; the ticker annotation
  // matches "quote" only from the nested browser.
  ServiceBrowser nested("nested");
  auto nested_ref = runtime.server().add(make_browser_service(nested));
  runtime.browser().register_service(
      "Financial", runtime.server().find(nested_ref.id)->sid(), nested_ref);
  auto ticker_ref = runtime.host(services::make_stock_quote_service(
      services::StockQuoteConfig{"NestedTicker", 5}));
  nested.register_service("NestedTicker",
                          runtime.repository().get(ticker_ref.id), ticker_ref);

  MediationSession root(client, runtime.browser_ref());
  // Shallow search sees only the root-level ticker (fixture), not the
  // nested one...
  ASSERT_EQ(root.search("quote").size(), 1u);
  // ...deep search finds both, the nested one with its cascade path.
  auto hits = root.deep_search("quote");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].path, "Ticker");
  EXPECT_EQ(hits[1].path, "Financial/NestedTicker");
  EXPECT_EQ(hits[1].ref, ticker_ref);

  // Depth 0 restricts to the root browser.
  EXPECT_EQ(root.deep_search("quote", 0).size(), 1u);
}

TEST_F(MediationTest, DeepSearchSurvivesBrowserCycles) {
  // Two browsers registered at each other; deep search must terminate.
  ServiceBrowser b1("b1"), b2("b2");
  auto r1 = runtime.server().add(make_browser_service(b1));
  auto r2 = runtime.server().add(make_browser_service(b2));
  b1.register_service("Other", runtime.server().find(r2.id)->sid(), r2);
  b2.register_service("Other", runtime.server().find(r1.id)->sid(), r1);
  runtime.browser().register_service("Ring",
                                     runtime.server().find(r1.id)->sid(), r1);
  auto weather_ref = runtime.host(services::make_weather_service(
      services::WeatherConfig{"DeepWeather", 3}));
  b2.register_service("DeepWeather", runtime.repository().get(weather_ref.id),
                      weather_ref);

  MediationSession root(client, runtime.browser_ref());
  auto hits = root.deep_search("forecast", 8);
  // The top-level WeatherOracle plus the one inside the ring, exactly once.
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[1].path, "Ring/Other/DeepWeather");
}

TEST_F(MediationTest, EnteringNonBrowserFails) {
  MediationSession session(client, runtime.browser_ref());
  // WeatherOracle has no List/Describe: not a browsing interface.
  EXPECT_THROW(session.enter("WeatherOracle"), TypeError);
}

TEST_F(MediationTest, SessionAgainstNonBrowserRefFails) {
  auto weather_ref = runtime.host(services::make_weather_service(
      services::WeatherConfig{"W2", 9}));
  EXPECT_THROW(MediationSession(client, weather_ref), TypeError);
}

}  // namespace
}  // namespace cosm::core
