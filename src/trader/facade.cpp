#include "trader/facade.h"

#include "common/error.h"
#include "rpc/call_context.h"
#include "rpc/channel.h"
#include "sidl/parser.h"

namespace cosm::trader {

using wire::Value;

const std::string& trader_sidl() {
  static const std::string text = R"(
module TraderService {
  typedef struct { string name; any value; } Attribute_t;
  typedef struct { string name; string operation; } DynamicAttr_t;
  typedef struct {
    string id;
    string type;
    ServiceReference ref;
    sequence<Attribute_t> attributes;
    sequence<DynamicAttr_t> dynamics;
    long lease;
  } Offer_t;
  typedef struct { string name; string type_spec; boolean required; } AttributeDef_t;
  typedef struct {
    ServiceReference ref;
    sequence<Attribute_t> attributes;
    sequence<DynamicAttr_t> dynamics;
  } OfferSpec_t;
  typedef struct { string id; sequence<Attribute_t> attributes; } OfferMod_t;
  typedef struct { long id; string publisher; } Subscription_t;
  typedef struct { long kind; string id; Offer_t offer; } OfferDelta_t;
  typedef struct {
    string publisher;
    long subscription;
    boolean snapshot;
    long first_seq;
    long snapshot_seq;
    boolean reset_seq;
    sequence<string> reset_types;
    sequence<OfferDelta_t> deltas;
  } DeltaBatch_t;
  typedef struct { string type; long count; long hash; } TypeDigest_t;
  typedef struct {
    string publisher;
    long subscription;
    long last_seq;
    sequence<TypeDigest_t> types;
  } Digest_t;
  interface COSM_Operations {
    string Export([in] string type, [in] ServiceReference ref,
                  [in] sequence<Attribute_t> attributes);
    string ExportDynamic([in] string type, [in] ServiceReference ref,
                         [in] sequence<Attribute_t> attributes,
                         [in] sequence<DynamicAttr_t> dynamics);
    sequence<string> ExportBatch([in] string type,
                                 [in] sequence<OfferSpec_t> specs);
    void Withdraw([in] string id);
    long WithdrawBatch([in] sequence<string> ids);
    void Modify([in] string id, [in] sequence<Attribute_t> attributes);
    long ModifyBatch([in] sequence<OfferMod_t> changes);
    sequence<Offer_t> Import([in] string type, [in] string constraint,
                             [in] string preference, [in] long max_matches,
                             [in] long hop_limit);
    sequence<Offer_t> ListOffers([in] string type);
    void AddType([in] string name, [in] string supertype,
                 [in] sequence<AttributeDef_t> schema);
    void RemoveType([in] string name);
    sequence<string> TypeNames();
    void ResetStats();
    Subscription_t Subscribe([in] ServiceReference subscriber,
                             [in] sequence<string> scope_types,
                             [in] string scope_constraint);
    void Unsubscribe([in] long id);
    long ReplicaApply([in] DeltaBatch_t batch);
    sequence<string> ReplicaDigest([in] Digest_t digest);
  };
  module COSM_Annotations {
    annotate TraderService "ODP trader: typed service offers, constraint matching, federation";
    annotate Export "Register a service offer under a registered service type";
    annotate ExportBatch "Bulk offer registration: all specs validated before any is applied";
    annotate Import "Retrieve ranked offers matching a constraint";
    annotate AddType "Management interface: register a new service type";
    annotate Subscribe "Upgrade a federation link to a replication subscription";
    annotate ReplicaApply "Apply a pushed offer-delta batch to the local replica";
    annotate ReplicaDigest "Compare an anti-entropy digest against the local replica";
  };
};
)";
  return text;
}

Value offer_to_value(const Offer& offer) {
  std::vector<Value> dynamics;
  dynamics.reserve(offer.dynamic_attrs.size());
  for (const auto& [name, operation] : offer.dynamic_attrs) {
    dynamics.push_back(
        Value::structure("DynamicAttr_t", {{"name", Value::string(name)},
                                           {"operation", Value::string(operation)}}));
  }
  return Value::structure(
      "Offer_t",
      {{"id", Value::string(offer.id)},
       {"type", Value::string(offer.service_type)},
       {"ref", Value::service_ref(offer.ref)},
       {"attributes", attrs_to_value(offer.attributes)},
       {"dynamics", Value::sequence(std::move(dynamics))},
       {"lease",
        Value::integer(static_cast<std::int64_t>(offer.lease_expires_at))}});
}

Offer offer_from_value(const Value& value) {
  Offer offer;
  offer.id = value.at("id").as_string();
  offer.service_type = value.at("type").as_string();
  offer.ref = value.at("ref").as_ref();
  offer.attributes = attrs_from_value(value.at("attributes"));
  for (const Value& d : value.at("dynamics").elements()) {
    offer.dynamic_attrs[d.at("name").as_string()] =
        d.at("operation").as_string();
  }
  offer.lease_expires_at =
      static_cast<std::uint64_t>(value.at("lease").as_int());
  return offer;
}

namespace {

Value offers_to_value(const std::vector<Offer>& offers) {
  std::vector<Value> out;
  out.reserve(offers.size());
  for (const auto& offer : offers) out.push_back(offer_to_value(offer));
  return Value::sequence(std::move(out));
}

// Replication payload conversions.  Sequence numbers and digest hashes are
// uint64 in the protocol structs but ride the wire as SIDL long (int64);
// the static_casts round-trip bit patterns exactly.

Value batch_to_value(const DeltaBatch& batch) {
  std::vector<Value> reset_types;
  reset_types.reserve(batch.reset_types.size());
  for (const auto& type : batch.reset_types) {
    reset_types.push_back(Value::string(type));
  }
  std::vector<Value> deltas;
  deltas.reserve(batch.deltas.size());
  for (const OfferDelta& delta : batch.deltas) {
    deltas.push_back(Value::structure(
        "OfferDelta_t",
        {{"kind",
          Value::integer(delta.kind == OfferDelta::Kind::Remove ? 1 : 0)},
         {"id", Value::string(delta.id)},
         {"offer", offer_to_value(delta.offer)}}));
  }
  return Value::structure(
      "DeltaBatch_t",
      {{"publisher", Value::string(batch.publisher)},
       {"subscription",
        Value::integer(static_cast<std::int64_t>(batch.subscription_id))},
       {"snapshot", Value::boolean(batch.snapshot)},
       {"first_seq",
        Value::integer(static_cast<std::int64_t>(batch.first_seq))},
       {"snapshot_seq",
        Value::integer(static_cast<std::int64_t>(batch.snapshot_seq))},
       {"reset_seq", Value::boolean(batch.reset_seq)},
       {"reset_types", Value::sequence(std::move(reset_types))},
       {"deltas", Value::sequence(std::move(deltas))}});
}

DeltaBatch batch_from_value(const Value& value) {
  DeltaBatch batch;
  batch.publisher = value.at("publisher").as_string();
  batch.subscription_id =
      static_cast<std::uint64_t>(value.at("subscription").as_int());
  batch.snapshot = value.at("snapshot").as_bool();
  batch.first_seq = static_cast<std::uint64_t>(value.at("first_seq").as_int());
  batch.snapshot_seq =
      static_cast<std::uint64_t>(value.at("snapshot_seq").as_int());
  batch.reset_seq = value.at("reset_seq").as_bool();
  for (const Value& type : value.at("reset_types").elements()) {
    batch.reset_types.push_back(type.as_string());
  }
  batch.deltas.reserve(value.at("deltas").elements().size());
  for (const Value& d : value.at("deltas").elements()) {
    OfferDelta delta;
    delta.kind = d.at("kind").as_int() == 1 ? OfferDelta::Kind::Remove
                                            : OfferDelta::Kind::Upsert;
    delta.id = d.at("id").as_string();
    if (delta.kind == OfferDelta::Kind::Upsert) {
      delta.offer = offer_from_value(d.at("offer"));
    }
    batch.deltas.push_back(std::move(delta));
  }
  return batch;
}

Value digest_to_value(const ReplicationDigest& digest) {
  std::vector<Value> types;
  types.reserve(digest.types.size());
  for (const TypeDigest& td : digest.types) {
    types.push_back(Value::structure(
        "TypeDigest_t",
        {{"type", Value::string(td.service_type)},
         {"count", Value::integer(static_cast<std::int64_t>(td.count))},
         {"hash", Value::integer(static_cast<std::int64_t>(td.hash))}}));
  }
  return Value::structure(
      "Digest_t",
      {{"publisher", Value::string(digest.publisher)},
       {"subscription",
        Value::integer(static_cast<std::int64_t>(digest.subscription_id))},
       {"last_seq",
        Value::integer(static_cast<std::int64_t>(digest.last_seq))},
       {"types", Value::sequence(std::move(types))}});
}

ReplicationDigest digest_from_value(const Value& value) {
  ReplicationDigest digest;
  digest.publisher = value.at("publisher").as_string();
  digest.subscription_id =
      static_cast<std::uint64_t>(value.at("subscription").as_int());
  digest.last_seq = static_cast<std::uint64_t>(value.at("last_seq").as_int());
  digest.types.reserve(value.at("types").elements().size());
  for (const Value& t : value.at("types").elements()) {
    TypeDigest td;
    td.service_type = t.at("type").as_string();
    td.count = static_cast<std::uint64_t>(t.at("count").as_int());
    td.hash = static_cast<std::uint64_t>(t.at("hash").as_int());
    digest.types.push_back(std::move(td));
  }
  return digest;
}

}  // namespace

rpc::ServiceObjectPtr make_trader_service(Trader& trader) {
  return make_trader_service(trader, nullptr);
}

rpc::ServiceObjectPtr make_trader_service(Trader& trader, rpc::Network* network,
                                          rpc::RetryPolicy sink_retry) {
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(trader_sidl()));
  auto object = std::make_shared<rpc::ServiceObject>(std::move(sid));

  object->on("Export", [&trader](const std::vector<Value>& args) {
    return Value::string(trader.export_offer(args.at(0).as_string(),
                                             args.at(1).as_ref(),
                                             attrs_from_value(args.at(2))));
  });
  object->on("ExportDynamic", [&trader](const std::vector<Value>& args) {
    std::map<std::string, std::string> dynamics;
    for (const Value& d : args.at(3).elements()) {
      dynamics[d.at("name").as_string()] = d.at("operation").as_string();
    }
    return Value::string(trader.export_offer(args.at(0).as_string(),
                                             args.at(1).as_ref(),
                                             attrs_from_value(args.at(2)),
                                             std::move(dynamics)));
  });
  object->on("ExportBatch", [&trader](const std::vector<Value>& args) {
    std::vector<BatchOfferSpec> specs;
    specs.reserve(args.at(1).elements().size());
    for (const Value& s : args.at(1).elements()) {
      BatchOfferSpec spec;
      spec.ref = s.at("ref").as_ref();
      spec.attributes = attrs_from_value(s.at("attributes"));
      for (const Value& d : s.at("dynamics").elements()) {
        spec.dynamic_attrs[d.at("name").as_string()] =
            d.at("operation").as_string();
      }
      specs.push_back(std::move(spec));
    }
    std::vector<Value> ids;
    for (auto& id :
         trader.export_batch(args.at(0).as_string(), std::move(specs))) {
      ids.push_back(Value::string(std::move(id)));
    }
    return Value::sequence(std::move(ids));
  });
  object->on("Withdraw", [&trader](const std::vector<Value>& args) {
    trader.withdraw(args.at(0).as_string());
    return Value::null();
  });
  object->on("WithdrawBatch", [&trader](const std::vector<Value>& args) {
    std::vector<std::string> ids;
    ids.reserve(args.at(0).elements().size());
    for (const Value& id : args.at(0).elements()) {
      ids.push_back(id.as_string());
    }
    return Value::integer(
        static_cast<std::int64_t>(trader.withdraw_batch(ids)));
  });
  object->on("Modify", [&trader](const std::vector<Value>& args) {
    trader.modify(args.at(0).as_string(), attrs_from_value(args.at(1)));
    return Value::null();
  });
  object->on("ModifyBatch", [&trader](const std::vector<Value>& args) {
    std::vector<std::pair<std::string, AttrMap>> changes;
    changes.reserve(args.at(0).elements().size());
    for (const Value& c : args.at(0).elements()) {
      changes.emplace_back(c.at("id").as_string(),
                           attrs_from_value(c.at("attributes")));
    }
    return Value::integer(
        static_cast<std::int64_t>(trader.modify_batch(std::move(changes))));
  });
  object->on("Import", [&trader](const std::vector<Value>& args) {
    ImportRequest request;
    request.service_type = args.at(0).as_string();
    request.constraint = args.at(1).as_string();
    request.preference = args.at(2).as_string();
    std::int64_t max_matches = args.at(3).as_int();
    std::int64_t hop_limit = args.at(4).as_int();
    if (max_matches < 0 || hop_limit < 0) {
      throw ContractError("Import: max_matches and hop_limit must be >= 0");
    }
    request.max_matches = static_cast<std::size_t>(max_matches);
    request.hop_limit = static_cast<int>(hop_limit);
    // The server installed the caller's remaining budget as this thread's
    // CallContext; pin it (and the trace correlation) onto the request so
    // the federation sweep (which fans out on other threads) still honours
    // the deadline and stays in the caller's trace.
    rpc::CallContext ctx = rpc::current_call_context();
    if (ctx.has_deadline()) request.deadline = ctx.deadline;
    request.trace_id = ctx.trace_id;
    request.parent_span_id = ctx.span_id;
    return offers_to_value(trader.import(request));
  });
  object->on("ListOffers", [&trader](const std::vector<Value>& args) {
    return offers_to_value(trader.list_offers(args.at(0).as_string()));
  });
  object->on("AddType", [&trader](const std::vector<Value>& args) {
    ServiceType type;
    type.name = args.at(0).as_string();
    type.supertype = args.at(1).as_string();
    for (const Value& def : args.at(2).elements()) {
      AttributeDef attr;
      attr.name = def.at("name").as_string();
      attr.type = sidl::parse_type(def.at("type_spec").as_string());
      attr.required = def.at("required").as_bool();
      type.attributes.push_back(std::move(attr));
    }
    trader.types().add(std::move(type));
    return Value::null();
  });
  object->on("RemoveType", [&trader](const std::vector<Value>& args) {
    trader.types().remove(args.at(0).as_string());
    return Value::null();
  });
  object->on("TypeNames", [&trader](const std::vector<Value>&) {
    std::vector<Value> out;
    for (auto& name : trader.types().names()) out.push_back(Value::string(name));
    return Value::sequence(std::move(out));
  });
  object->on("ResetStats", [&trader](const std::vector<Value>&) {
    trader.reset_stats();
    return Value::null();
  });
  object->on("Subscribe", [&trader, network,
                           sink_retry](const std::vector<Value>& args) {
    if (network == nullptr) {
      throw ContractError(
          "Subscribe: trader service was built without a network; the "
          "publisher cannot reach back to the subscriber");
    }
    sidl::ServiceRef subscriber_ref = args.at(0).as_ref();
    SubscriptionScope scope;
    for (const Value& type : args.at(1).elements()) {
      scope.service_types.push_back(type.as_string());
    }
    scope.constraint = args.at(2).as_string();
    // The serialised subscriber reference doubles as the sink descriptor:
    // a durable trader journals it and rebuilds this exact sink after a
    // restart (Trader::set_subscription_sink_factory).
    SubscriptionInfo info = trader.add_subscription(
        subscriber_ref.to_string(), scope,
        std::make_shared<RemoteReplicationSink>(*network, subscriber_ref,
                                                sink_retry),
        subscriber_ref.to_string());
    return Value::structure(
        "Subscription_t",
        {{"id", Value::integer(static_cast<std::int64_t>(info.id))},
         {"publisher", Value::string(info.publisher)}});
  });
  object->on("Unsubscribe", [&trader](const std::vector<Value>& args) {
    trader.remove_subscription(
        static_cast<std::uint64_t>(args.at(0).as_int()));
    return Value::null();
  });
  object->on("ReplicaApply", [&trader](const std::vector<Value>& args) {
    return Value::integer(static_cast<std::int64_t>(
        trader.replica_apply(batch_from_value(args.at(0)))));
  });
  object->on("ReplicaDigest", [&trader](const std::vector<Value>& args) {
    std::vector<Value> out;
    for (auto& type : trader.replica_digest(digest_from_value(args.at(0)))) {
      out.push_back(Value::string(std::move(type)));
    }
    return Value::sequence(std::move(out));
  });
  return object;
}

RemoteReplicationSink::RemoteReplicationSink(rpc::Network& network,
                                             sidl::ServiceRef subscriber_ref,
                                             rpc::RetryPolicy retry)
    : network_(network), ref_(std::move(subscriber_ref)), retry_(retry) {
  if (!ref_.valid()) {
    throw ContractError("RemoteReplicationSink needs a valid subscriber "
                        "reference");
  }
}

std::uint64_t RemoteReplicationSink::apply(const DeltaBatch& batch) {
  rpc::ChannelOptions options;
  options.retry = retry_;
  options.idempotent = true;  // subscriber skips already-seen sequences
  rpc::RpcChannel channel(network_, ref_, options);
  return static_cast<std::uint64_t>(
      channel.call("ReplicaApply", {batch_to_value(batch)}).as_int());
}

std::vector<std::string> RemoteReplicationSink::digest(
    const ReplicationDigest& digest) {
  rpc::ChannelOptions options;
  options.retry = retry_;
  options.idempotent = true;  // digest comparison mutates nothing
  rpc::RpcChannel channel(network_, ref_, options);
  Value result = channel.call("ReplicaDigest", {digest_to_value(digest)});
  std::vector<std::string> divergent;
  divergent.reserve(result.elements().size());
  for (const Value& type : result.elements()) {
    divergent.push_back(type.as_string());
  }
  return divergent;
}

std::string RemoteReplicationSink::describe() const {
  return "remote:" + ref_.to_string();
}

RemoteTraderGateway::RemoteTraderGateway(rpc::Network& network,
                                         sidl::ServiceRef trader_ref,
                                         rpc::RetryPolicy retry)
    : network_(network), ref_(std::move(trader_ref)), retry_(retry) {
  if (!ref_.valid()) {
    throw ContractError("RemoteTraderGateway needs a valid trader reference");
  }
}

std::vector<Offer> RemoteTraderGateway::import(const ImportRequest& request) {
  // Translate the request's absolute deadline back into this hop's call
  // budget.  The sweep runs on worker threads with no inherited thread-local
  // context, so the ImportRequest field is the only carrier.
  rpc::ChannelOptions options;
  options.retry = retry_;
  options.idempotent = true;  // Import mutates nothing
  if (request.has_deadline()) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        request.deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      throw RpcError("deadline exceeded before federated import via " +
                     describe());
    }
    options.timeout = remaining;
  }
  // Re-install the request's correlation as this worker thread's context so
  // the channel's client span parents under the forwarding trader's import
  // span (the deadline is already in options.timeout).
  rpc::CallContext hop_ctx;
  hop_ctx.trace_id = request.trace_id;
  hop_ctx.span_id = request.parent_span_id;
  rpc::CallContextScope hop_scope(hop_ctx);
  rpc::RpcChannel channel(network_, ref_, options);
  Value result = channel.call(
      "Import", {Value::string(request.service_type),
                 Value::string(request.constraint),
                 Value::string(request.preference),
                 Value::integer(static_cast<std::int64_t>(request.max_matches)),
                 Value::integer(request.hop_limit)});
  std::vector<Offer> offers;
  offers.reserve(result.elements().size());
  for (const Value& v : result.elements()) offers.push_back(offer_from_value(v));
  return offers;
}

std::string RemoteTraderGateway::describe() const {
  return "remote:" + ref_.to_string();
}

void RemoteTraderGateway::set_subscriber_ref(sidl::ServiceRef ref) {
  subscriber_ref_ = std::move(ref);
}

SubscriptionInfo RemoteTraderGateway::subscribe(Trader& subscriber,
                                                const SubscriptionScope& scope) {
  (void)subscriber;  // reached over RPC via subscriber_ref_, not in-process
  if (!subscriber_ref_.valid()) {
    throw ContractError(
        "RemoteTraderGateway: call set_subscriber_ref() before "
        "subscribe_link() so the publisher can push back to the subscriber");
  }
  // No retry: Subscribe mints a new subscription id on the publisher, so a
  // blind reissue could leak a second subscription.  A failed subscribe is
  // surfaced to the caller, who re-invokes subscribe_link explicitly.
  rpc::RpcChannel channel(network_, ref_, {});
  std::vector<Value> scope_types;
  scope_types.reserve(scope.service_types.size());
  for (const auto& type : scope.service_types) {
    scope_types.push_back(Value::string(type));
  }
  Value result =
      channel.call("Subscribe", {Value::service_ref(subscriber_ref_),
                                 Value::sequence(std::move(scope_types)),
                                 Value::string(scope.constraint)});
  SubscriptionInfo info;
  info.id = static_cast<std::uint64_t>(result.at("id").as_int());
  info.publisher = result.at("publisher").as_string();
  return info;
}

void RemoteTraderGateway::unsubscribe(std::uint64_t subscription_id) {
  rpc::ChannelOptions options;
  options.retry = retry_;
  options.idempotent = true;  // removing an absent subscription is a no-op
  rpc::RpcChannel channel(network_, ref_, options);
  channel.call("Unsubscribe",
               {Value::integer(static_cast<std::int64_t>(subscription_id))});
}

}  // namespace cosm::trader
