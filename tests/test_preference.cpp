#include "trader/preference.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosm::trader {
namespace {

using wire::Value;

std::vector<AttrMap> price_maps(std::initializer_list<double> prices) {
  std::vector<AttrMap> maps;
  for (double p : prices) maps.push_back({{"Price", Value::real(p)}});
  return maps;
}

std::vector<const AttrMap*> ptrs(const std::vector<AttrMap>& maps) {
  std::vector<const AttrMap*> out;
  for (const auto& m : maps) out.push_back(&m);
  return out;
}

TEST(Preference, ParseForms) {
  EXPECT_EQ(Preference::parse("").kind(), PreferenceKind::First);
  EXPECT_EQ(Preference::parse("first").kind(), PreferenceKind::First);
  EXPECT_EQ(Preference::parse("random").kind(), PreferenceKind::Random);
  auto p = Preference::parse("min ChargePerDay");
  EXPECT_EQ(p.kind(), PreferenceKind::Min);
  EXPECT_EQ(p.attribute(), "ChargePerDay");
  EXPECT_EQ(Preference::parse("max Milage").kind(), PreferenceKind::Max);
}

TEST(Preference, ParseErrors) {
  EXPECT_THROW(Preference::parse("cheapest"), ParseError);
  EXPECT_THROW(Preference::parse("min"), ParseError);
  EXPECT_THROW(Preference::parse("min A B"), ParseError);
  EXPECT_THROW(Preference::parse("first extra"), ParseError);
  EXPECT_THROW(Preference::parse("random extra"), ParseError);
}

TEST(Preference, FirstKeepsOrder) {
  auto maps = price_maps({30, 10, 20});
  Rng rng(1);
  auto order = Preference::parse("first").rank(ptrs(maps), rng);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Preference, MinSortsAscending) {
  auto maps = price_maps({30, 10, 20});
  Rng rng(1);
  auto order = Preference::parse("min Price").rank(ptrs(maps), rng);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(Preference, MaxSortsDescending) {
  auto maps = price_maps({30, 10, 20});
  Rng rng(1);
  auto order = Preference::parse("max Price").rank(ptrs(maps), rng);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 2, 1}));
}

TEST(Preference, MinIsStableOnTies) {
  auto maps = price_maps({10, 10, 10});
  Rng rng(1);
  auto order = Preference::parse("min Price").rank(ptrs(maps), rng);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Preference, MissingAttributeRanksLast) {
  std::vector<AttrMap> maps = {{{"Price", Value::real(50)}},
                               {},  // no Price
                               {{"Price", Value::real(10)}}};
  Rng rng(1);
  auto order = Preference::parse("min Price").rank(ptrs(maps), rng);
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 0, 1}));
}

TEST(Preference, NonNumericAttributeRanksLast) {
  std::vector<AttrMap> maps = {{{"Price", Value::string("expensive")}},
                               {{"Price", Value::real(10)}}};
  Rng rng(1);
  auto order = Preference::parse("min Price").rank(ptrs(maps), rng);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 0}));
}

TEST(Preference, IntegerAttributesRankNumerically) {
  std::vector<AttrMap> maps = {{{"N", Value::integer(200)}},
                               {{"N", Value::integer(30)}}};
  Rng rng(1);
  auto order = Preference::parse("min N").rank(ptrs(maps), rng);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 0}));
}

TEST(Preference, RandomIsDeterministicPerSeedAndCoversPermutations) {
  auto maps = price_maps({1, 2, 3, 4});
  Rng rng1(42), rng2(42);
  auto o1 = Preference::parse("random").rank(ptrs(maps), rng1);
  auto o2 = Preference::parse("random").rank(ptrs(maps), rng2);
  EXPECT_EQ(o1, o2);

  // Each rank call advances the generator: repeated shuffles differ.
  auto o3 = Preference::parse("random").rank(ptrs(maps), rng1);
  std::vector<std::size_t> sorted = o3;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2, 3}));  // a permutation
}

TEST(Preference, EmptyOfferList) {
  Rng rng(1);
  EXPECT_TRUE(Preference::parse("min X").rank({}, rng).empty());
}

TEST(Preference, KindToString) {
  EXPECT_EQ(to_string(PreferenceKind::First), "first");
  EXPECT_EQ(to_string(PreferenceKind::Random), "random");
  EXPECT_EQ(to_string(PreferenceKind::Min), "min");
  EXPECT_EQ(to_string(PreferenceKind::Max), "max");
}

}  // namespace
}  // namespace cosm::trader
