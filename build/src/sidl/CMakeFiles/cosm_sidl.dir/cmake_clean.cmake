file(REMOVE_RECURSE
  "CMakeFiles/cosm_sidl.dir/lexer.cpp.o"
  "CMakeFiles/cosm_sidl.dir/lexer.cpp.o.d"
  "CMakeFiles/cosm_sidl.dir/literal.cpp.o"
  "CMakeFiles/cosm_sidl.dir/literal.cpp.o.d"
  "CMakeFiles/cosm_sidl.dir/parser.cpp.o"
  "CMakeFiles/cosm_sidl.dir/parser.cpp.o.d"
  "CMakeFiles/cosm_sidl.dir/printer.cpp.o"
  "CMakeFiles/cosm_sidl.dir/printer.cpp.o.d"
  "CMakeFiles/cosm_sidl.dir/service_ref.cpp.o"
  "CMakeFiles/cosm_sidl.dir/service_ref.cpp.o.d"
  "CMakeFiles/cosm_sidl.dir/sid.cpp.o"
  "CMakeFiles/cosm_sidl.dir/sid.cpp.o.d"
  "CMakeFiles/cosm_sidl.dir/type_desc.cpp.o"
  "CMakeFiles/cosm_sidl.dir/type_desc.cpp.o.d"
  "CMakeFiles/cosm_sidl.dir/validate.cpp.o"
  "CMakeFiles/cosm_sidl.dir/validate.cpp.o.d"
  "libcosm_sidl.a"
  "libcosm_sidl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_sidl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
