// Experiment F6 (Fig. 6): the full COSM architecture under a mixed
// workload.
//
// Drives every level of the stack — name server, binder, group manager,
// interface manager, trader (Controlling Level), browser + generic client
// (Client/Service Level), multicast and transactional RPC (Communication
// Level) — and reports per-component operation counts and the end-to-end
// wall time.  This is a scenario reproduction, not a microbenchmark: the
// table shows that every Fig. 6 box is exercised by real traffic.

#include <chrono>
#include <iomanip>
#include <iostream>

#include "bench_util.h"
#include "common/error.h"
#include "core/mediation.h"
#include "sidl/parser.h"
#include "rpc/multicast.h"
#include "rpc/txn.h"
#include "services/stock_quote.h"
#include "services/weather.h"
#include "trader/sid_export.h"

using namespace cosm;
using wire::Value;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

void row(const std::string& component, const std::string& metric,
         std::uint64_t count) {
  std::cout << "  " << std::left << std::setw(28) << component << std::setw(34)
            << metric << count << "\n";
}

}  // namespace

int main() {
  constexpr int kProviders = 24;
  constexpr int kClients = 8;
  constexpr int kRoundsPerClient = 16;

  auto start = Clock::now();
  bench::Market market(kProviders);
  auto& runtime = market.runtime;
  auto& net = market.inproc;

  // Additional innovative services through mediation only.
  runtime.offer_mediated("Weather", services::make_weather_service({}));
  runtime.offer_mediated("Ticker", services::make_stock_quote_service({}));

  // Group membership for all rental providers (multicast target).
  for (const auto& ref : market.refs) runtime.groups().join("rentals", ref);

  // Transactional participants: two bookkeeping services enlisted in an
  // activity (the Fig. 6 "Activity Manager" / "TP-Monitor" path).
  int committed_effects = 0;
  std::string settlement = runtime.activities().begin("settlement");
  for (int i = 0; i < 2; ++i) {
    auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(
        "module Ledger { interface I { long Total(); }; };"));
    auto ledger = std::make_shared<rpc::ServiceObject>(sid);
    ledger->on("Total", [](const std::vector<Value>&) { return Value::integer(0); });
    rpc::install_txn_participant(
        *ledger, rpc::TxnHooks{[](const std::string&) { return true; },
                               [&committed_effects](const std::string&) {
                                 ++committed_effects;
                               },
                               [](const std::string&) {}});
    runtime.activities().enlist(settlement, runtime.host(ledger));
  }

  const double setup_ms = ms_since(start);

  // --- mixed client workload ---
  start = Clock::now();
  std::uint64_t bookings = 0, quotes = 0, forecasts = 0, rejections = 0;
  for (int c = 0; c < kClients; ++c) {
    core::GenericClient client = runtime.make_client();
    core::MediationSession session(client, runtime.browser_ref());

    // Trader path: cheapest available provider.
    trader::ImportRequest request;
    request.service_type = services::car_rental_service_type_name();
    request.preference = "min ChargePerDay";
    request.max_matches = 1;
    auto offers = runtime.trader().import(request);
    core::Binding rental = client.bind(offers.front().ref);

    // Mediation path: weather + ticker.
    core::Binding weather = session.select("Weather");
    core::Binding ticker = session.select("Ticker");
    try {
      ticker.invoke("GetQuote", {Value::string("IBM")});  // before login
    } catch (const ProtocolError&) {
      ++rejections;
    }
    ticker.invoke("Login", {Value::string("client-" + std::to_string(c))});

    for (int r = 0; r < kRoundsPerClient; ++r) {
      Value quote = bench::quote_via_form(
          rental, rental.invoke("ListModels", {}).elements()[0].enum_label(), 2);
      ++quotes;
      if (quote.at("available").as_bool() && r % 4 == 0) {
        uims::FormEditor book = rental.edit("BookCar");
        book.set("booking.offer_code", quote.at("offer_code").as_string());
        book.set("booking.customer", "client-" + std::to_string(c));
        if (rental.invoke_form(book).at("confirmed").as_bool()) ++bookings;
      }
      weather.invoke("GetForecast",
                     {Value::string("Hamburg"), Value::integer(r % 7)});
      ++forecasts;
      ticker.invoke("GetQuote", {Value::string("IBM")});
    }
    ticker.invoke("Logout", {});
  }

  // Multicast sweep over the provider group.
  auto outcomes = rpc::multicast_call(
      net, runtime.groups().members("rentals"), "ListModels", {});
  std::uint64_t multicast_ok = 0;
  for (const auto& o : outcomes) {
    if (o.ok()) ++multicast_ok;
  }

  // Complete the settlement activity: 2PC across the enlisted ledgers.
  rpc::TxnOutcome txn_outcome = runtime.activities().complete(settlement);

  const double workload_ms = ms_since(start);

  // --- report ---
  std::cout << "F6: full-stack mixed workload (" << kProviders << " providers, "
            << kClients << " clients x " << kRoundsPerClient << " rounds)\n";
  std::cout << "  " << std::left << std::setw(28) << "component" << std::setw(34)
            << "metric" << "count\n";
  const cosm::rpc::NetworkStats net_stats = net.stats();
  row("Communication (in-proc)", "frames served", net_stats.frames);
  row("Communication (in-proc)", "request bytes carried", net_stats.bytes_in);
  row("Name server", "bindings held", runtime.names().size());
  row("Interface manager", "SIDs stored", runtime.repository().size());
  row("Group manager", "group members (rentals)", runtime.groups().size("rentals"));
  row("Trader", "offers", runtime.trader().offer_count());
  row("Trader", "imports served", runtime.trader().imports_total());
  row("Trader", "offers evaluated", runtime.trader().offers_evaluated());
  row("Browser", "registrations", runtime.browser().registrations_total());
  row("RPC server", "requests handled", runtime.server().requests_handled());
  row("RPC server", "faults returned", runtime.server().faults_returned());
  row("Generic clients", "quotes issued", quotes);
  row("Generic clients", "bookings confirmed", bookings);
  row("Generic clients", "forecasts fetched", forecasts);
  row("Generic clients", "local FSM rejections", rejections);
  row("Multicast", "members reached", multicast_ok);
  row("Activity manager", "activities committed",
      runtime.activities().committed_total());
  row("Transactional RPC", "2PC outcome committed",
      txn_outcome == rpc::TxnOutcome::Committed ? 1 : 0);
  row("Transactional RPC", "participant effects", committed_effects);
  std::cout << std::fixed << std::setprecision(1);
  std::cout << "  setup: " << setup_ms << " ms, workload: " << workload_ms
            << " ms\n";

  bool ok = bookings > 0 && rejections == kClients && multicast_ok == kProviders &&
            txn_outcome == rpc::TxnOutcome::Committed && committed_effects == 2;
  std::cout << (ok ? "  RESULT: all Fig. 6 components exercised\n"
                   : "  RESULT: FAILURE — see counters above\n");
  return ok ? 0 : 1;
}
