// Form editors: capture user input into typed wire values.
//
// A FormEditor is the model behind a generated operation form ("typed form
// for local parameter entry and analysis", §4.2): each in-parameter starts
// at its default value and is edited through paths like
// "selection.model" or "extras[2]".  Input is parsed and validated against
// the SIDL type at the addressed position, so ill-typed entries are
// rejected *locally*, before any RPC happens.

#pragma once

#include <string>
#include <vector>

#include "sidl/sid.h"
#include "uims/form.h"
#include "wire/value.h"

namespace cosm::uims {

class FormEditor {
 public:
  /// Create an editor for one operation of a SID; throws cosm::NotFound.
  FormEditor(sidl::SidPtr sid, const std::string& operation);

  /// Set a scalar at `path` from user text.  Paths address parameters by
  /// name, struct fields by ".field" and sequence elements by "[index]",
  /// e.g. "selection.model" or "selection.extras[0]".
  /// Throws cosm::TypeError on invalid text, cosm::NotFound on bad paths.
  void set(const std::string& path, const std::string& text);

  /// Set a service-reference widget directly (bind buttons deliver refs,
  /// not text).
  void set_ref(const std::string& path, const sidl::ServiceRef& ref);

  /// Append a default-valued element to the sequence at `path`; returns the
  /// new element's index.
  std::size_t add_element(const std::string& path);

  /// Remove an element from the sequence at `path`.
  void remove_element(const std::string& path, std::size_t index);

  /// Toggle an optional's presence (present => default payload).
  void set_present(const std::string& path, bool present);

  /// Current argument values (validated against the signature on build).
  std::vector<wire::Value> arguments() const;

  /// The value currently at `path` (for display).
  wire::Value get(const std::string& path) const;

  const OperationForm& form() const noexcept { return form_; }
  const sidl::OperationDesc& operation() const noexcept { return *op_; }

 private:
  /// Rebuild values_ applying `leaf` at the addressed position.  When
  /// `peel_optional_at_leaf` is true (value edits), an optional at the leaf
  /// is transparent and the leaf applies to its payload; when false
  /// (presence toggles), the leaf addresses the optional itself.
  void apply_at(const std::string& path,
                wire::Value (*leaf)(const wire::Value&, const sidl::TypeDesc&,
                                    const void* ctx),
                const void* ctx, bool peel_optional_at_leaf = true);

  sidl::SidPtr sid_;
  const sidl::OperationDesc* op_;
  OperationForm form_;
  std::vector<const sidl::ParamDesc*> in_params_;
  std::vector<wire::Value> values_;
};

/// Parse user text into a scalar value of the given type (exposed for
/// tests); throws cosm::TypeError.
wire::Value parse_scalar(const std::string& text, const sidl::TypeDesc& type);

}  // namespace cosm::uims
