# Empty dependencies file for test_mediation.
# This may be replaced when dependencies are built.
