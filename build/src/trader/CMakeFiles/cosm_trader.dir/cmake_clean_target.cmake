file(REMOVE_RECURSE
  "libcosm_trader.a"
)
