// SIDL parser: SIDL source text -> Sid model.
//
// The concrete syntax conforms to (a subset of) OMG CORBA IDL, extended the
// way §4.1 describes: COSM-specific information is embedded as distinguished
// modules (`COSM_TraderExport`, `COSM_FSM`, `COSM_Annotations`) inside the
// service's module, and *unknown* modules are skipped but preserved verbatim
// so the SID stays processable by components that understand fewer
// extensions (the record-subtyping rule of Fig. 2).
//
// Accepted grammar sketch:
//
//   sid        := "module" IDENT "{" item* "}" ";"?
//   item       := typedef | interface | submodule | const
//   typedef    := "typedef" typespec IDENT ";"          // IDL order
//              |  "typedef" IDENT typespec ";"          // paper's order
//   typespec   := "void" | "boolean" | "long" | "short" | "float" | "double"
//              |  "string" | "ServiceReference" | "SID"
//              |  "enum" "{" IDENT ("," IDENT)* "}"
//              |  "struct" "{" (typespec IDENT ";")* "}"
//              |  "sequence" "<" typespec ">" | "optional" "<" typespec ">"
//              |  IDENT                                  // earlier typedef
//   interface  := "interface" IDENT "{" operation* "}" ";"?
//   operation  := typespec IDENT "(" [param ("," param)*] ")" ";"
//   param      := ("[" dir "]" | dir)? typespec IDENT?   // dir: in|out|inout
//   const      := "const" (IDENT|typespec-keyword) IDENT "=" literal ";"
//   COSM_FSM   := "states" "{" IDENT,+ "}" ";" "initial" IDENT ";"
//                 ("transition" IDENT IDENT IDENT ";"
//                  | "(" IDENT "," IDENT "," IDENT ")" ";"?)*
//   COSM_Annotations := ("annotate" IDENT STRING ";")*

#pragma once

#include <string>
#include <string_view>

#include "sidl/sid.h"
#include "sidl/type_desc.h"

namespace cosm::sidl {

struct ParserOptions {
  /// When true, an unknown extension module is a parse error instead of
  /// being skipped.  This deliberately violates the paper's skipping rule
  /// and exists for the A1 ablation benchmark.
  bool strict_unknown_modules = false;
};

/// Parse one SID (a single top-level module).  Throws cosm::ParseError.
Sid parse_sid(std::string_view source, const ParserOptions& options = {});

/// Parse a standalone type specification, e.g. "sequence<struct { long x; }>".
/// Named references cannot be resolved here, so only self-contained specs
/// are accepted.  Throws cosm::ParseError.
TypePtr parse_type(std::string_view source);

}  // namespace cosm::sidl
