file(REMOVE_RECURSE
  "CMakeFiles/sidlc.dir/sidlc.cpp.o"
  "CMakeFiles/sidlc.dir/sidlc.cpp.o.d"
  "sidlc"
  "sidlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
