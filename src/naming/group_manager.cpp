#include "naming/group_manager.h"

#include <algorithm>

#include "common/error.h"

namespace cosm::naming {

void GroupManager::join(const std::string& group, const sidl::ServiceRef& member) {
  if (group.empty()) throw ContractError("group name must not be empty");
  if (!member.valid()) throw ContractError("cannot join with an invalid reference");
  std::lock_guard lock(mutex_);
  auto& members = groups_[group];
  if (std::find(members.begin(), members.end(), member) == members.end()) {
    members.push_back(member);
  }
}

void GroupManager::leave(const std::string& group, const sidl::ServiceRef& member) {
  std::lock_guard lock(mutex_);
  auto it = groups_.find(group);
  if (it == groups_.end()) throw NotFound("unknown group '" + group + "'");
  auto& members = it->second;
  auto mit = std::find(members.begin(), members.end(), member);
  if (mit == members.end()) {
    throw NotFound("reference '" + member.id + "' is not a member of '" + group + "'");
  }
  members.erase(mit);
  if (members.empty()) groups_.erase(it);
}

std::vector<sidl::ServiceRef> GroupManager::members(const std::string& group) const {
  std::lock_guard lock(mutex_);
  auto it = groups_.find(group);
  return it == groups_.end() ? std::vector<sidl::ServiceRef>{} : it->second;
}

std::vector<std::string> GroupManager::groups() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(groups_.size());
  for (const auto& [name, members] : groups_) names.push_back(name);
  return names;
}

std::size_t GroupManager::size(const std::string& group) const {
  std::lock_guard lock(mutex_);
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.size();
}

}  // namespace cosm::naming
