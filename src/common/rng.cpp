#include "common/rng.h"

#include "common/error.h"

namespace cosm {

std::uint64_t Rng::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) throw ContractError("Rng::below: bound must be positive");
  // Rejection sampling: discard the biased tail of the 2^64 range.
  std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw ContractError("Rng::range: lo > hi");
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

std::string Rng::ident(std::size_t length) {
  std::string s;
  s.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    s.push_back(static_cast<char>('a' + below(26)));
  }
  return s;
}

std::size_t Rng::weighted(const std::vector<double>& weights) {
  if (weights.empty()) throw ContractError("Rng::weighted: empty weights");
  double total = 0;
  for (double w : weights) total += w;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (x < weights[i]) return i;
    x -= weights[i];
  }
  return weights.size() - 1;
}

}  // namespace cosm
