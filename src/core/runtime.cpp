#include "core/runtime.h"

#include <atomic>
#include <cstdint>
#include <filesystem>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/activity_facade.h"
#include "rpc/channel.h"
#include "trader/sid_export.h"
#include "trader/storage/wal_storage.h"

namespace cosm::core {

namespace {

// Offer ids embed the minting trader's name (trader.cpp), and federation
// dedups merged results by offer id.  Two runtimes in one process whose
// traders share a name would therefore mint colliding ids and silently drop
// each other's offers on federated imports — so every runtime gets a
// process-unique trader name.
std::string unique_trader_name() {
  static std::atomic<std::uint64_t> next{0};
  std::uint64_t n = next.fetch_add(1, std::memory_order_relaxed);
  return n == 0 ? "trader" : "trader-" + std::to_string(n);
}

// A durable trader's name is its replication identity: subscribers key
// replicas by publisher name, and the journal's subscriptions re-arm under
// it.  A process-unique name would make every restart look like a brand-new
// publisher, so durable runtimes derive a stable name from the storage
// directory instead (one directory = one trader; two writers on one journal
// are invalid anyway).  CosmConfig::trader_name overrides either scheme.
std::string trader_name_for(const CosmConfig& cfg) {
  if (!cfg.trader_name.empty()) return cfg.trader_name;
  if (cfg.durable) {
    return "trader@" + std::filesystem::path(cfg.storage.directory)
                           .lexically_normal()
                           .string();
  }
  return unique_trader_name();
}

std::shared_ptr<trader::storage::StorageEngine> make_engine(
    const CosmConfig& cfg) {
  if (!cfg.durable) return nullptr;  // Trader substitutes a NullStorage
  return std::make_shared<trader::storage::WalStorage>(cfg.storage);
}

}  // namespace

CosmRuntime::CosmRuntime(rpc::Network& network, rpc::ServerOptions server_options)
    : CosmRuntime(network, [&] {
        CosmConfig cfg;
        cfg.server = server_options;
        return cfg;
      }()) {}

CosmRuntime::CosmRuntime(rpc::Network& network, CosmConfig config)
    : network_(network),
      config_(config.validated(&config_adjusted_)),
      retry_(config_.retry),
      storage_engine_(make_engine(config_)),
      trader_(trader_name_for(config_), 42, storage_engine_),
      browser_("browser"),
      server_(network, "cosm", config_.server),
      binder_(network),
      activities_(network) {
  // Process-global switches: turning observability on for one runtime turns
  // it on everywhere (off stays off — another runtime may have enabled it).
  if (config_.observability.metrics) obs::metrics().set_enabled(true);
  if (config_.observability.tracing) {
    obs::tracer().set_capacity(config_.observability.trace_capacity);
    obs::tracer().set_enabled(true);
  }
  if (config_adjusted_ != 0) {
    // Every clamp validated() applied is observable, never silent.
    obs::metrics().counter("config.adjusted").add(config_adjusted_);
  }
  trader_.set_federation_options(config_.federation);
  trader_.set_tuning(config_.trader_tuning);
  trader_.set_replication_options(config_.replication);
  // Recovered subscriptions rebuild their push path from the journalled
  // sink descriptor (the subscriber's serialised trader reference).
  trader_.set_subscription_sink_factory(
      [this](const std::string& desc)
          -> std::shared_ptr<trader::ReplicationSink> {
        return std::make_shared<trader::RemoteReplicationSink>(
            network_, sidl::ServiceRef::from_string(desc), retry_);
      });
  if (config_.durable) {
    // Replay the journal before the stack is reachable: recover() must run
    // with the trader still empty, and nothing may observe half a market.
    trader_.recover();
    if (auto* replay = server_.replay_cache()) {
      replay->seed_marks(trader_.storage().recovered_replay_marks());
    }
  }
  // The network-aware facade serves Subscribe: a remote subscriber hands
  // over its own trader reference and the publisher pushes deltas back
  // through it.
  trader_ref_ =
      server_.add(trader::make_trader_service(trader_, &network_, retry_));
  browser_ref_ = server_.add(make_browser_service(browser_));
  names_ref_ = server_.add(naming::make_name_server_service(names_));
  repository_ref_ = server_.add(naming::make_interface_repository_service(repository_));
  groups_ref_ = server_.add(naming::make_group_manager_service(groups_));
  activities_ref_ = server_.add(rpc::make_activity_manager_service(activities_));

  names_.bind_name(WellKnownNames::kTrader, trader_ref_);
  names_.bind_name(WellKnownNames::kBrowser, browser_ref_);
  names_.bind_name(WellKnownNames::kNameServer, names_ref_);
  names_.bind_name(WellKnownNames::kRepository, repository_ref_);
  names_.bind_name(WellKnownNames::kGroupManager, groups_ref_);
  names_.bind_name(WellKnownNames::kActivityManager, activities_ref_);

  // ODP dynamic properties: the trader evaluates them by invoking the named
  // operation on the exporter over this runtime's network.  Fetches are
  // reads, so the runtime's retry policy applies.
  trader_.set_dynamic_fetcher(
      [this](const sidl::ServiceRef& exporter, const std::string& operation) {
        rpc::ChannelOptions channel_options;
        channel_options.retry = retry_;
        channel_options.idempotent = true;
        rpc::RpcChannel channel(network_, exporter, channel_options);
        return channel.call(operation, {});
      });

  // The infrastructure's own SIDs live in the repository like everyone
  // else's.
  repository_.put(trader_ref_.id, server_.find(trader_ref_.id)->sid());
  repository_.put(browser_ref_.id, server_.find(browser_ref_.id)->sid());
  repository_.put(names_ref_.id, server_.find(names_ref_.id)->sid());
  repository_.put(repository_ref_.id, server_.find(repository_ref_.id)->sid());
  repository_.put(groups_ref_.id, server_.find(groups_ref_.id)->sid());
  repository_.put(activities_ref_.id, server_.find(activities_ref_.id)->sid());

  if (config_.replication_pump) trader_.start_replication_pump();
}

sidl::ServiceRef CosmRuntime::host(rpc::ServiceObjectPtr object) {
  sidl::SidPtr sid = object->sid();
  sidl::ServiceRef ref = server_.add(std::move(object));
  repository_.put(ref.id, std::move(sid));
  return ref;
}

sidl::ServiceRef CosmRuntime::offer_mediated(const std::string& entry_name,
                                             rpc::ServiceObjectPtr object) {
  sidl::SidPtr sid = object->sid();
  sidl::ServiceRef ref = host(std::move(object));
  browser_.register_service(entry_name, std::move(sid), ref);
  return ref;
}

std::pair<sidl::ServiceRef, std::string> CosmRuntime::offer_traded(
    rpc::ServiceObjectPtr object) {
  sidl::SidPtr sid = object->sid();
  sidl::ServiceRef ref = host(std::move(object));
  std::string offer_id = trader::export_sid_offer(trader_, *sid, ref);
  return {ref, offer_id};
}

void CosmRuntime::link_trader(const std::string& link_name,
                              const sidl::ServiceRef& remote_trader_ref) {
  auto gateway = std::make_shared<trader::RemoteTraderGateway>(
      network_, remote_trader_ref, retry_);
  // Pre-arm the subscription path: should the caller later upgrade this
  // link (subscribe_trader), the publisher pushes back to this runtime's
  // trader facade.
  gateway->set_subscriber_ref(trader_ref_);
  trader_.link(link_name, std::move(gateway));
}

void CosmRuntime::subscribe_trader(const std::string& link_name,
                                   trader::SubscriptionScope scope) {
  trader_.subscribe_link(link_name, std::move(scope));
}

std::string CosmRuntime::metrics_snapshot() {
  // Push-model counters cover events while metrics were enabled; the
  // lifetime stats below are kept unconditionally by each component, so
  // fold them in as gauges at snapshot time (pull model).  The two views
  // together survive enable/disable toggling mid-run.  The gauges are
  // namespaced by this runtime's process-unique trader name so two
  // runtimes in one process never overwrite each other's folds (the first
  // runtime's trader is named "trader", so its keys keep the plain
  // trader.* shape).
  auto& reg = obs::metrics();
  const std::string prefix = trader_.name() + ".";
  reg.gauge(prefix + "exports_total")
      .set(static_cast<std::int64_t>(trader_.exports_total()));
  reg.gauge(prefix + "imports_total")
      .set(static_cast<std::int64_t>(trader_.imports_total()));
  reg.gauge(prefix + "offers_evaluated_total")
      .set(static_cast<std::int64_t>(trader_.offers_evaluated()));
  reg.gauge(prefix + "offers_scanned_total")
      .set(static_cast<std::int64_t>(trader_.offers_scanned()));
  reg.gauge(prefix + "index_lookups_total")
      .set(static_cast<std::int64_t>(trader_.index_lookups()));
  reg.gauge(prefix + "offers_scored_total")
      .set(static_cast<std::int64_t>(trader_.offers_scored()));
  reg.gauge(prefix + "heap_prunes_total")
      .set(static_cast<std::int64_t>(trader_.heap_prunes()));
  reg.gauge(prefix + "constraint_cache_hits_total")
      .set(static_cast<std::int64_t>(trader_.constraint_cache_hits()));
  reg.gauge(prefix + "constraint_cache_misses_total")
      .set(static_cast<std::int64_t>(trader_.constraint_cache_misses()));
  reg.gauge(prefix + "constraint_cache_evictions_total")
      .set(static_cast<std::int64_t>(trader_.constraint_cache_evictions()));
  reg.gauge(prefix + "constraint_cache_compile_ns_total")
      .set(static_cast<std::int64_t>(trader_.constraint_cache_compile_ns()));
  reg.gauge(prefix + "preference_cache_hits_total")
      .set(static_cast<std::int64_t>(trader_.preference_cache_hits()));
  reg.gauge(prefix + "preference_cache_misses_total")
      .set(static_cast<std::int64_t>(trader_.preference_cache_misses()));
  reg.gauge(prefix + "preference_cache_evictions_total")
      .set(static_cast<std::int64_t>(trader_.preference_cache_evictions()));
  reg.gauge(prefix + "preference_cache_compile_ns_total")
      .set(static_cast<std::int64_t>(trader_.preference_cache_compile_ns()));
  reg.gauge(prefix + "closure_builds_total")
      .set(static_cast<std::int64_t>(trader_.types().closure_builds()));
  reg.gauge(prefix + "closure_hits_total")
      .set(static_cast<std::int64_t>(trader_.types().closure_hits()));
  reg.gauge(prefix + "dynamic_fetches_total")
      .set(static_cast<std::int64_t>(trader_.dynamic_fetches()));
  reg.gauge(prefix + "links_quarantined_total")
      .set(static_cast<std::int64_t>(trader_.links_quarantined_total()));
  reg.gauge(prefix + "offers_expired_total")
      .set(static_cast<std::int64_t>(trader_.offers_expired_total()));
  reg.gauge(prefix + "links_probed_total")
      .set(static_cast<std::int64_t>(trader_.links_probed_total()));
  // Federation v2 replication health: push/apply volume, fault-repair
  // activity, how often covered imports stayed local, and the publisher's
  // outstanding delta backlog (replication lag).
  reg.gauge(prefix + "repl.deltas_sent_total")
      .set(static_cast<std::int64_t>(trader_.replication_deltas_sent()));
  reg.gauge(prefix + "repl.deltas_applied_total")
      .set(static_cast<std::int64_t>(trader_.replication_deltas_applied()));
  reg.gauge(prefix + "repl.snapshots_sent_total")
      .set(static_cast<std::int64_t>(trader_.replication_snapshots_sent()));
  reg.gauge(prefix + "repl.digest_repairs_total")
      .set(static_cast<std::int64_t>(trader_.replication_digest_repairs()));
  reg.gauge(prefix + "repl.flush_failures_total")
      .set(static_cast<std::int64_t>(trader_.replication_flush_failures()));
  reg.gauge(prefix + "repl.local_resolves_total")
      .set(static_cast<std::int64_t>(trader_.replica_local_resolves()));
  reg.gauge(prefix + "repl.fanout_resolves_total")
      .set(static_cast<std::int64_t>(trader_.replica_fanout_resolves()));
  reg.gauge(prefix + "repl.unknown_type_skips_total")
      .set(static_cast<std::int64_t>(trader_.replication_unknown_type_skips()));
  reg.gauge(prefix + "repl.pending")
      .set(static_cast<std::int64_t>(trader_.replication_pending()));
  reg.gauge(prefix + "repl.replica_offers")
      .set(static_cast<std::int64_t>(trader_.replica_offer_count()));
  // Offer-store health: publication epoch, how far the oldest pinned
  // reader trails it (bounds retired-state reclamation), states parked in
  // limbo, and per-shard delta-merge counts (a skewed shard = a hot type
  // below its split threshold).
  reg.gauge(prefix + "store.epoch")
      .set(static_cast<std::int64_t>(trader_.store_epoch()));
  reg.gauge(prefix + "store.epoch_lag")
      .set(static_cast<std::int64_t>(trader_.store_epoch_lag()));
  {
    const auto shard_stats = trader_.store_shard_stats();
    std::int64_t limbo_total = 0;
    for (std::size_t s = 0; s < shard_stats.size(); ++s) {
      limbo_total += static_cast<std::int64_t>(shard_stats[s].limbo);
      reg.gauge(prefix + "store.shard." + std::to_string(s) + ".rebuilds")
          .set(static_cast<std::int64_t>(shard_stats[s].rebuilds));
    }
    reg.gauge(prefix + "store.limbo").set(limbo_total);
    reg.gauge(prefix + "store.shards")
        .set(static_cast<std::int64_t>(shard_stats.size()));
  }
  reg.gauge(prefix + "server.requests_total")
      .set(static_cast<std::int64_t>(server_.requests_handled()));
  reg.gauge(prefix + "server.faults_total")
      .set(static_cast<std::int64_t>(server_.faults_returned()));
  reg.gauge(prefix + "server.replay_evictions_total")
      .set(static_cast<std::int64_t>(server_.replay_evictions()));
  const rpc::NetworkStats net = network_.stats();
  reg.gauge(prefix + "net.connections")
      .set(static_cast<std::int64_t>(net.connections));
  reg.gauge(prefix + "net.in_flight_frames")
      .set(static_cast<std::int64_t>(net.in_flight_frames));
  reg.gauge(prefix + "net.frames_total")
      .set(static_cast<std::int64_t>(net.frames));
  reg.gauge(prefix + "net.send_retries_total")
      .set(static_cast<std::int64_t>(net.send_retries));
  reg.gauge(prefix + "net.bytes_in_total")
      .set(static_cast<std::int64_t>(net.bytes_in));
  reg.gauge(prefix + "net.bytes_out_total")
      .set(static_cast<std::int64_t>(net.bytes_out));
  return reg.to_json();
}

std::string CosmRuntime::dump_traces() const { return obs::tracer().dump_json(); }

}  // namespace cosm::core
