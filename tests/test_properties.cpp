// Cross-cutting property tests: generated-input invariants that single-case
// tests cannot cover.

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "core/generic_client.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "rpc/tcp.h"
#include "sidl/parser.h"
#include "sidl/printer.h"
#include "support/generators.h"
#include "trader/constraint.h"
#include "wire/codec.h"

namespace cosm {
namespace {

using wire::Value;

// --- constraint language fuzz: random expression-shaped inputs either
// parse (and then evaluate without crashing on arbitrary attribute maps) or
// throw ParseError — never anything else. ---

std::string random_expression(Rng& rng, int depth = 0) {
  if (depth > 3 || rng.chance(0.4)) {
    // Leaf: comparison or exists.
    static const char* ops[] = {"==", "!=", "<", "<=", ">", ">="};
    auto operand = [&rng]() -> std::string {
      switch (rng.below(4)) {
        case 0: return "Attr" + std::to_string(rng.below(4));
        case 1: return std::to_string(rng.range(-100, 100));
        case 2: return std::to_string(rng.uniform() * 100);
        default: return "\"" + rng.ident(3) + "\"";
      }
    };
    if (rng.chance(0.15)) return "exists Attr" + std::to_string(rng.below(4));
    return operand() + " " + ops[rng.below(6)] + " " + operand();
  }
  std::string lhs = random_expression(rng, depth + 1);
  std::string rhs = random_expression(rng, depth + 1);
  switch (rng.below(3)) {
    case 0: return "(" + lhs + ") && (" + rhs + ")";
    case 1: return "(" + lhs + ") || (" + rhs + ")";
    default: return "!(" + lhs + ")";
  }
}

trader::AttrMap random_attrs(Rng& rng) {
  trader::AttrMap attrs;
  for (std::uint64_t i = 0; i < rng.below(5); ++i) {
    std::string name = "Attr" + std::to_string(rng.below(4));
    switch (rng.below(4)) {
      case 0: attrs[name] = Value::integer(rng.range(-100, 100)); break;
      case 1: attrs[name] = Value::real(rng.uniform() * 100); break;
      case 2: attrs[name] = Value::string(rng.ident(3)); break;
      default: attrs[name] = Value::boolean(rng.chance(0.5)); break;
    }
  }
  return attrs;
}

class ConstraintFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConstraintFuzz, WellFormedExpressionsEvaluateSafely) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    std::string expr = random_expression(rng);
    trader::Constraint c = trader::Constraint::parse(expr);  // must not throw
    for (int j = 0; j < 5; ++j) {
      trader::AttrMap attrs = random_attrs(rng);
      (void)c.eval(attrs);  // must not throw, any result is legal
    }
    // Referenced attributes are a subset of the Attr0..Attr3 + literals.
    for (const auto& name : c.referenced_attributes()) {
      EXPECT_FALSE(name.empty());
    }
  }
}

TEST_P(ConstraintFuzz, MangledExpressionsThrowParseErrorOnly) {
  Rng rng(GetParam() ^ 0xBEEF);
  for (int i = 0; i < 200; ++i) {
    std::string expr = random_expression(rng);
    // Mangle: delete a random slice.
    if (!expr.empty()) {
      std::size_t from = rng.below(expr.size());
      std::size_t len = 1 + rng.below(5);
      expr.erase(from, len);
    }
    try {
      trader::Constraint c = trader::Constraint::parse(expr);
      (void)c.eval(random_attrs(rng));  // still fine if it parsed
    } catch (const ParseError&) {
      // acceptable
    }
    // Anything else (segfault, std::exception, logic_error) fails the test.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstraintFuzz, ::testing::Values(1, 7, 42, 1994));

// --- FSM walk equivalence: over random operation sequences, the generic
// client's local decision always matches the server's. ---

class FsmWalk : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FsmWalk, LocalAndServerDecisionsAgree) {
  rpc::InProcNetwork net;
  rpc::RpcServer server(net, "host");
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(R"(
    module Machine {
      interface I { void A(); void B(); void C(); string Peek(); };
      module COSM_FSM {
        states { S0, S1, S2 };
        initial S0;
        transition S0 A S1;
        transition S1 B S2;
        transition S2 C S0;
        transition S1 A S1;
        transition S2 A S1;
      };
    };
  )"));
  auto object = std::make_shared<rpc::ServiceObject>(sid);
  for (const char* op : {"A", "B", "C"}) {
    object->on(op, [](const std::vector<Value>&) { return Value::null(); });
  }
  object->on("Peek", [](const std::vector<Value>&) { return Value::string("x"); });
  auto ref = server.add(object);

  // Two clients: one enforcing locally, one trusting the server.
  core::GenericClient enforcing(net);
  core::GenericClientOptions lax_options;
  lax_options.enforce_fsm = false;
  core::GenericClient lax(net, lax_options);
  core::Binding local = enforcing.bind(ref);
  core::Binding remote = lax.bind(ref);

  Rng rng(GetParam());
  static const char* ops[] = {"A", "B", "C", "Peek"};
  for (int i = 0; i < 200; ++i) {
    const char* op = ops[rng.below(4)];
    bool local_ok = true, remote_ok = true;
    try {
      local.invoke(op, {});
    } catch (const ProtocolError&) {
      local_ok = false;
    }
    try {
      remote.invoke(op, {});
    } catch (const RemoteFault&) {
      remote_ok = false;
    }
    EXPECT_EQ(local_ok, remote_ok) << "op " << op << " at step " << i;
    EXPECT_EQ(local.state(), remote.state()) << "diverged at step " << i;
  }
  // The enforcing client never paid a round trip for a rejection:
  EXPECT_GT(local.local_rejections(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsmWalk, ::testing::Values(3, 17, 99));

// --- transport equivalence: identical dynamic calls produce identical
// results over in-proc and TCP. ---

TEST(TransportEquivalence, SameResultsOnBothTransports) {
  auto build = [](rpc::RpcServer& server) {
    auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(R"(
      module Echo {
        typedef struct { string s; long n; sequence<double> xs; } Blob_t;
        interface I { Blob_t Echo([in] Blob_t b); };
      };
    )"));
    auto object = std::make_shared<rpc::ServiceObject>(sid);
    object->on("Echo", [](const std::vector<Value>& args) { return args.at(0); });
    return server.add(object);
  };

  rpc::InProcNetwork inproc;
  rpc::RpcServer s1(inproc, "host");
  auto ref1 = build(s1);

  rpc::TcpNetwork tcp;
  rpc::RpcServer s2(tcp, "host");
  auto ref2 = build(s2);

  core::GenericClient c1(inproc);
  core::GenericClient c2(tcp);
  core::Binding b1 = c1.bind(ref1);
  core::Binding b2 = c2.bind(ref2);
  EXPECT_EQ(*b1.sid(), *b2.sid());

  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    std::vector<Value> xs;
    for (std::uint64_t j = 0; j < rng.below(6); ++j) {
      xs.push_back(Value::real(rng.uniform()));
    }
    Value blob = Value::structure(
        "Blob_t", {{"s", Value::string(rng.ident(8))},
                   {"n", Value::integer(rng.range(-1000, 1000))},
                   {"xs", Value::sequence(std::move(xs))}});
    Value r1 = b1.invoke("Echo", {blob});
    Value r2 = b2.invoke("Echo", {blob});
    EXPECT_EQ(r1, r2);
    EXPECT_EQ(r1, blob);
  }
}

// --- SID wire-transfer property: random SIDs survive encode/decode as
// values (the browser-registration path). ---

class SidWireTransfer : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SidWireTransfer, RandomSidsSurviveTheWire) {
  Rng rng(GetParam());
  for (int i = 0; i < 25; ++i) {
    auto sid = std::make_shared<sidl::Sid>(cosm::testing::random_sid(rng));
    Value v = Value::sid(sid);
    Value back = wire::decode_value(wire::encode_value(v));
    EXPECT_EQ(*back.as_sid(), *sid) << sidl::print_sid(*sid);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SidWireTransfer, ::testing::Values(5, 25, 125));

}  // namespace
}  // namespace cosm
