// SID printer: Sid model -> canonical SIDL source text.
//
// Printing is how SIDs travel: a SID is transferred over the wire in its
// SIDL source form and re-parsed on receipt (§3.1 "interface descriptions
// are regarded as objects which can be communicated").  The printer is the
// exact inverse of the parser for the canonical form:
// parse_sid(print_sid(s)) == s for every well-formed s, including unknown
// extension modules, which are re-emitted verbatim.

#pragma once

#include <string>

#include "sidl/sid.h"

namespace cosm::sidl {

/// Render the SID as canonical SIDL text.
std::string print_sid(const Sid& sid);

/// Render a typespec the way the printer does inside a SID (named types are
/// referenced by name, anonymous ones expanded inline).
std::string print_type(const TypeDesc& type);

}  // namespace cosm::sidl
