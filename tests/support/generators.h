// Property-test generators: random TypeDescs, SIDs and conforming Values,
// all driven by the deterministic cosm::Rng so failures reproduce from the
// seed printed by the test.

#pragma once

#include <string>

#include "common/rng.h"
#include "sidl/sid.h"
#include "sidl/type_desc.h"
#include "wire/value.h"

namespace cosm::testing {

struct GenOptions {
  /// Maximum nesting depth of generated types.
  int max_depth = 3;
  /// Maximum struct fields / enum labels / sequence elements.
  int max_width = 4;
  /// Allow ServiceRef / Sid leaf types (off for contexts that cannot carry
  /// them, e.g. trader attributes).
  bool allow_ref_types = true;
  /// Allow named enum/struct leaves.  Must be off for types nested inside a
  /// SID typedef: the printer references named types by name, and a nested
  /// name with no top-level declaration would not re-parse.
  bool allow_named_types = true;
};

/// A random, self-contained type description.
sidl::TypePtr random_type(Rng& rng, const GenOptions& options = {},
                          int depth = 0);

/// A random value conforming to `type`.
wire::Value random_value(Rng& rng, const sidl::TypeDesc& type,
                         const GenOptions& options = {});

/// A random well-formed SID: named types, operations over them, optional
/// FSM / trader export / annotations / unknown extensions.
sidl::Sid random_sid(Rng& rng, const GenOptions& options = {});

}  // namespace cosm::testing
