#include "rpc/server.h"

#include "common/error.h"
#include "common/id.h"
#include "wire/codec.h"
#include "wire/marshal.h"

namespace cosm::rpc {

RpcServer::RpcServer(Network& network, const std::string& host_hint,
                     ServerOptions options)
    : network_(network), options_(options) {
  endpoint_ = network_.listen(host_hint, [this](const Bytes& frame) {
    return handle(frame);
  });
}

RpcServer::~RpcServer() { network_.unlisten(endpoint_); }

sidl::ServiceRef RpcServer::add(ServiceObjectPtr object) {
  if (!object) throw ContractError("RpcServer::add: null service object");
  sidl::ServiceRef ref;
  ref.id = next_name("svc");
  ref.endpoint = endpoint_;
  ref.interface_name = object->sid()->name;
  std::lock_guard lock(mutex_);
  services_[ref.id] = std::move(object);
  return ref;
}

void RpcServer::remove(const sidl::ServiceRef& ref) {
  std::lock_guard lock(mutex_);
  services_.erase(ref.id);
}

ServiceObjectPtr RpcServer::find(const std::string& service_id) const {
  std::lock_guard lock(mutex_);
  auto it = services_.find(service_id);
  return it == services_.end() ? nullptr : it->second;
}

Bytes RpcServer::handle(const Bytes& frame) {
  std::uint64_t request_id = 0;
  try {
    Message request = Message::decode(frame);
    request_id = request.request_id;
    if (request.type != MsgType::Request) {
      throw RpcError("server received a non-request message");
    }
    return handle_message(request);
  } catch (const std::exception& e) {
    {
      std::lock_guard lock(mutex_);
      ++faults_;
    }
    return Message::make_fault(request_id, e.what()).encode();
  }
}

Bytes RpcServer::handle_message(const Message& request) {
  {
    std::lock_guard lock(mutex_);
    ++requests_;
    if (options_.at_most_once) {
      auto key = std::make_pair(request.session, request.request_id);
      auto it = replay_.find(key);
      if (it != replay_.end()) return it->second;
    }
  }

  ServiceObjectPtr service = find(request.target);
  if (!service) {
    throw NotFound("no service instance '" + request.target +
                   "' at this endpoint");
  }

  const bool infrastructure =
      !request.operation.empty() && request.operation[0] == '_';

  wire::Value result;
  if (request.operation == "_get_sid") {
    // Built-in SID transfer (Fig. 3): every hosted service can hand out its
    // interface description without the implementor writing anything.
    result = wire::Value::sid(service->sid());
  } else if (infrastructure) {
    wire::Value args_value = wire::decode_value(request.body);
    result = service->dispatch(request.session, request.operation,
                               args_value.elements());
  } else {
    const sidl::OperationDesc* op = service->sid()->find_operation(request.operation);
    if (op == nullptr) {
      throw NotFound("service '" + service->sid()->name +
                     "' has no operation '" + request.operation + "'");
    }
    std::vector<wire::Value> args = wire::unmarshal_arguments(*op, request.body);
    result = service->dispatch(request.session, request.operation, args);
    wire::ensure_conforms(result, *op->result);
  }

  Bytes encoded = Message::response(request.request_id, wire::encode_value(result)).encode();

  if (options_.at_most_once) {
    std::lock_guard lock(mutex_);
    auto key = std::make_pair(request.session, request.request_id);
    if (replay_.emplace(key, encoded).second) {
      replay_order_.push_back(key);
      if (replay_order_.size() > options_.replay_cache_capacity) {
        replay_.erase(replay_order_.front());
        replay_order_.erase(replay_order_.begin());
      }
    }
  }
  return encoded;
}

}  // namespace cosm::rpc
