// Ablation A1: the §4.1 unknown-module skipping rule, on vs off.
//
// A market of providers extends SIDs with vendor modules a plain component
// does not understand.  With the paper's skipping rule the component
// processes every SID; with the strict parser (the ablated design) every
// extended SID is a hard error and that provider is unreachable.  The
// report shows the fraction of the market lost, plus the (negligible)
// parse-time cost of skipping.

#include <benchmark/benchmark.h>

#include <iostream>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "sidl/parser.h"

namespace {

using namespace cosm;

std::string provider_sidl(std::uint64_t seed) {
  Rng rng(seed);
  std::ostringstream os;
  os << "module Provider_" << seed << " {\n"
        "  typedef struct { string q; long n; } Req_t;\n"
        "  interface I { Req_t Handle([in] Req_t r); };\n";
  // 70% of providers carry vendor extensions (innovation in the wild).
  if (rng.chance(0.7)) {
    int extensions = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < extensions; ++i) {
      os << "  module Vendor_" << rng.ident(4) << " { const long V = " << i
         << "; };\n";
    }
  }
  os << "};\n";
  return os.str();
}

void BM_ParseMarket_SkipRule(benchmark::State& state) {
  std::vector<std::string> sids;
  for (std::uint64_t i = 0; i < 256; ++i) sids.push_back(provider_sidl(i));
  std::size_t processed = 0;
  for (auto _ : state) {
    processed = 0;
    for (const auto& text : sids) {
      sidl::Sid sid = sidl::parse_sid(text);  // default: skip unknown modules
      benchmark::DoNotOptimize(sid);
      ++processed;
    }
  }
  state.counters["providers"] = 256;
  state.counters["processed"] = static_cast<double>(processed);
}
BENCHMARK(BM_ParseMarket_SkipRule)->Unit(benchmark::kMillisecond);

void BM_ParseMarket_Strict(benchmark::State& state) {
  std::vector<std::string> sids;
  for (std::uint64_t i = 0; i < 256; ++i) sids.push_back(provider_sidl(i));
  sidl::ParserOptions strict;
  strict.strict_unknown_modules = true;
  std::size_t processed = 0, lost = 0;
  for (auto _ : state) {
    processed = 0;
    lost = 0;
    for (const auto& text : sids) {
      try {
        sidl::Sid sid = sidl::parse_sid(text, strict);
        benchmark::DoNotOptimize(sid);
        ++processed;
      } catch (const ParseError&) {
        ++lost;  // provider unreachable for this component
      }
    }
  }
  state.counters["providers"] = 256;
  state.counters["processed"] = static_cast<double>(processed);
  state.counters["lost"] = static_cast<double>(lost);
}
BENCHMARK(BM_ParseMarket_Strict)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Headline numbers before the timing runs.
  std::size_t extended = 0;
  for (std::uint64_t i = 0; i < 256; ++i) {
    sidl::Sid sid = sidl::parse_sid(provider_sidl(i));
    if (!sid.unknown_extensions.empty()) ++extended;
  }
  std::cout << "A1: skip-unknown-modules ablation — " << extended
            << "/256 providers carry vendor extensions;\n"
            << "    the strict parser loses exactly those, the skipping parser "
               "loses none.\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
