#!/usr/bin/env bash
# Build and run the test suite under the sanitizers wired to COSM_SANITIZE.
#
#   tools/run_sanitizers.sh            # thread + address/undefined
#   tools/run_sanitizers.sh thread     # just ThreadSanitizer
#   tools/run_sanitizers.sh address    # just AddressSanitizer + UBSan
#
# Each sanitizer gets its own build tree (build-tsan / build-asan) next to
# the source so the regular build stays untouched.

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
modes=("$@")
if [ ${#modes[@]} -eq 0 ]; then
  modes=(thread address)
fi

for mode in "${modes[@]}"; do
  case "$mode" in
    thread)  dir="$root/build-tsan" ;;
    address) dir="$root/build-asan" ;;
    *) echo "unknown sanitizer '$mode' (expected: thread, address)" >&2; exit 2 ;;
  esac
  echo "=== $mode sanitizer: configuring $dir ==="
  cmake -B "$dir" -S "$root" -DCOSM_SANITIZE="$mode" >/dev/null
  echo "=== $mode sanitizer: building ==="
  cmake --build "$dir" -j "$(nproc)" >/dev/null
  echo "=== $mode sanitizer: running tests ==="
  ctest --test-dir "$dir" --output-on-failure
done
