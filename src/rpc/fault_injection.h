// Deterministic fault injection for any Network (testing decorator).
//
// FaultInjectingNetwork wraps an inner transport and, per call, rolls a
// seeded SplitMix64 die against a FaultProfile: the request may be failed
// immediately (injected connection error), dropped (the PendingCall is never
// settled — the caller sees only its own deadline, exactly like a lost
// datagram), duplicated (the frame is delivered twice, exercising the
// at-most-once replay cache) or delayed.  Profiles can differ per endpoint,
// so one flaky federation link can live next to healthy ones.
//
// All randomness flows through one explicitly seeded Rng, so a given seed
// yields the same fault schedule on every run — failure paths become
// ordinary deterministic tests.  `fail_next(n)` bypasses the dice entirely
// for tests that need an exact failure count.
//
// CAUTION: a *dropped* call never settles.  Callers must carry a deadline
// (every COSM channel does); a deadline-free blocking get() on a dropped
// call would wait forever.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "rpc/network.h"

namespace cosm::rpc {

/// Per-endpoint fault probabilities; all default to "no faults".
struct FaultProfile {
  /// Probability the request vanishes (PendingCall never settles).
  double drop = 0.0;
  /// Probability the call fails immediately with an injected RpcError.
  double fail = 0.0;
  /// Probability the frame is delivered twice (duplicate request).
  double duplicate = 0.0;
  /// Probability of an added `delay_for` pause before delivery.
  double delay = 0.0;
  std::chrono::milliseconds delay_for{10};

  bool quiet() const noexcept {
    return drop <= 0 && fail <= 0 && duplicate <= 0 && delay <= 0;
  }
};

class FaultInjectingNetwork final : public Network {
 public:
  FaultInjectingNetwork(Network& inner, std::uint64_t seed,
                        FaultProfile profile = {})
      : inner_(inner), rng_(seed), default_profile_(profile) {}

  std::string listen(const std::string& hint, FrameHandler handler) override {
    return inner_.listen(hint, std::move(handler));
  }
  void unlisten(const std::string& endpoint) override {
    inner_.unlisten(endpoint);
  }
  PendingCallPtr call_async(const std::string& endpoint, const Bytes& request,
                            const CallContext& ctx) override;
  std::string scheme() const override { return inner_.scheme(); }
  /// Decorators are transparent to instrumentation: the wrapped
  /// transport's counters, untouched by injected faults.
  NetworkStats stats() const override { return inner_.stats(); }

  /// Profile applied to endpoints without a specific override.
  void set_default_profile(FaultProfile profile);
  /// Override the profile for one endpoint (e.g. one bad federation link).
  void set_profile(const std::string& endpoint, FaultProfile profile);
  void clear_profiles();

  /// Deterministically fail the next `calls` calls (any endpoint),
  /// regardless of profiles.  For exact-failure-count tests.
  void fail_next(int calls);

  // --- instrumentation ---
  std::uint64_t calls_total() const noexcept { return calls_.load(); }
  std::uint64_t injected_drops() const noexcept { return drops_.load(); }
  std::uint64_t injected_failures() const noexcept { return failures_.load(); }
  std::uint64_t injected_duplicates() const noexcept { return duplicates_.load(); }
  std::uint64_t injected_delays() const noexcept { return delays_.load(); }

 private:
  Network& inner_;
  mutable std::mutex mutex_;  // guards rng_ and the profile maps
  Rng rng_;
  FaultProfile default_profile_;
  std::map<std::string, FaultProfile> per_endpoint_;
  std::atomic<int> fail_next_{0};
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> delays_{0};
};

}  // namespace cosm::rpc
