# Empty dependencies file for test_interface_repository.
# This may be replaced when dependencies are built.
