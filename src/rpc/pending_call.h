// The client-side handle of an in-flight call: a small future.
//
// A transport's call_async() returns a PendingCall immediately; the transport
// later settles it exactly once with either the response frame or an error.
// Callers can block on get() (with a deadline) or attach a completion
// callback; both styles compose, and the blocking Network::call() is just
// call_async() + get().
//
// A timed-out get() abandons the call without tearing anything down: the
// transport still settles the handle when the response eventually arrives (or
// the connection dies), and the late result is simply dropped.

#pragma once

#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "rpc/call_context.h"

namespace cosm::rpc {

class PendingCall {
 public:
  /// Called exactly once on settlement: `response` is non-null on success,
  /// `error` non-null on failure.  May run on a transport thread.
  using Callback = std::function<void(const Bytes* response,
                                      std::exception_ptr error)>;

  PendingCall() = default;
  PendingCall(const PendingCall&) = delete;
  PendingCall& operator=(const PendingCall&) = delete;

  // --- transport side ---

  /// Settle with a response.  Later settlements are ignored.
  void complete(Bytes response);
  /// Settle with an error.  Later settlements are ignored.
  void fail(std::exception_ptr error);
  /// Hook run when a blocking get() gives up on the deadline; lets the
  /// transport retract work that has not started yet (e.g. cancel a queued
  /// loopback delivery) so abandoned calls do not clog the pool.
  void set_cancel_hook(std::function<void()> hook);

  // --- caller side ---

  bool done() const;

  /// Wait for settlement until `ctx`'s deadline; returns the response or
  /// rethrows the transport/remote error.  Throws cosm::RpcError("… timed
  /// out") when the deadline passes first; the call stays in flight.
  Bytes get(const CallContext& ctx);
  Bytes get(std::chrono::milliseconds timeout);

  /// Attach a completion callback; runs inline when already settled.
  void on_complete(Callback callback);

 private:
  void settle(Bytes response, std::exception_ptr error);

  mutable std::mutex mutex_;
  std::condition_variable settled_cv_;
  std::function<void()> cancel_hook_;
  std::vector<Callback> callbacks_;
  Bytes response_;
  std::exception_ptr error_;
  bool settled_ = false;
};

using PendingCallPtr = std::shared_ptr<PendingCall>;

/// A PendingCall already settled with an error (for synchronous failures
/// inside call_async, which must never throw).
PendingCallPtr failed_call(std::exception_ptr error);

}  // namespace cosm::rpc
