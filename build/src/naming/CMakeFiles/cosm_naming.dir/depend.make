# Empty dependencies file for cosm_naming.
# This may be replaced when dependencies are built.
