#include "rpc/multicast.h"

#include <memory>

#include "common/error.h"
#include "rpc/channel.h"

namespace cosm::rpc {

std::vector<MulticastOutcome> multicast_call(Network& network,
                                             const std::vector<sidl::ServiceRef>& members,
                                             const std::string& operation,
                                             const std::vector<wire::Value>& args,
                                             MulticastOptions options) {
  // Fan out: issue every member's request before collecting any reply.  A
  // channel per member keeps sessions (and server-side FSM state) distinct,
  // exactly as the sequential sweep did.
  struct InFlight {
    std::unique_ptr<RpcChannel> channel;  // keeps the session alive
    PendingReplyPtr reply;
    std::string issue_error;  // non-empty when the request never launched
  };
  std::vector<InFlight> calls;
  calls.reserve(members.size());
  for (const auto& member : members) {
    InFlight in_flight;
    try {
      in_flight.channel = std::make_unique<RpcChannel>(
          network, member,
          ChannelOptions{options.timeout, options.retry, options.idempotent});
      in_flight.reply = in_flight.channel->call_async(operation, args);
    } catch (const Error& e) {
      in_flight.issue_error = e.what();
    }
    calls.push_back(std::move(in_flight));
  }

  // Collect in member order and cut at the quorum point, so the outcome
  // list is identical to a sequential sweep's regardless of completion
  // order.
  std::vector<MulticastOutcome> outcomes;
  outcomes.reserve(members.size());
  std::size_t successes = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    MulticastOutcome outcome;
    outcome.member = members[i];
    if (!calls[i].issue_error.empty()) {
      outcome.error = calls[i].issue_error;
    } else {
      try {
        outcome.result = calls[i].reply->get();
        ++successes;
      } catch (const Error& e) {
        outcome.error = e.what();
      }
      outcome.attempts = calls[i].reply->attempts();
    }
    outcomes.push_back(std::move(outcome));
    if (options.quorum > 0 && successes >= options.quorum) break;
  }
  return outcomes;
}

}  // namespace cosm::rpc
