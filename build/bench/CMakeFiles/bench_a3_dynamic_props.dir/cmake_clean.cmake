file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_dynamic_props.dir/bench_a3_dynamic_props.cpp.o"
  "CMakeFiles/bench_a3_dynamic_props.dir/bench_a3_dynamic_props.cpp.o.d"
  "bench_a3_dynamic_props"
  "bench_a3_dynamic_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_dynamic_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
