// Experiment C1 (§2.2): time-to-market of an innovative service.
//
// Two dimensions:
//   1. Simulated calendar time until the first successful client call,
//      using the establishment model (type standardisation, per-trader
//      registration, client stub development vs SID authoring + browser
//      registration).
//   2. Real mechanical steps: the number of registry interactions and the
//      measured wall time of the live system performing each path's
//      registration + first call.
//
// Expected shape ("being the first pays most"): the mediation path reaches
// the first call orders of magnitude sooner, and the gap grows with
// federation size; once the type exists (mature market), the trader path's
// residual cost is per-trader registration + client development.

#include <chrono>
#include <iomanip>
#include <iostream>

#include "core/cost_meter.h"
#include "core/mediation.h"
#include "core/runtime.h"
#include "rpc/inproc.h"
#include "services/car_rental.h"
#include "services/market.h"
#include "sidl/parser.h"
#include "trader/sid_export.h"

using namespace cosm;
using Clock = std::chrono::steady_clock;

namespace {

double us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

void print_outcome(const std::string& label,
                   const services::EstablishmentOutcome& outcome) {
  std::cout << "  " << label << "\n";
  for (const auto& phase : outcome.phases) {
    std::cout << "    " << std::left << std::setw(44) << phase.name
              << std::right << std::setw(7) << phase.hours << " h\n";
  }
  std::cout << "    " << std::left << std::setw(44) << "TOTAL" << std::right
            << std::setw(7) << outcome.total_hours() << " h  ("
            << outcome.total_hours() / 24 << " days)\n";
}

}  // namespace

int main() {
  services::CarRentalConfig provider;
  provider.name = "Innovator";
  provider.tradable = true;
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid(services::car_rental_sidl(provider)));
  const std::size_t ops = sid->operations.size();

  // --- part 1: simulated calendar time ---
  std::cout << "C1: time to first successful client call (simulated calendar)\n\n";
  services::EstablishmentModel model;

  print_outcome("trader path, new service type, 1 trader:",
                services::trader_path_establishment(model, ops, 1, false));
  std::cout << "\n";
  print_outcome("trader path, new service type, 8-trader federation:",
                services::trader_path_establishment(model, ops, 8, false));
  std::cout << "\n";
  print_outcome("trader path, type already standardised:",
                services::trader_path_establishment(model, ops, 1, true));
  std::cout << "\n";
  print_outcome("mediation path (COSM):",
                services::mediation_path_establishment(model));

  auto fresh = services::trader_path_establishment(model, ops, 1, false);
  auto mediated = services::mediation_path_establishment(model);
  std::cout << "\n  speedup (fresh trader path / mediation path): "
            << fresh.total_hours() / mediated.total_hours() << "x\n\n";

  // --- part 2: mechanical steps + live wall time ---
  std::cout << "C1b: live-system registration + first call\n\n";

  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);
  core::TransitionCostMeter trader_meter, mediation_meter;

  // Trader path: standardise type, export offer, client imports and calls.
  auto t0 = Clock::now();
  runtime.trader().types().add(trader::service_type_from_sid(*sid));
  trader_meter.count_registration();  // type registration
  auto ref = runtime.host(services::make_car_rental_service(provider));
  trader::export_sid_offer(runtime.trader(), *sid, ref);
  trader_meter.count_registration();  // offer export
  trader_meter.count_stub_units(ops);  // pre-COSM client development

  trader::ImportRequest request;
  request.service_type = services::car_rental_service_type_name();
  auto offers = runtime.trader().import(request);
  core::GenericClient client(net);
  core::Binding via_trader = client.bind(offers.front().ref);
  via_trader.invoke("ListModels", {});
  double trader_us = us_since(t0);

  // Mediation path: register SID at browser, generic client browses + calls.
  t0 = Clock::now();
  auto ref2 = runtime.offer_mediated("Innovator2",
                                     services::make_car_rental_service(provider));
  (void)ref2;
  mediation_meter.count_registration();  // browser registration — that's it
  core::MediationSession session(client, runtime.browser_ref());
  core::Binding via_browser = session.select("Innovator2");
  mediation_meter.count_sid_transfer();
  via_browser.invoke("ListModels", {});
  double mediation_us = us_since(t0);

  std::cout << std::fixed << std::setprecision(0);
  std::cout << "  path        developer-cost-units   live-us-to-first-call\n";
  std::cout << "  trader      " << std::setw(12) << trader_meter.developer_cost()
            << std::setw(22) << trader_us << "\n";
  std::cout << "  mediation   " << std::setw(12)
            << mediation_meter.developer_cost() << std::setw(22) << mediation_us
            << "\n";
  std::cout << "\n  trader meter:    " << trader_meter.summary() << "\n";
  std::cout << "  mediation meter: " << mediation_meter.summary() << "\n";

  bool shape_holds = fresh.total_hours() > 100 * mediated.total_hours() &&
                     trader_meter.developer_cost() > mediation_meter.developer_cost();
  std::cout << (shape_holds ? "\n  RESULT: shape holds (mediation >>100x faster "
                              "to market, lower developer cost)\n"
                            : "\n  RESULT: FAILURE — expected shape violated\n");
  return shape_holds ? 0 : 1;
}
