#include "rpc/server.h"

#include "common/error.h"
#include "common/id.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/call_context.h"
#include "wire/codec.h"
#include "wire/marshal.h"
#include "wire/plan_cache.h"

namespace cosm::rpc {

RpcServer::RpcServer(Network& network, const std::string& host_hint,
                     ServerOptions options)
    : network_(network), options_(options) {
  if (options_.at_most_once) {
    replay_ = std::make_unique<ReplayCache>(options_.replay_cache_capacity);
  }
  endpoint_ = network_.listen(host_hint, [this](const Bytes& frame) {
    return handle(frame);
  });
}

RpcServer::~RpcServer() { network_.unlisten(endpoint_); }

sidl::ServiceRef RpcServer::add(ServiceObjectPtr object) {
  if (!object) throw ContractError("RpcServer::add: null service object");
  sidl::ServiceRef ref;
  ref.id = next_name("svc");
  ref.endpoint = endpoint_;
  ref.interface_name = object->sid()->name;
  // A (re-)registered SID must never be served by a stale compiled plan —
  // drop anything the cache may hold for this Sid object (covers address
  // reuse after a previous instance died).
  wire::PlanCache::instance().invalidate(object->sid().get());
  std::unique_lock lock(services_mutex_);
  services_[ref.id] = std::move(object);
  return ref;
}

void RpcServer::remove(const sidl::ServiceRef& ref) {
  ServiceObjectPtr object;
  {
    std::unique_lock lock(services_mutex_);
    auto it = services_.find(ref.id);
    if (it == services_.end()) return;
    object = std::move(it->second);
    services_.erase(it);
  }
  wire::PlanCache::instance().invalidate(object->sid().get());
}

ServiceObjectPtr RpcServer::find(const std::string& service_id) const {
  std::shared_lock lock(services_mutex_);
  auto it = services_.find(service_id);
  return it == services_.end() ? nullptr : it->second;
}

Bytes RpcServer::handle(const Bytes& frame) {
  std::uint64_t request_id = 0;
  try {
    // Non-owning decode: string fields and the body alias `frame`, which
    // the transport keeps alive for the whole handler call — the request
    // body is never copied out of the reassembled frame.
    MessageView request = MessageView::decode(BytesView(frame.data(), frame.size()));
    request_id = request.request_id;
    if (request.type != MsgType::Request) {
      throw RpcError("server received a non-request message");
    }
    return handle_message(request);
  } catch (const std::exception& e) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    auto& reg = obs::metrics();
    if (reg.enabled()) {
      static obs::Counter& faults = reg.counter("rpc.server.faults");
      faults.add();
    }
    return Message::make_fault(request_id, e.what()).encode();
  }
}

Bytes RpcServer::handle_message(const MessageView& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  auto& reg = obs::metrics();
  auto& tr = obs::tracer();
  if (reg.enabled()) {
    static obs::Counter& requests = reg.counter("rpc.server.requests");
    requests.add();
  }
  // The small header fields are materialised (session keys the replay cache
  // and FSM state; operation/target feed lookups and error texts); the body
  // stays a view into the frame.
  const std::string operation(request.operation);
  const std::string session(request.session);
  ReplayCache::Key replay_key{session, request.request_id};
  if (replay_) {
    Bytes cached;
    switch (replay_->lookup(replay_key, &cached)) {
      case ReplayCache::Lookup::Hit:
        if (tr.enabled()) {
          // A replayed duplicate still shows up in the trace: a zero-work
          // server span under the retrying attempt that triggered it.
          tr.finish(tr.start_span("rpc.server:" + operation, request.trace_id,
                                  request.parent_span_id),
                    "replay-hit");
        }
        return cached;
      case ReplayCache::Lookup::DuplicateLost:
        // The journal proves this request ran before a restart, but its
        // response frame did not survive.  Re-executing would break
        // at-most-once; a fault is the only honest answer.
        throw RpcError("request " + std::to_string(request.request_id) +
                       " of session '" + session +
                       "' already executed before restart; response lost");
      case ReplayCache::Lookup::Miss:
        break;
    }
  }

  // Rebuild the caller's remaining budget from the wire fields and make it
  // the current context for the duration of dispatch, so nested outbound
  // calls made by the handler inherit it.
  CallContext ctx;
  if (request.deadline_ms > 0) {
    ctx.deadline = CallContext::Clock::now() +
                   std::chrono::milliseconds(request.deadline_ms);
  }
  ctx.hop_budget = request.hop_budget;
  if (ctx.expired()) {
    throw RpcError("deadline exceeded before dispatch of '" + operation + "'");
  }

  obs::Span span;
  std::chrono::steady_clock::time_point started{};
  if (reg.enabled()) started = std::chrono::steady_clock::now();
  if (tr.enabled()) {
    span = tr.start_span("rpc.server:" + operation, request.trace_id,
                         request.parent_span_id);
  }
  // The dispatch context carries the request's trace downstream: nested
  // outbound calls (federation hops, dynamic-property fetches) parent their
  // client spans under this server span.
  ctx.trace_id = span.valid() ? span.trace_id : request.trace_id;
  ctx.span_id = span.valid() ? span.span_id : request.parent_span_id;
  // Replay identity rides the dispatch context: a durable trader handler
  // tags every journalled mutation with it, so the persisted replay
  // high-water mark and the mutation commit atomically (one WAL record).
  ctx.session = session;
  ctx.request_id = request.request_id;
  CallContextScope scope(ctx);

  try {
    const std::string target(request.target);
    ServiceObjectPtr service = find(target);
    if (!service) {
      throw NotFound("no service instance '" + target + "' at this endpoint");
    }

    const bool infrastructure = !operation.empty() && operation[0] == '_';

    // The response frame is assembled in ONE arena: message header, a
    // patched body-length slot, the marshalled result, trailing fault field
    // — no intermediate body Bytes, no re-concatenation.
    Message response;
    response.type = MsgType::Response;
    response.request_id = request.request_id;
    ByteWriter w;
    const std::size_t slot = response.encode_begin_body(w);

    if (operation == "_get_sid") {
      // Built-in SID transfer (Fig. 3): every hosted service can hand out its
      // interface description without the implementor writing anything.
      wire::encode_value(w, wire::Value::sid(service->sid()));
    } else if (infrastructure) {
      ByteReader br(request.body);
      wire::Value args_value = wire::decode_value(br);
      if (!br.at_end()) {
        throw WireError("decode_value: " + std::to_string(br.remaining()) +
                        " trailing bytes");
      }
      wire::Value result =
          service->dispatch(session, operation, args_value.elements());
      wire::encode_value(w, result);
    } else {
      const sidl::OperationDesc* op = service->sid()->find_operation(operation);
      if (op == nullptr) {
        throw NotFound("service '" + service->sid()->name +
                       "' has no operation '" + operation + "'");
      }
      // Compiled path: unmarshal+validate the argument frame and
      // validate+marshal the result through the cached operation plan.
      auto plan = wire::PlanCache::instance().operation_plan(service->sid(), *op);
      std::vector<wire::Value> args = plan->unmarshal_arguments(request.body);
      wire::Value result = service->dispatch(session, operation, args);
      plan->result().marshal_into(w, result);
    }

    response.encode_end_body(w, slot);
    Bytes encoded = w.take();

    if (replay_) replay_->insert(replay_key, encoded);
    if (span.valid()) tr.finish(std::move(span));
    if (reg.enabled() && started != std::chrono::steady_clock::time_point{}) {
      static obs::Histogram& dispatch = reg.histogram("rpc.server.dispatch_us");
      dispatch.record_us(obs::elapsed_us(started));
    }
    return encoded;
  } catch (const std::exception& e) {
    if (span.valid()) tr.finish_error(std::move(span), e.what());
    throw;
  }
}

}  // namespace cosm::rpc
