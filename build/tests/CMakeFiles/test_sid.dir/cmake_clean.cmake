file(REMOVE_RECURSE
  "CMakeFiles/test_sid.dir/test_sid.cpp.o"
  "CMakeFiles/test_sid.dir/test_sid.cpp.o.d"
  "test_sid"
  "test_sid.pdb"
  "test_sid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
