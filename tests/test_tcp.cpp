#include "rpc/tcp.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/error.h"

namespace cosm::rpc {
namespace {

TEST(Tcp, ListenAssignsLoopbackEndpoint) {
  TcpNetwork net;
  std::string ep = net.listen("ignored", [](const Bytes& b) { return b; });
  EXPECT_EQ(ep.rfind("tcp://127.0.0.1:", 0), 0u);
}

TEST(Tcp, EchoRoundTrip) {
  TcpNetwork net;
  auto ep = net.listen("", [](const Bytes& b) { return b; });
  Bytes payload = {10, 20, 30};
  EXPECT_EQ(net.call(ep, payload, std::chrono::milliseconds(2000)), payload);
}

TEST(Tcp, EmptyFramesSupported) {
  TcpNetwork net;
  auto ep = net.listen("", [](const Bytes&) { return Bytes{}; });
  EXPECT_EQ(net.call(ep, {}, std::chrono::milliseconds(2000)), Bytes{});
}

TEST(Tcp, LargeFrameRoundTrip) {
  TcpNetwork net;
  auto ep = net.listen("", [](const Bytes& b) { return b; });
  Bytes big(1 << 20);  // 1 MiB
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  EXPECT_EQ(net.call(ep, big, std::chrono::milliseconds(10000)), big);
}

TEST(Tcp, SequentialCallsReuseConnection) {
  TcpNetwork net;
  int served = 0;
  auto ep = net.listen("", [&served](const Bytes& b) {
    ++served;
    return b;
  });
  for (int i = 0; i < 20; ++i) {
    net.call(ep, {static_cast<std::uint8_t>(i)}, std::chrono::milliseconds(2000));
  }
  EXPECT_EQ(served, 20);
}

TEST(Tcp, UnknownPortFailsWithRpcError) {
  TcpNetwork net;
  // Reserve a port, then close it so nothing listens there.
  std::string ep = net.listen("", [](const Bytes& b) { return b; });
  net.unlisten(ep);
  EXPECT_THROW(net.call(ep, {1}, std::chrono::milliseconds(500)), RpcError);
}

TEST(Tcp, MultipleListenersCoexist) {
  TcpNetwork net;
  auto a = net.listen("", [](const Bytes&) { return Bytes{1}; });
  auto b = net.listen("", [](const Bytes&) { return Bytes{2}; });
  EXPECT_EQ(net.call(a, {}, std::chrono::milliseconds(2000)), Bytes{1});
  EXPECT_EQ(net.call(b, {}, std::chrono::milliseconds(2000)), Bytes{2});
}

TEST(Tcp, ConcurrentClientsFromThreads) {
  TcpNetwork server_net;
  auto ep = server_net.listen("", [](const Bytes& b) { return b; });

  constexpr int kThreads = 4;
  constexpr int kCalls = 10;
  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TcpNetwork client_net;  // own connection cache per thread
      for (int i = 0; i < kCalls; ++i) {
        Bytes payload = {static_cast<std::uint8_t>(t), static_cast<std::uint8_t>(i)};
        if (client_net.call(ep, payload, std::chrono::milliseconds(5000)) ==
            payload) {
          ++ok[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(ok[t], kCalls);
}

TEST(Tcp, MalformedEndpointRejected) {
  TcpNetwork net;
  EXPECT_THROW(net.call("inproc://nope", {}, std::chrono::milliseconds(100)),
               RpcError);
  EXPECT_THROW(net.call("tcp://noport", {}, std::chrono::milliseconds(100)),
               RpcError);
}

TEST(Tcp, MalformedPortRejectedWithRpcError) {
  TcpNetwork net;
  // std::stoi failure modes must never leak std::invalid_argument /
  // std::out_of_range out of the transport.
  for (const char* ep : {"tcp://127.0.0.1:notaport", "tcp://127.0.0.1:",
                         "tcp://127.0.0.1:99999999999999999999",
                         "tcp://127.0.0.1:70000", "tcp://127.0.0.1:0",
                         "tcp://127.0.0.1:12ab"}) {
    EXPECT_THROW(net.call(ep, {1}, std::chrono::milliseconds(100)), RpcError)
        << ep;
  }
}

TEST(Tcp, ThrowingHandlerDoesNotKillServer) {
  TcpNetwork net;
  // A handler leaking a non-COSM exception used to escape the serving
  // thread's catch(const Error&) and std::terminate the whole process.  Now
  // it drops that connection only; the listener keeps accepting.
  auto ep = net.listen("", [](const Bytes& b) -> Bytes {
    if (!b.empty() && b[0] == 0xFF) throw std::runtime_error("not a cosm::Error");
    return b;
  });
  TcpNetwork poison_client;
  EXPECT_THROW(
      poison_client.call(ep, {0xFF}, std::chrono::milliseconds(2000)),
      RpcError);
  // Fresh client: the server must still answer.
  TcpNetwork healthy_client;
  Bytes payload = {1, 2, 3};
  EXPECT_EQ(healthy_client.call(ep, payload, std::chrono::milliseconds(2000)),
            payload);
}

TEST(Tcp, SendRetryRedialsAfterConnectionDeath) {
  TcpNetwork net;
  auto ep = net.listen("", [](const Bytes& b) -> Bytes {
    if (!b.empty() && b[0] == 0xFF) throw std::runtime_error("poison");
    return b;
  });
  TcpNetwork client;
  Bytes payload = {7};
  ASSERT_EQ(client.call(ep, payload, std::chrono::milliseconds(2000)), payload);
  // Poison the pooled connection: the server drops it.
  EXPECT_THROW(client.call(ep, {0xFF}, std::chrono::milliseconds(2000)),
               RpcError);
  // Give the event loop a moment to observe the hangup and mark the pooled
  // connection dead, so the next call exercises reap-or-retry.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // The next call must succeed — dead connection reaped or write retried.
  EXPECT_EQ(client.call(ep, payload, std::chrono::milliseconds(2000)), payload);
}

TEST(Tcp, FinishedServingConnectionsAreReaped) {
  TcpNetwork net;
  auto ep = net.listen("", [](const Bytes& b) { return b; });
  // `net` is a pure server here, so stats().connections counts its live
  // accepted connections.  The invariant under test: connections of
  // departed clients must not linger in the server's accounting.
  for (int i = 0; i < 8; ++i) {
    TcpNetwork client;
    Bytes payload = {static_cast<std::uint8_t>(i)};
    ASSERT_EQ(client.call(ep, payload, std::chrono::milliseconds(2000)),
              payload);
  }  // client destructor closes its connections
  // Probe until the reactor has observed every hangup.
  TcpNetwork prober;
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(prober.call(ep, {9}, std::chrono::milliseconds(2000)), Bytes{9});
    if (net.stats().connections <= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_LE(net.stats().connections, 2u);
}

TEST(Tcp, ServingConnectionsReapedWithoutFurtherAccepts) {
  // Regression (kept from the thread-per-connection era, where finished
  // serving threads were only reaped on the *next* accept): closed
  // connections must leave the server's accounting without any further
  // accept — after every client disconnects the count must drain on its
  // own.
  TcpNetwork net;
  auto ep = net.listen("", [](const Bytes& b) { return b; });
  {
    // A burst of concurrent connections so the listener holds several
    // accepted connections at once.
    constexpr int kClients = 6;
    std::vector<std::unique_ptr<TcpNetwork>> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.push_back(std::make_unique<TcpNetwork>());
      Bytes payload = {static_cast<std::uint8_t>(i)};
      ASSERT_EQ(clients.back()->call(ep, payload, std::chrono::milliseconds(2000)),
                payload);
    }
    EXPECT_GE(net.stats().connections, static_cast<std::size_t>(kClients));
  }  // destructors close every client connection — no further accepts follow
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (net.stats().connections > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(net.stats().connections, 1u);
}

TEST(Tcp, UnlistenMidCallFailsCleanly) {
  TcpNetwork net;
  auto ep = net.listen("", [](const Bytes& b) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return b;
  });
  TcpNetwork client;
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    net.unlisten(ep);
  });
  // The server goes away mid-call; the client must surface an error (or a
  // served reply that raced the shutdown), never hang or crash.
  try {
    client.call(ep, {1}, std::chrono::milliseconds(3000));
  } catch (const RpcError&) {
    // expected in the common interleaving
  }
  stopper.join();
  // The endpoint is really gone.
  EXPECT_THROW(client.call(ep, {2}, std::chrono::milliseconds(500)), RpcError);
}

TEST(Tcp, SchemeIsTcp) {
  TcpNetwork net;
  EXPECT_EQ(net.scheme(), "tcp");
}

TEST(Tcp, UnlistenTwiceIsNoop) {
  TcpNetwork net;
  auto ep = net.listen("", [](const Bytes& b) { return b; });
  net.unlisten(ep);
  EXPECT_NO_THROW(net.unlisten(ep));
}

}  // namespace
}  // namespace cosm::rpc
