// Shared intermediate representation of the trader's two expression
// languages: boolean constraints (trader/constraint.h) and weighted scoring
// expressions (trader/preference.h's `score:` preferences).  Both the
// tree-walking reference evaluators and the bytecode compiler in
// trader/cexpr_vm.h consume these nodes, so the ASTs live in one internal
// header instead of a .cpp-private namespace.
//
// Everything here is an implementation detail of the trader; the public
// surface stays Constraint / Preference.

#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "trader/attributes.h"

namespace cosm::trader::detail {

// ---- constraint AST ----

enum class NodeKind { And, Or, Not, Exists, Cmp, In, True, False };
enum class CmpOp { Eq, Ne, Lt, Le, Gt, Ge };

/// One operand of a comparison: either a literal or an attribute name that
/// resolves at evaluation time (falling back to a label literal when the
/// attribute is absent everywhere).
struct Operand {
  enum class Kind { Ident, Int, Float, String };
  Kind kind = Kind::Ident;
  std::string text;   // Ident name or String payload
  std::int64_t i = 0;
  double f = 0.0;
};

struct Node {
  NodeKind kind;
  std::unique_ptr<Node> lhs;  // And/Or/Not
  std::unique_ptr<Node> rhs;  // And/Or
  std::string attr;           // Exists
  CmpOp op = CmpOp::Eq;       // Cmp
  Operand a, b;               // Cmp; `a` also the In subject
  std::vector<Operand> set;   // In members
};

/// Tree-walking reference evaluation (the semantics the bytecode VM must
/// reproduce bit for bit; differential tests compare against this).
bool eval_node(const Node& n, const AttrMap& attrs);

/// Attribute/identifier names the expression references.
void collect_attrs(const Node& n, std::set<std::string>& out);

// ---- scoring AST ----
//
//   score: 0.7 * inv(latency_ms) + 0.3 * throughput
//          penalty 0.5 unless (Insured == true)
//
// Attributes resolve to their numeric value (int or float); a missing or
// non-numeric attribute yields NaN, which propagates through arithmetic and
// collapses to -inf at ranking time (such offers sort last, mirroring the
// legacy min/max missing-attribute rule).  Each `penalty W unless (C)`
// clause subtracts W from the score when the boolean constraint C does not
// hold — soft constraints alongside the hard filter.

struct ScoreNode {
  enum class Kind {
    Const, Attr,                    // leaves
    Neg, Inv, Abs, Sqrt, Log,       // unary (lhs)
    Add, Sub, Mul, Div, Min, Max,   // binary (lhs, rhs)
  };
  Kind kind = Kind::Const;
  double value = 0.0;               // Const
  std::string attr;                 // Attr
  std::unique_ptr<ScoreNode> lhs, rhs;
};

struct PenaltyClause {
  double weight = 0.0;
  std::unique_ptr<Node> unless;
};

struct ScoreIr {
  std::unique_ptr<ScoreNode> expr;
  std::vector<PenaltyClause> penalties;
};

/// Tree-walking reference scorer (what the score bytecode must match).
double eval_score(const ScoreIr& ir, const AttrMap& attrs);

/// Ranking key: NaN scores collapse to -inf so they order last,
/// deterministically.
double score_rank_key(double score);

/// Attribute names the scoring expression reads (its own expression plus
/// every penalty constraint).
void collect_score_attrs(const ScoreIr& ir, std::set<std::string>& out);

/// Parse the body of a `score:` preference (the text after the keyword).
/// Grammar:
///   spec    := expr penalty*
///   penalty := "penalty" number "unless" "(" constraint ")"
///   expr    := term (("+"|"-") term)*
///   term    := unary (("*"|"/") unary)*
///   unary   := "-" unary | primary
///   primary := NUMBER | IDENT | FUNC "(" expr ("," expr)? ")" | "(" expr ")"
/// with FUNC one of inv/abs/sqrt/log (unary) and min/max (binary).
/// Throws cosm::ParseError.
ScoreIr parse_score(const std::string& text);

}  // namespace cosm::trader::detail
