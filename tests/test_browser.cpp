#include "core/browser.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "rpc/channel.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "sidl/parser.h"

namespace cosm::core {
namespace {

using wire::Value;

sidl::SidPtr weather_sid() {
  return std::make_shared<sidl::Sid>(sidl::parse_sid(R"(
    module WeatherOracle {
      interface I { double GetForecast([in] string city); };
      module COSM_Annotations {
        annotate GetForecast "weather forecast for a city";
      };
    };
  )"));
}

sidl::ServiceRef ref_for(const std::string& id) {
  return {id, "inproc://host", "WeatherOracle"};
}

TEST(Browser, RegisterListDescribe) {
  ServiceBrowser browser("b");
  browser.register_service("Weather", weather_sid(), ref_for("w1"));
  ASSERT_EQ(browser.size(), 1u);
  auto entries = browser.list();
  EXPECT_EQ(entries[0].name, "Weather");
  EXPECT_EQ(browser.describe("Weather").sid->name, "WeatherOracle");
  EXPECT_THROW(browser.describe("Ghost"), NotFound);
}

TEST(Browser, ReRegistrationReplaces) {
  ServiceBrowser browser("b");
  browser.register_service("Weather", weather_sid(), ref_for("w1"));
  browser.register_service("Weather", weather_sid(), ref_for("w2"));
  EXPECT_EQ(browser.size(), 1u);
  EXPECT_EQ(browser.describe("Weather").ref.id, "w2");
  EXPECT_EQ(browser.registrations_total(), 2u);
}

TEST(Browser, WithdrawRemoves) {
  ServiceBrowser browser("b");
  browser.register_service("Weather", weather_sid(), ref_for("w1"));
  browser.withdraw("Weather");
  EXPECT_EQ(browser.size(), 0u);
  EXPECT_THROW(browser.withdraw("Weather"), NotFound);
}

TEST(Browser, AdmissionChecks) {
  ServiceBrowser browser("b");
  EXPECT_THROW(browser.register_service("", weather_sid(), ref_for("x")),
               ContractError);
  EXPECT_THROW(browser.register_service("W", nullptr, ref_for("x")),
               ContractError);
  EXPECT_THROW(browser.register_service("W", weather_sid(), sidl::ServiceRef{}),
               ContractError);
  // Ill-formed SIDs rejected at registration (garbage in the market hurts
  // everyone).
  auto bad = std::make_shared<sidl::Sid>(sidl::parse_sid(R"(
    module M {
      interface I { void Op(); };
      module COSM_FSM { states { A }; initial GHOST; };
    };
  )"));
  EXPECT_THROW(browser.register_service("Bad", bad, ref_for("x")), TypeError);
}

TEST(Browser, SearchOverNamesOpsAndAnnotations) {
  ServiceBrowser browser("b");
  browser.register_service("Weather", weather_sid(), ref_for("w1"));
  EXPECT_EQ(browser.search("weather").size(), 1u);    // entry/service name
  EXPECT_EQ(browser.search("getfore").size(), 1u);    // operation name, ci
  EXPECT_EQ(browser.search("FORECAST").size(), 1u);   // annotation text, ci
  EXPECT_TRUE(browser.search("stock").empty());
  EXPECT_EQ(browser.search("").size(), 1u);           // empty matches all
}

TEST(Browser, FacadeOverRpc) {
  rpc::InProcNetwork net;
  rpc::RpcServer server(net, "host");
  ServiceBrowser browser("b");
  auto browser_ref = server.add(make_browser_service(browser));
  rpc::RpcChannel channel(net, browser_ref);

  channel.call("Register", {Value::string("Weather"), Value::sid(weather_sid()),
                            Value::service_ref(ref_for("w1"))});
  Value listed = channel.call("List", {});
  ASSERT_EQ(listed.elements().size(), 1u);
  EXPECT_EQ(listed.elements()[0].at("name").as_string(), "Weather");

  Value described = channel.call("Describe", {Value::string("Weather")});
  EXPECT_EQ(described.as_sid()->name, "WeatherOracle");

  Value hits = channel.call("Search", {Value::string("forecast")});
  EXPECT_EQ(hits.elements().size(), 1u);

  channel.call("WithdrawEntry", {Value::string("Weather")});
  EXPECT_TRUE(channel.call("List", {}).elements().empty());
}

TEST(Browser, CascadedBrowserIsJustAnotherEntry) {
  rpc::InProcNetwork net;
  rpc::RpcServer server(net, "host");
  ServiceBrowser root("root");
  ServiceBrowser nested("nested");
  auto nested_ref = server.add(make_browser_service(nested));
  // Fig. 4: "the browser may also act as an application service as well and
  // register its own SID at yet another browser".
  root.register_service("MoreServices",
                        server.find(nested_ref.id)->sid(), nested_ref);
  EXPECT_EQ(root.describe("MoreServices").sid->name, "BrowserService");
}

TEST(Browser, NeedsName) {
  EXPECT_THROW(ServiceBrowser{""}, ContractError);
}

}  // namespace
}  // namespace cosm::core
