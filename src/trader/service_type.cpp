#include "trader/service_type.h"

#include "common/error.h"
#include "wire/marshal.h"

namespace cosm::trader {

const AttributeDef* ServiceType::find_attribute(const std::string& attr_name) const {
  for (const auto& a : attributes) {
    if (a.name == attr_name) return &a;
  }
  return nullptr;
}

void ServiceTypeManager::add(ServiceType type) {
  if (type.name.empty()) throw ContractError("service type needs a name");
  for (const auto& a : type.attributes) {
    if (!a.type) {
      throw ContractError("attribute '" + a.name + "' of type '" + type.name +
                          "' has no type description");
    }
  }
  std::function<void(const ServiceType&)> notify;
  ServiceType added;
  {
    std::lock_guard lock(mutex_);
    if (types_.count(type.name)) {
      throw ContractError("service type '" + type.name + "' already registered");
    }
    if (!type.supertype.empty() && !types_.count(type.supertype)) {
      throw ContractError("supertype '" + type.supertype + "' of '" + type.name +
                          "' is not registered");
    }
    auto grown = std::make_shared<std::unordered_set<std::string>>(*ever_declared_);
    for (const auto& a : type.attributes) grown->insert(a.name);
    if (on_add_) {
      notify = on_add_;
      added = type;
    }
    types_.emplace(type.name, std::move(type));
    ever_declared_ = std::move(grown);
    closure_cache_.clear();
    layout_epoch_.fetch_add(1, std::memory_order_release);
  }
  if (notify) notify(added);
}

void ServiceTypeManager::remove(const std::string& name) {
  std::function<void(const std::string&)> notify;
  {
    std::lock_guard lock(mutex_);
    if (!types_.count(name)) throw NotFound("unknown service type '" + name + "'");
    for (const auto& [other_name, other] : types_) {
      if (other.supertype == name) {
        throw ContractError("cannot remove service type '" + name + "': '" +
                            other_name + "' derives from it");
      }
    }
    types_.erase(name);
    closure_cache_.clear();
    // ever_declared_ is deliberately not shrunk (see header).
    layout_epoch_.fetch_add(1, std::memory_order_release);
    notify = on_remove_;
  }
  if (notify) notify(name);
}

void ServiceTypeManager::set_listener(
    std::function<void(const ServiceType&)> on_add,
    std::function<void(const std::string&)> on_remove) {
  std::lock_guard lock(mutex_);
  on_add_ = std::move(on_add);
  on_remove_ = std::move(on_remove);
}

std::shared_ptr<const std::unordered_set<std::string>>
ServiceTypeManager::ever_declared_attrs() const {
  std::lock_guard lock(mutex_);
  return ever_declared_;
}

bool ServiceTypeManager::has(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return types_.count(name) > 0;
}

ServiceType ServiceTypeManager::get(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = types_.find(name);
  if (it == types_.end()) throw NotFound("unknown service type '" + name + "'");
  return it->second;
}

std::vector<std::string> ServiceTypeManager::names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(types_.size());
  for (const auto& [name, type] : types_) out.push_back(name);
  return out;
}

std::vector<ServiceType> ServiceTypeManager::all() const {
  std::lock_guard lock(mutex_);
  std::vector<ServiceType> out;
  out.reserve(types_.size());
  for (const auto& [name, type] : types_) out.push_back(type);
  return out;
}

bool ServiceTypeManager::is_subtype_locked(const std::string& sub,
                                           const std::string& base) const {
  std::string current = sub;
  // Supertype chains are acyclic by construction (a type's supertype must
  // already exist when the type is added), so this walk terminates.
  while (!current.empty()) {
    if (current == base) return true;
    auto it = types_.find(current);
    if (it == types_.end()) return false;
    current = it->second.supertype;
  }
  return false;
}

SubtypeClosurePtr ServiceTypeManager::subtype_closure_locked(
    const std::string& base) const {
  auto cached = closure_cache_.find(base);
  if (cached != closure_cache_.end()) {
    closure_hits_.fetch_add(1, std::memory_order_relaxed);
    return cached->second;
  }
  auto closure = std::make_shared<SubtypeClosure>();
  for (const auto& [name, type] : types_) {
    if (is_subtype_locked(name, base)) {
      closure->types.push_back(name);
      closure->members.insert(name);
    }
  }
  closure_builds_.fetch_add(1, std::memory_order_relaxed);
  closure_cache_.emplace(base, closure);
  return closure;
}

SubtypeClosurePtr ServiceTypeManager::subtype_closure(
    const std::string& base) const {
  std::lock_guard lock(mutex_);
  return subtype_closure_locked(base);
}

bool ServiceTypeManager::is_subtype(const std::string& sub,
                                    const std::string& base) const {
  // The reflexive case holds even for names that were never registered
  // (matching the plain chain walk); the closure covers registered types.
  if (sub == base) return true;
  std::lock_guard lock(mutex_);
  return subtype_closure_locked(base)->members.count(sub) > 0;
}

std::vector<std::string> ServiceTypeManager::subtypes_of(
    const std::string& base) const {
  std::lock_guard lock(mutex_);
  return subtype_closure_locked(base)->types;
}

std::vector<AttributeDef> ServiceTypeManager::schema_of(
    const std::string& type_name) const {
  // Collect the schema along the supertype chain: a subtype inherits its
  // base's attributes.
  std::vector<AttributeDef> schema;
  std::lock_guard lock(mutex_);
  std::string current = type_name;
  while (!current.empty()) {
    auto it = types_.find(current);
    if (it == types_.end()) {
      throw NotFound("unknown service type '" + current + "'");
    }
    for (const auto& a : it->second.attributes) schema.push_back(a);
    current = it->second.supertype;
  }
  return schema;
}

void ServiceTypeManager::check_offer(const std::string& type_name,
                                     const AttrMap& attrs,
                                     const std::set<std::string>& dynamic_names) const {
  std::vector<AttributeDef> schema = schema_of(type_name);

  for (const auto& def : schema) {
    auto it = attrs.find(def.name);
    if (it == attrs.end()) {
      if (def.required && !dynamic_names.count(def.name)) {
        throw TypeError("offer of type '" + type_name +
                        "' is missing required attribute '" + def.name + "'");
      }
      continue;
    }
    if (!wire::conforms(it->second, *def.type)) {
      throw TypeError("attribute '" + def.name + "' of offer (type '" +
                      type_name + "') does not conform to " + def.type->describe());
    }
  }
  for (const auto& [name, value] : attrs) {
    bool declared = false;
    for (const auto& def : schema) {
      if (def.name == name) declared = true;
    }
    if (!declared) {
      throw TypeError("offer declares attribute '" + name +
                      "' which type '" + type_name + "' does not define");
    }
  }
  for (const auto& name : dynamic_names) {
    bool declared = false;
    for (const auto& def : schema) {
      if (def.name == name) declared = true;
    }
    if (!declared) {
      throw TypeError("offer declares dynamic attribute '" + name +
                      "' which type '" + type_name + "' does not define");
    }
    if (attrs.count(name)) {
      throw TypeError("attribute '" + name +
                      "' is both static and dynamic in the same offer");
    }
  }
}

void check_signature(const ServiceType& type, const sidl::Sid& sid) {
  for (const auto& required : type.signature) {
    const sidl::OperationDesc* offered = sid.find_operation(required.name);
    if (offered == nullptr) {
      throw TypeError("SID '" + sid.name + "' does not implement operation '" +
                      required.name + "' required by service type '" +
                      type.name + "'");
    }
    // Reuse SID-level operation conformance: wrap both in minimal SIDs.
    sidl::Sid base, sub;
    base.name = sub.name = "sig";
    base.operations.push_back(required);
    sub.operations.push_back(*offered);
    if (!sidl::conforms_to(sub, base)) {
      throw TypeError("operation '" + required.name + "' of SID '" + sid.name +
                      "' does not conform to the signature of service type '" +
                      type.name + "'");
    }
  }
}

std::size_t ServiceTypeManager::size() const {
  std::lock_guard lock(mutex_);
  return types_.size();
}

}  // namespace cosm::trader
