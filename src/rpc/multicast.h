// Multicast / broadcast calls (the "Multicast/Broadcast" box of Fig. 6).
//
// COSM uses group communication for trader federation queries and for
// broadcasting withdrawals.  This implementation delivers the same request
// to every member reference and gathers per-member outcomes; a failing
// member never aborts the sweep.
//
// Delivery is concurrent: every member's request is issued asynchronously
// up front, then outcomes are collected in member order.  Results are
// deterministic — the outcome list is truncated at the member whose success
// satisfies the quorum, exactly where a sequential sweep would have
// stopped — but the wall-clock cost is one round trip, not members-count
// round trips.

#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "rpc/network.h"
#include "rpc/retry.h"
#include "sidl/service_ref.h"
#include "wire/value.h"

namespace cosm::rpc {

struct MulticastOutcome {
  sidl::ServiceRef member;
  /// Present on success.
  std::optional<wire::Value> result;
  /// Non-empty on failure (fault text or transport error).
  std::string error;
  /// Call attempts made for this member (> 1 when the retry policy fired).
  int attempts = 1;

  bool ok() const noexcept { return result.has_value(); }
};

struct MulticastOptions {
  std::chrono::milliseconds timeout{5000};
  /// Stop after this many successful responses (0 = all members).  A "first
  /// responder wins" pattern uses 1.  Members are still contacted in
  /// parallel; the outcome list is truncated at the quorum point in member
  /// order, matching what a sequential sweep would return.
  std::size_t quorum = 0;
  /// Per-member retry: a member that fails transiently is retried within
  /// its share of the timeout instead of surfacing a failed outcome.
  /// Disabled by default.
  RetryPolicy retry{};
  /// Marks the multicast operation safe to reissue (see ChannelOptions).
  bool idempotent = false;
};

/// Deliver `operation(args)` to every member concurrently; returns one
/// outcome per member up to the quorum point, in member order.
std::vector<MulticastOutcome> multicast_call(Network& network,
                                             const std::vector<sidl::ServiceRef>& members,
                                             const std::string& operation,
                                             const std::vector<wire::Value>& args,
                                             MulticastOptions options = {});

}  // namespace cosm::rpc
