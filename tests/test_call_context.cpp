#include "rpc/call_context.h"

#include <gtest/gtest.h>

#include <thread>

namespace cosm::rpc {
namespace {

using namespace std::chrono_literals;

TEST(CallContext, DefaultHasNoDeadline) {
  CallContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.expired());
  EXPECT_EQ(ctx.hop_budget, -1);
  // "No deadline" still reports a usable (sentinel) remaining budget.
  EXPECT_GT(ctx.remaining(), 1h);
}

TEST(CallContext, WithTimeoutSetsDeadline) {
  CallContext ctx = CallContext::with_timeout(50ms);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_FALSE(ctx.expired());
  EXPECT_LE(ctx.remaining(), 50ms);
  EXPECT_GT(ctx.remaining(), 0ms);
}

TEST(CallContext, NonPositiveTimeoutMeansNone) {
  EXPECT_FALSE(CallContext::with_timeout(0ms).has_deadline());
  EXPECT_FALSE(CallContext::with_timeout(-5ms).has_deadline());
}

TEST(CallContext, ExpiresAfterDeadlinePasses) {
  CallContext ctx = CallContext::with_timeout(1ms);
  std::this_thread::sleep_for(5ms);
  EXPECT_TRUE(ctx.expired());
  EXPECT_EQ(ctx.remaining(), 0ms);
}

TEST(CallContext, ShrunkTightensButNeverExtends) {
  // No deadline + cap: gains the cap.
  CallContext none;
  EXPECT_TRUE(none.shrunk(100ms).has_deadline());
  EXPECT_LE(none.shrunk(100ms).remaining(), 100ms);

  // Far deadline + near cap: cap wins.
  CallContext far = CallContext::with_timeout(10min);
  EXPECT_LE(far.shrunk(100ms).remaining(), 100ms);

  // Near deadline + far cap: the existing deadline is kept.
  CallContext near = CallContext::with_timeout(50ms);
  EXPECT_LE(near.shrunk(10min).remaining(), 50ms);
}

TEST(CallContext, ShrunkPreservesHopBudget) {
  CallContext ctx;
  ctx.hop_budget = 3;
  EXPECT_EQ(ctx.shrunk(100ms).hop_budget, 3);
}

TEST(CallContext, AfterHopDecrements) {
  CallContext ctx;
  ctx.hop_budget = 2;
  EXPECT_EQ(ctx.after_hop().hop_budget, 1);
  EXPECT_EQ(ctx.after_hop().after_hop().hop_budget, 0);
  // Unlimited stays unlimited.
  CallContext unlimited;
  EXPECT_EQ(unlimited.after_hop().hop_budget, -1);
}

TEST(CallContext, ScopeInstallsAndRestores) {
  EXPECT_FALSE(current_call_context().has_deadline());
  {
    CallContextScope outer(CallContext::with_timeout(1h));
    EXPECT_TRUE(current_call_context().has_deadline());
    {
      CallContext inner_ctx;
      inner_ctx.hop_budget = 5;
      CallContextScope inner(inner_ctx);
      EXPECT_EQ(current_call_context().hop_budget, 5);
      EXPECT_FALSE(current_call_context().has_deadline());
    }
    // Inner scope restored the outer context.
    EXPECT_TRUE(current_call_context().has_deadline());
    EXPECT_EQ(current_call_context().hop_budget, -1);
  }
  EXPECT_FALSE(current_call_context().has_deadline());
}

TEST(CallContext, ContextIsPerThread) {
  CallContextScope scope(CallContext::with_timeout(1h));
  bool other_thread_has_deadline = true;
  std::thread([&] {
    other_thread_has_deadline = current_call_context().has_deadline();
  }).join();
  EXPECT_FALSE(other_thread_has_deadline);
  EXPECT_TRUE(current_call_context().has_deadline());
}

}  // namespace
}  // namespace cosm::rpc
