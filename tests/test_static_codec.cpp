#include "wire/static_codec.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosm::wire::static_stub {
namespace {

TEST(StaticCodec, SelectCarRequestRoundTrip) {
  SelectCarRequest m{CarModel::VW_Golf, "1994-06-21", 3};
  ByteWriter w;
  encode(w, m);
  ByteReader r(w.bytes());
  EXPECT_EQ(decode_select_car_request(r), m);
  EXPECT_TRUE(r.at_end());
}

TEST(StaticCodec, SelectCarReplyRoundTrip) {
  SelectCarReply m{true, 195.0, "offer-1"};
  ByteWriter w;
  encode(w, m);
  ByteReader r(w.bytes());
  EXPECT_EQ(decode_select_car_reply(r), m);
}

TEST(StaticCodec, BookCarRequestWithExtras) {
  BookCarRequest m{"offer-1", "K. Mueller", {"gps", "child-seat"}};
  ByteWriter w;
  encode(w, m);
  ByteReader r(w.bytes());
  EXPECT_EQ(decode_book_car_request(r), m);
}

TEST(StaticCodec, BookCarReplyRoundTrip) {
  BookCarReply m{true, 4711};
  ByteWriter w;
  encode(w, m);
  ByteReader r(w.bytes());
  EXPECT_EQ(decode_book_car_reply(r), m);
}

TEST(StaticCodec, InvalidModelDiscriminantRejected) {
  ByteWriter w;
  w.u8(9);  // out-of-range CarModel
  w.str("d");
  w.svarint(1);
  ByteReader r(w.bytes());
  EXPECT_THROW(decode_select_car_request(r), WireError);
}

TEST(StaticCodec, TruncatedInputRejected) {
  SelectCarRequest m{CarModel::AUDI, "date", 2};
  ByteWriter w;
  encode(w, m);
  Bytes b = w.bytes();
  b.resize(b.size() - 2);
  ByteReader r(b);
  EXPECT_THROW(decode_select_car_request(r), WireError);
}

}  // namespace
}  // namespace cosm::wire::static_stub
