file(REMOVE_RECURSE
  "CMakeFiles/cosm_shell.dir/cosm_shell.cpp.o"
  "CMakeFiles/cosm_shell.dir/cosm_shell.cpp.o.d"
  "cosm_shell"
  "cosm_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
