file(REMOVE_RECURSE
  "CMakeFiles/test_service_type.dir/test_service_type.cpp.o"
  "CMakeFiles/test_service_type.dir/test_service_type.cpp.o.d"
  "test_service_type"
  "test_service_type.pdb"
  "test_service_type[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
