#include "rpc/channel.h"

#include "common/error.h"
#include "common/id.h"
#include "rpc/message.h"
#include "wire/codec.h"
#include "wire/marshal.h"

namespace cosm::rpc {

RpcChannel::RpcChannel(Network& network, sidl::ServiceRef ref, ChannelOptions options)
    : network_(network),
      ref_(std::move(ref)),
      options_(options),
      session_(next_name("sess")) {
  if (!ref_.valid()) throw ContractError("RpcChannel needs a valid service reference");
}

wire::Value RpcChannel::roundtrip(const std::string& operation, Bytes body) {
  Message request =
      Message::request(next_request_++, ref_.id, operation, std::move(body));
  request.session = session_;
  Bytes reply_frame = network_.call(ref_.endpoint, request.encode(), options_.timeout);
  Message reply = Message::decode(reply_frame);
  ++calls_;
  switch (reply.type) {
    case MsgType::Response:
      return wire::decode_value(reply.body);
    case MsgType::Fault:
      throw RemoteFault(reply.fault);
    case MsgType::Request:
      break;
  }
  throw RpcError("unexpected message type in reply");
}

wire::Value RpcChannel::call(const std::string& operation,
                             std::vector<wire::Value> args) {
  return roundtrip(operation,
                   wire::encode_value(wire::Value::sequence(std::move(args))));
}

wire::Value RpcChannel::call(const sidl::OperationDesc& op,
                             std::vector<wire::Value> args) {
  Bytes body = wire::marshal_arguments(op, args);
  wire::Value result = roundtrip(op.name, std::move(body));
  wire::ensure_conforms(result, *op.result);
  return result;
}

sidl::SidPtr RpcChannel::fetch_sid() {
  wire::Value v = call("_get_sid", {});
  return v.as_sid();
}

}  // namespace cosm::rpc
