#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/error.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "trader/facade.h"
#include "trader/trader.h"

namespace cosm::trader {
namespace {

using sidl::TypeDesc;
using wire::Value;

ServiceType rental_type() {
  ServiceType t;
  t.name = "CarRentalService";
  t.attributes = {{"ChargePerDay", TypeDesc::float_(), true}};
  return t;
}

AttrMap charge(double c) { return {{"ChargePerDay", Value::real(c)}}; }

sidl::ServiceRef mk_ref(const std::string& id) {
  return {id, "inproc://host", "CarRentalService"};
}

std::unique_ptr<Trader> make_trader(const std::string& name) {
  auto t = std::make_unique<Trader>(name);
  t->types().add(rental_type());
  return t;
}

ImportRequest all_rentals(int hops) {
  ImportRequest r;
  r.service_type = "CarRentalService";
  r.hop_limit = hops;
  return r;
}

TEST(Federation, HopLimitZeroStaysLocal) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->export_offer("CarRentalService", mk_ref("local"), charge(10));
  b->export_offer("CarRentalService", mk_ref("remote"), charge(20));

  EXPECT_EQ(a->import(all_rentals(0)).size(), 1u);
  EXPECT_EQ(a->import(all_rentals(1)).size(), 2u);
}

TEST(Federation, HopLimitBoundsChainDepth) {
  // a -> b -> c: offers only at c.
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto c = make_trader("c");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  b->link("c", std::make_shared<LocalTraderGateway>(*c));
  c->export_offer("CarRentalService", mk_ref("deep"), charge(5));

  EXPECT_EQ(a->import(all_rentals(1)).size(), 0u);
  EXPECT_EQ(a->import(all_rentals(2)).size(), 1u);
}

TEST(Federation, DiamondTopologyDeduplicates) {
  // a -> {b, c} -> d: d's offer reachable twice, returned once.
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto c = make_trader("c");
  auto d = make_trader("d");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->link("c", std::make_shared<LocalTraderGateway>(*c));
  b->link("d", std::make_shared<LocalTraderGateway>(*d));
  c->link("d", std::make_shared<LocalTraderGateway>(*d));
  d->export_offer("CarRentalService", mk_ref("shared"), charge(7));

  auto offers = a->import(all_rentals(2));
  EXPECT_EQ(offers.size(), 1u);
}

TEST(Federation, CyclesTerminateViaHopLimit) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  b->link("a", std::make_shared<LocalTraderGateway>(*a));
  a->export_offer("CarRentalService", mk_ref("at-a"), charge(1));
  b->export_offer("CarRentalService", mk_ref("at-b"), charge(2));

  auto offers = a->import(all_rentals(5));
  EXPECT_EQ(offers.size(), 2u);  // dedup despite ping-pong
}

TEST(Federation, MergedResultsAreRankedGlobally) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->export_offer("CarRentalService", mk_ref("pricey"), charge(90));
  b->export_offer("CarRentalService", mk_ref("bargain"), charge(15));

  ImportRequest request = all_rentals(1);
  request.preference = "min ChargePerDay";
  auto offers = a->import(request);
  ASSERT_EQ(offers.size(), 2u);
  EXPECT_EQ(offers[0].ref.id, "bargain");  // remote offer can win
}

TEST(Federation, MaxMatchesAppliedAfterMerge) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  for (int i = 0; i < 5; ++i) {
    a->export_offer("CarRentalService", mk_ref("a" + std::to_string(i)), charge(50 + i));
    b->export_offer("CarRentalService", mk_ref("b" + std::to_string(i)), charge(10 + i));
  }
  ImportRequest request = all_rentals(1);
  request.preference = "min ChargePerDay";
  request.max_matches = 3;
  auto offers = a->import(request);
  ASSERT_EQ(offers.size(), 3u);
  for (const auto& o : offers) {
    EXPECT_EQ(o.ref.id[0], 'b');  // the three cheapest live at b
  }
}

TEST(Federation, UnknownTypeAtLinkedTraderIsNotFatal) {
  auto a = make_trader("a");
  Trader bare("bare");  // never learned CarRentalService
  a->link("bare", std::make_shared<LocalTraderGateway>(bare));
  a->export_offer("CarRentalService", mk_ref("local"), charge(10));
  EXPECT_EQ(a->import(all_rentals(1)).size(), 1u);
}

TEST(Federation, RemoteGatewayOverRpc) {
  rpc::InProcNetwork net;
  auto local = make_trader("local");
  auto remote = make_trader("remote");
  remote->export_offer("CarRentalService", mk_ref("over-the-wire"), charge(33));

  rpc::RpcServer server(net, "remote-host");
  auto remote_ref = server.add(make_trader_service(*remote));
  local->link("remote", std::make_shared<RemoteTraderGateway>(net, remote_ref));

  auto offers = local->import(all_rentals(1));
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].ref.id, "over-the-wire");
  EXPECT_DOUBLE_EQ(offers[0].attributes.at("ChargePerDay").as_real(), 33.0);
}

TEST(Federation, UnreachableRemoteTraderSkipped) {
  rpc::InProcNetwork net;
  auto local = make_trader("local");
  local->export_offer("CarRentalService", mk_ref("here"), charge(1));
  sidl::ServiceRef dead{"ghost", "inproc://nowhere", "TraderService"};
  local->link("dead", std::make_shared<RemoteTraderGateway>(net, dead));
  EXPECT_EQ(local->import(all_rentals(1)).size(), 1u);
}

TEST(Federation, GatewayDescribe) {
  auto t = make_trader("x");
  EXPECT_EQ(LocalTraderGateway(*t).describe(), "local:x");
}

// --- import_ex: per-link outcomes, degradation, quarantine ---

/// Gateway that fails a configurable number of times, counting invocations.
class FlakyGateway final : public TraderGateway {
 public:
  explicit FlakyGateway(Trader& trader, int failures = 0)
      : trader_(trader), failures_left_(failures) {}

  std::vector<Offer> import(const ImportRequest& request) override {
    ++invocations_;
    if (failures_left_ > 0) {
      --failures_left_;
      throw RpcError("flaky gateway down");
    }
    return trader_.import(request);
  }
  std::string describe() const override { return "flaky:" + trader_.name(); }

  int invocations() const noexcept { return invocations_; }
  void fail_for(int failures) noexcept { failures_left_ = failures; }

 private:
  Trader& trader_;
  std::atomic<int> invocations_{0};
  std::atomic<int> failures_left_;
};

const LinkOutcome* outcome_for(const ImportResult& r, const std::string& link) {
  for (const auto& o : r.links) {
    if (o.link == link) return &o;
  }
  return nullptr;
}

TEST(ImportEx, ReportsPerLinkOutcomes) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto c = make_trader("c");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->link("c", std::make_shared<LocalTraderGateway>(*c));
  a->export_offer("CarRentalService", mk_ref("local"), charge(1));
  b->export_offer("CarRentalService", mk_ref("b1"), charge(2));
  b->export_offer("CarRentalService", mk_ref("b2"), charge(3));

  ImportResult r = a->import_ex(all_rentals(1));
  EXPECT_EQ(r.offers.size(), 3u);
  EXPECT_FALSE(r.degraded());
  ASSERT_EQ(r.links.size(), 2u);
  ASSERT_NE(outcome_for(r, "b"), nullptr);
  EXPECT_TRUE(outcome_for(r, "b")->ok());
  EXPECT_EQ(outcome_for(r, "b")->offers, 2u);
  EXPECT_EQ(outcome_for(r, "c")->offers, 0u);
}

TEST(ImportEx, LocalImportHasNoLinkOutcomes) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->export_offer("CarRentalService", mk_ref("local"), charge(1));
  ImportResult r = a->import_ex(all_rentals(0));  // hop_limit 0: no sweep
  EXPECT_EQ(r.offers.size(), 1u);
  EXPECT_TRUE(r.links.empty());
  EXPECT_FALSE(r.degraded());
}

TEST(ImportEx, FailingLinkYieldsPartialResults) {
  auto a = make_trader("a");
  auto good = make_trader("good");
  auto bad = make_trader("bad");
  good->export_offer("CarRentalService", mk_ref("survivor"), charge(4));
  a->link("good", std::make_shared<LocalTraderGateway>(*good));
  auto flaky = std::make_shared<FlakyGateway>(*bad, 1);
  a->link("bad", flaky);

  ImportResult r = a->import_ex(all_rentals(1));
  ASSERT_EQ(r.offers.size(), 1u);
  EXPECT_EQ(r.offers[0].ref.id, "survivor");
  EXPECT_TRUE(r.degraded());
  EXPECT_EQ(outcome_for(r, "bad")->status, LinkOutcome::Status::Failed);
  EXPECT_NE(outcome_for(r, "bad")->error.find("flaky gateway down"),
            std::string::npos);
  EXPECT_TRUE(outcome_for(r, "good")->ok());
}

TEST(ImportEx, SuccessResetsFailureCount) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto flaky = std::make_shared<FlakyGateway>(*b, 2);
  a->link("b", flaky);
  FederationOptions fed;
  fed.quarantine_threshold = 3;
  a->set_federation_options(fed);

  a->import_ex(all_rentals(1));  // failure 1
  a->import_ex(all_rentals(1));  // failure 2
  EXPECT_EQ(a->link_health("b").consecutive_failures, 2);
  a->import_ex(all_rentals(1));  // success: counter resets
  EXPECT_EQ(a->link_health("b").consecutive_failures, 0);
  EXPECT_FALSE(a->link_health("b").quarantined);
  EXPECT_EQ(a->links_quarantined_total(), 0u);
}

TEST(ImportEx, QuarantinedLinkIsNotQueriedUntilTtlExpires) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  b->export_offer("CarRentalService", mk_ref("back"), charge(9));
  auto flaky = std::make_shared<FlakyGateway>(*b, 2);
  a->link("b", flaky);
  FederationOptions fed;
  fed.quarantine_threshold = 2;
  fed.quarantine_ttl = std::chrono::milliseconds(150);
  a->set_federation_options(fed);

  a->import_ex(all_rentals(1));                 // failure 1
  ImportResult r2 = a->import_ex(all_rentals(1));  // failure 2 -> quarantine
  EXPECT_EQ(outcome_for(r2, "b")->status, LinkOutcome::Status::Failed);
  EXPECT_TRUE(a->link_health("b").quarantined);
  EXPECT_EQ(a->links_quarantined_total(), 1u);

  int before = flaky->invocations();
  ImportResult r3 = a->import_ex(all_rentals(1));
  EXPECT_EQ(outcome_for(r3, "b")->status, LinkOutcome::Status::Quarantined);
  EXPECT_EQ(flaky->invocations(), before);  // skipped, not queried
  EXPECT_TRUE(r3.offers.empty());

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // TTL expired: the link is probed again and has recovered.
  ImportResult r4 = a->import_ex(all_rentals(1));
  EXPECT_EQ(outcome_for(r4, "b")->status, LinkOutcome::Status::Ok);
  EXPECT_EQ(r4.offers.size(), 1u);
  EXPECT_FALSE(a->link_health("b").quarantined);
}

TEST(ImportEx, LinkHealthUnknownLinkThrows) {
  auto a = make_trader("a");
  EXPECT_THROW(a->link_health("nope"), NotFound);
}

// --- bounded-k forwarding on non-scored federated imports ---
// Regression: deterministic preferences used to forward max_matches = 0
// (unbounded) to every link, so remote traders shipped their whole result
// set only for the importer to discard all but k.

/// Gateway that records the request it forwarded and how many offers the
/// remote trader answered with.
class RecordingGateway final : public TraderGateway {
 public:
  explicit RecordingGateway(Trader& trader) : trader_(trader) {}

  std::vector<Offer> import(const ImportRequest& request) override {
    last_request_ = request;
    auto offers = trader_.import(request);
    last_result_size_ = offers.size();
    return offers;
  }
  std::string describe() const override { return "recording:" + trader_.name(); }

  const ImportRequest& last_request() const noexcept { return last_request_; }
  std::size_t last_result_size() const noexcept { return last_result_size_; }

 private:
  Trader& trader_;
  ImportRequest last_request_;
  std::size_t last_result_size_ = 0;
};

TEST(BoundedForward, DeterministicPreferenceForwardsBoundedK) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto recording = std::make_shared<RecordingGateway>(*b);
  a->link("b", recording);
  for (int i = 0; i < 40; ++i) {
    b->export_offer("CarRentalService", mk_ref("b" + std::to_string(i)),
                    charge(10 + i));
  }

  ImportRequest request = all_rentals(1);
  request.preference = "min ChargePerDay";
  request.max_matches = 3;
  auto offers = a->import(request);

  ASSERT_EQ(offers.size(), 3u);
  // The link got a bounded request (k plus duplicate-collision slack), the
  // preference rode along, and the remote answered with at most that many
  // offers instead of all 40.
  EXPECT_EQ(recording->last_request().max_matches, 6u);
  EXPECT_EQ(recording->last_request().preference, "min ChargePerDay");
  EXPECT_LE(recording->last_result_size(), 6u);
}

TEST(BoundedForward, BoundedResultsEqualUnboundedBaseline) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto c = make_trader("c");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->link("c", std::make_shared<LocalTraderGateway>(*c));
  for (int i = 0; i < 20; ++i) {
    a->export_offer("CarRentalService", mk_ref("a" + std::to_string(i)),
                    charge(100 + 3 * i));
    b->export_offer("CarRentalService", mk_ref("b" + std::to_string(i)),
                    charge(101 + 3 * i));
    c->export_offer("CarRentalService", mk_ref("c" + std::to_string(i)),
                    charge(102 + 3 * i));
  }

  // Baseline: the importer ranks the full unbounded merge, then caps.
  ImportRequest unbounded = all_rentals(1);
  unbounded.preference = "min ChargePerDay";
  auto full = a->import(unbounded);
  ASSERT_EQ(full.size(), 60u);

  for (std::size_t k : {1u, 4u, 10u, 25u}) {
    ImportRequest capped = all_rentals(1);
    capped.preference = "min ChargePerDay";
    capped.max_matches = k;
    auto bounded = a->import(capped);
    ASSERT_EQ(bounded.size(), k);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(bounded[i], full[i]) << "k=" << k << " i=" << i;
    }
  }
}

TEST(BoundedForward, MaxPreferenceAlsoForwardsBound) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto recording = std::make_shared<RecordingGateway>(*b);
  a->link("b", recording);
  b->export_offer("CarRentalService", mk_ref("x"), charge(1));

  ImportRequest request = all_rentals(1);
  request.preference = "max ChargePerDay";
  request.max_matches = 2;
  a->import(request);
  EXPECT_EQ(recording->last_request().max_matches, 4u);
  EXPECT_EQ(recording->last_request().preference, "max ChargePerDay");
}

TEST(BoundedForward, RandomPreferenceStaysUnbounded) {
  // `random` ranks links-local subsets differently than the importer's own
  // global shuffle would, so the forwarded request must stay uncapped and
  // unranked for the merge to be a fair sample.
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto recording = std::make_shared<RecordingGateway>(*b);
  a->link("b", recording);
  b->export_offer("CarRentalService", mk_ref("x"), charge(1));

  ImportRequest request = all_rentals(1);
  request.preference = "random";
  request.max_matches = 2;
  a->import(request);
  EXPECT_EQ(recording->last_request().max_matches, 0u);
  EXPECT_TRUE(recording->last_request().preference.empty());
}

TEST(BoundedForward, UncappedRequestStaysUnbounded) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto recording = std::make_shared<RecordingGateway>(*b);
  a->link("b", recording);
  b->export_offer("CarRentalService", mk_ref("x"), charge(1));

  ImportRequest request = all_rentals(1);
  request.preference = "min ChargePerDay";
  a->import(request);  // max_matches = 0: everything
  EXPECT_EQ(recording->last_request().max_matches, 0u);
}

TEST(BoundedForward, DuplicateOffersAtBoundaryStillYieldFullK) {
  // a -> {b, c} where both links front the SAME trader d: every offer
  // arrives twice and dedupes to one.  With k forwarded verbatim the
  // importer could come up short after dedupe; the slack absorbs this.
  auto a = make_trader("a");
  auto d = make_trader("d");
  a->link("left", std::make_shared<LocalTraderGateway>(*d));
  a->link("right", std::make_shared<LocalTraderGateway>(*d));
  for (int i = 0; i < 12; ++i) {
    d->export_offer("CarRentalService", mk_ref("d" + std::to_string(i)),
                    charge(10 + i));
  }

  ImportRequest request = all_rentals(1);
  request.preference = "min ChargePerDay";
  request.max_matches = 5;
  auto offers = a->import(request);
  ASSERT_EQ(offers.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(offers[i].ref.id, "d" + std::to_string(i));  // cheapest five
  }
}

// --- half-open circuit breaker on quarantine expiry ---
// Regression: quarantine expiry used to readmit the link unconditionally;
// now one probe call is admitted and the link only rejoins on success.

TEST(HalfOpen, FailedProbeRequarantinesImmediately) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  b->export_offer("CarRentalService", mk_ref("x"), charge(9));
  auto flaky = std::make_shared<FlakyGateway>(*b, 2);
  a->link("b", flaky);
  FederationOptions fed;
  fed.quarantine_threshold = 2;
  fed.quarantine_ttl = std::chrono::milliseconds(100);
  a->set_federation_options(fed);

  a->import_ex(all_rentals(1));  // failure 1
  a->import_ex(all_rentals(1));  // failure 2 -> quarantine
  ASSERT_TRUE(a->link_health("b").quarantined);

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_TRUE(a->link_health("b").half_open);

  // TTL expired but the link is still down: the probe fails and the link
  // goes straight back into quarantine — no threshold re-accumulation.
  flaky->fail_for(1);
  int before = flaky->invocations();
  ImportResult probe = a->import_ex(all_rentals(1));
  EXPECT_EQ(flaky->invocations(), before + 1);
  EXPECT_EQ(outcome_for(probe, "b")->status, LinkOutcome::Status::Failed);
  EXPECT_TRUE(a->link_health("b").quarantined);
  EXPECT_FALSE(a->link_health("b").half_open);
  EXPECT_EQ(a->links_probed_total(), 1u);

  // Inside the fresh TTL the link is skipped without being called.
  before = flaky->invocations();
  ImportResult skipped = a->import_ex(all_rentals(1));
  EXPECT_EQ(outcome_for(skipped, "b")->status, LinkOutcome::Status::Quarantined);
  EXPECT_EQ(flaky->invocations(), before);

  // After another TTL the next probe succeeds and the link rejoins fully.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ImportResult recovered = a->import_ex(all_rentals(1));
  EXPECT_EQ(outcome_for(recovered, "b")->status, LinkOutcome::Status::Ok);
  EXPECT_EQ(recovered.offers.size(), 1u);
  EXPECT_FALSE(a->link_health("b").quarantined);
  EXPECT_FALSE(a->link_health("b").half_open);
  EXPECT_EQ(a->links_probed_total(), 2u);
}

TEST(HalfOpen, OnlyOneProbeAdmittedConcurrently) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  b->export_offer("CarRentalService", mk_ref("x"), charge(9));

  /// Gateway that blocks inside the probe until released, so a second
  /// import can run while the probe is in flight.
  class BlockingGateway final : public TraderGateway {
   public:
    explicit BlockingGateway(Trader& trader) : trader_(trader) {}
    std::vector<Offer> import(const ImportRequest& request) override {
      ++invocations_;
      if (fail_next_.exchange(false)) throw RpcError("down");
      started_.store(true);
      while (hold_.load()) std::this_thread::yield();
      return trader_.import(request);
    }
    std::string describe() const override { return "blocking"; }
    std::atomic<int> invocations_{0};
    std::atomic<bool> fail_next_{false};
    std::atomic<bool> started_{false};
    std::atomic<bool> hold_{false};
   private:
    Trader& trader_;
  };

  auto gw = std::make_shared<BlockingGateway>(*b);
  a->link("b", gw);
  FederationOptions fed;
  fed.quarantine_threshold = 1;
  fed.quarantine_ttl = std::chrono::milliseconds(50);
  a->set_federation_options(fed);

  gw->fail_next_ = true;
  a->import_ex(all_rentals(1));  // quarantine
  ASSERT_TRUE(a->link_health("b").quarantined);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // First import claims the (blocking) probe; a concurrent import must
  // treat the link as still quarantined rather than piling on.
  gw->hold_.store(true);
  std::thread prober([&] { a->import_ex(all_rentals(1)); });
  while (!gw->started_.load()) std::this_thread::yield();

  ImportResult other = a->import_ex(all_rentals(1));
  EXPECT_EQ(outcome_for(other, "b")->status, LinkOutcome::Status::Quarantined);
  EXPECT_EQ(gw->invocations_.load(), 2);  // the failure + the one probe

  gw->hold_.store(false);
  prober.join();
  EXPECT_FALSE(a->link_health("b").quarantined);
  EXPECT_EQ(a->links_probed_total(), 1u);
}

}  // namespace
}  // namespace cosm::trader
