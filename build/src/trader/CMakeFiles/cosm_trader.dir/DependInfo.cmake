
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trader/attributes.cpp" "src/trader/CMakeFiles/cosm_trader.dir/attributes.cpp.o" "gcc" "src/trader/CMakeFiles/cosm_trader.dir/attributes.cpp.o.d"
  "/root/repo/src/trader/constraint.cpp" "src/trader/CMakeFiles/cosm_trader.dir/constraint.cpp.o" "gcc" "src/trader/CMakeFiles/cosm_trader.dir/constraint.cpp.o.d"
  "/root/repo/src/trader/facade.cpp" "src/trader/CMakeFiles/cosm_trader.dir/facade.cpp.o" "gcc" "src/trader/CMakeFiles/cosm_trader.dir/facade.cpp.o.d"
  "/root/repo/src/trader/preference.cpp" "src/trader/CMakeFiles/cosm_trader.dir/preference.cpp.o" "gcc" "src/trader/CMakeFiles/cosm_trader.dir/preference.cpp.o.d"
  "/root/repo/src/trader/service_type.cpp" "src/trader/CMakeFiles/cosm_trader.dir/service_type.cpp.o" "gcc" "src/trader/CMakeFiles/cosm_trader.dir/service_type.cpp.o.d"
  "/root/repo/src/trader/sid_export.cpp" "src/trader/CMakeFiles/cosm_trader.dir/sid_export.cpp.o" "gcc" "src/trader/CMakeFiles/cosm_trader.dir/sid_export.cpp.o.d"
  "/root/repo/src/trader/trader.cpp" "src/trader/CMakeFiles/cosm_trader.dir/trader.cpp.o" "gcc" "src/trader/CMakeFiles/cosm_trader.dir/trader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpc/CMakeFiles/cosm_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/cosm_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sidl/CMakeFiles/cosm_sidl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
