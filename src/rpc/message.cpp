#include "rpc/message.h"

#include "common/error.h"

namespace cosm::rpc {

std::string to_string(MsgType type) {
  switch (type) {
    case MsgType::Request: return "request";
    case MsgType::Response: return "response";
    case MsgType::Fault: return "fault";
  }
  return "?";
}

std::size_t Message::encode_begin_body(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.varint(request_id);
  w.str(target);
  w.str(operation);
  w.str(session);
  w.varint(deadline_ms);
  // Biased by one so "unlimited" (-1) encodes as 0 in an unsigned varint.
  w.varint(static_cast<std::uint64_t>(hop_budget + 1));
  w.varint(trace_id);
  w.varint(parent_span_id);
  // The body length is not known yet: reserve a padded slot.  Decoders
  // accept non-minimal varints, so a patched slot reads back identically.
  return w.varint_slot();
}

void Message::encode_end_body(ByteWriter& w, std::size_t slot) const {
  w.patch_varint(slot, w.size() - slot - ByteWriter::kVarintSlotWidth);
  w.str(fault);
}

Bytes Message::encode() const {
  ByteWriter w;
  std::size_t slot = encode_begin_body(w);
  w.raw(body);
  encode_end_body(w, slot);
  return w.take();
}

MessageView MessageView::decode(BytesView frame) {
  ByteReader r(frame);
  MessageView m;
  std::uint8_t t = r.u8();
  if (t > static_cast<std::uint8_t>(MsgType::Fault)) {
    throw WireError("invalid message type " + std::to_string(t));
  }
  m.type = static_cast<MsgType>(t);
  m.request_id = r.varint();
  m.target = r.str_view();
  m.operation = r.str_view();
  m.session = r.str_view();
  m.deadline_ms = r.varint();
  m.hop_budget = static_cast<std::int32_t>(r.varint()) - 1;
  m.trace_id = r.varint();
  m.parent_span_id = r.varint();
  std::uint64_t n = r.varint();
  m.body = r.view(n);
  m.fault = r.str_view();
  if (!r.at_end()) throw WireError("trailing bytes after message");
  return m;
}

Message MessageView::to_message() const {
  Message m;
  m.type = type;
  m.request_id = request_id;
  m.target = std::string(target);
  m.operation = std::string(operation);
  m.session = std::string(session);
  m.deadline_ms = deadline_ms;
  m.hop_budget = hop_budget;
  m.trace_id = trace_id;
  m.parent_span_id = parent_span_id;
  m.body = Bytes(body.begin(), body.end());
  m.fault = std::string(fault);
  return m;
}

Message Message::decode(const Bytes& frame) {
  return MessageView::decode(BytesView(frame.data(), frame.size())).to_message();
}

Message Message::request(std::uint64_t id, std::string target, std::string op,
                         Bytes body) {
  Message m;
  m.type = MsgType::Request;
  m.request_id = id;
  m.target = std::move(target);
  m.operation = std::move(op);
  m.body = std::move(body);
  return m;
}

Message Message::response(std::uint64_t id, Bytes body) {
  Message m;
  m.type = MsgType::Response;
  m.request_id = id;
  m.body = std::move(body);
  return m;
}

Message Message::make_fault(std::uint64_t id, std::string text) {
  Message m;
  m.type = MsgType::Fault;
  m.request_id = id;
  m.fault = std::move(text);
  return m;
}

}  // namespace cosm::rpc
