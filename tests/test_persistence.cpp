#include "naming/persistence.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "sidl/parser.h"

namespace cosm::naming {
namespace {

namespace fs = std::filesystem;

sidl::SidPtr sid(const std::string& text) {
  return std::make_shared<sidl::Sid>(sidl::parse_sid(text));
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir = fs::temp_directory_path() /
          ("cosm-persist-" + std::to_string(::getpid()) + "-" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir);
  }
  void TearDown() override { fs::remove_all(dir); }

  fs::path dir;
};

TEST_F(PersistenceTest, SaveLoadRoundTrip) {
  InterfaceRepository repo;
  repo.put("svc-1", sid("module Alpha { interface I { void A(); }; };"));
  repo.put("svc-2", sid(R"(
    module Beta {
      typedef enum { X, Y } E_t;
      interface I { E_t B([in] string s); };
      module COSM_FSM { states { S }; initial S; };
      module Vendor { const long V = 9; };
    };
  )"));

  EXPECT_EQ(save_repository(repo, dir), 2u);

  InterfaceRepository loaded;
  EXPECT_EQ(load_repository(loaded, dir), 2u);
  EXPECT_EQ(*loaded.get("svc-1"), *repo.get("svc-1"));
  EXPECT_EQ(*loaded.get("svc-2"), *repo.get("svc-2"));
  // Unknown extensions survive the disk round trip too.
  EXPECT_EQ(loaded.get("svc-2")->unknown_extensions.size(), 1u);
}

TEST_F(PersistenceTest, SavesLatestVersionOnly) {
  InterfaceRepository repo;
  repo.put("svc", sid("module V1 { interface I { void Op(); }; };"));
  repo.put("svc", sid("module V2 { interface I { void Op(); void Op2(); }; };"));
  save_repository(repo, dir);

  InterfaceRepository loaded;
  load_repository(loaded, dir);
  EXPECT_EQ(loaded.get("svc")->name, "V2");
  EXPECT_EQ(loaded.history("svc").size(), 1u);
}

TEST_F(PersistenceTest, ServiceIdsWithSeparatorsEncode) {
  InterfaceRepository repo;
  repo.put("market/rental svc#1", sid("module M { interface I { void Op(); }; };"));
  save_repository(repo, dir);
  InterfaceRepository loaded;
  load_repository(loaded, dir);
  EXPECT_TRUE(loaded.has("market/rental svc#1"));
}

TEST_F(PersistenceTest, CorruptFileSkippedAndReported) {
  InterfaceRepository repo;
  repo.put("good", sid("module G { interface I { void Op(); }; };"));
  save_repository(repo, dir);
  {
    std::ofstream bad(dir / "broken.sidl");
    bad << "module Broken {";
  }
  InterfaceRepository loaded;
  std::vector<std::string> errors;
  EXPECT_EQ(load_repository(loaded, dir, &errors), 1u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("broken.sidl"), std::string::npos);
  EXPECT_TRUE(loaded.has("good"));
}

TEST_F(PersistenceTest, NonSidlFilesIgnored) {
  fs::create_directories(dir);
  std::ofstream(dir / "README.txt") << "not a sid";
  InterfaceRepository loaded;
  EXPECT_EQ(load_repository(loaded, dir), 0u);
}

TEST_F(PersistenceTest, MissingDirectoryThrows) {
  InterfaceRepository repo;
  EXPECT_THROW(load_repository(repo, dir / "nope"), Error);
}

TEST(ServiceIdEncoding, RoundTripsAwkwardIds) {
  for (const char* id : {"plain", "with/slash", "with space", "a%b", "ü.umlaut",
                         "trailing.", "-dash_underscore-"}) {
    EXPECT_EQ(decode_service_id(encode_service_id(id)), id) << id;
  }
  // Encoded form contains no path separators.
  EXPECT_EQ(encode_service_id("a/b\\c").find('/'), std::string::npos);
  EXPECT_EQ(encode_service_id("a/b\\c").find('\\'), std::string::npos);
}

}  // namespace
}  // namespace cosm::naming
