#include "trader/attributes.h"

#include "common/error.h"

namespace cosm::trader {

wire::Value attrs_to_value(const AttrMap& attrs) {
  std::vector<wire::Value> items;
  items.reserve(attrs.size());
  for (const auto& [name, value] : attrs) {
    items.push_back(wire::Value::structure(
        "Attribute_t", {{"name", wire::Value::string(name)}, {"value", value}}));
  }
  return wire::Value::sequence(std::move(items));
}

AttrMap attrs_from_value(const wire::Value& value) {
  AttrMap attrs;
  for (const wire::Value& item : value.elements()) {
    attrs[item.at("name").as_string()] = item.at("value");
  }
  return attrs;
}

}  // namespace cosm::trader
