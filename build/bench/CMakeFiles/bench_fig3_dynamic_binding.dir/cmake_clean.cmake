file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_dynamic_binding.dir/bench_fig3_dynamic_binding.cpp.o"
  "CMakeFiles/bench_fig3_dynamic_binding.dir/bench_fig3_dynamic_binding.cpp.o.d"
  "bench_fig3_dynamic_binding"
  "bench_fig3_dynamic_binding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_dynamic_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
