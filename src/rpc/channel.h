// Client-side RPC channel.
//
// A channel binds to one service reference and carries calls.  It owns a
// session id: the server keys per-client FSM communication state on it, so
// one channel == one communication relationship in the paper's sense.
//
// Two call flavours:
//   * untyped — arguments encoded as-is; validation happens at the server.
//     This is what a pre-COSM client would do after hand-reading a service's
//     documentation.
//   * typed   — an OperationDesc (usually from a transferred SID) validates
//     arguments before encoding and the result after decoding.  This is the
//     path the generic client uses.
//
// Both flavours have an async form returning a PendingReply; the blocking
// forms are implemented on top of it.  Every outbound request inherits the
// calling thread's CallContext (see call_context.h): the effective deadline
// is the tighter of the inherited one and this channel's timeout, and its
// remaining budget is stamped into the request so the server — and anything
// the server calls — sees the same shrinking deadline.  A channel is safe
// to share across threads.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/trace.h"
#include "rpc/call_context.h"
#include "rpc/network.h"
#include "rpc/retry.h"
#include "sidl/service_ref.h"
#include "sidl/sid.h"
#include "wire/plan.h"
#include "wire/value.h"

namespace cosm::rpc {

struct ChannelOptions {
  std::chrono::milliseconds timeout{5000};
  /// Request-level retry: on a transport failure or attempt timeout the
  /// whole request is reissued with the *same* request id and session, so an
  /// at-most-once server answers duplicates from its replay cache.
  /// Disabled by default (max_attempts == 1).
  RetryPolicy retry{};
  /// Declares this channel's requests safe to reissue — either the
  /// operations are idempotent or the server runs at-most-once dispatch.
  /// With `retry.only_idempotent` (the default) retries only engage when
  /// this is set.
  bool idempotent = false;
};

/// An in-flight channel call.  get() blocks for the reply frame, decodes it
/// and throws RemoteFault / RpcError exactly like the blocking call paths.
///
/// When the owning channel has a retry policy, get() drives it: a transport
/// failure or per-attempt timeout reissues the request (same request id /
/// session) after a jittered backoff, while the overall deadline holds.
/// Remote faults are never retried — the server answered.
class PendingReply {
 public:
  /// Reissues the request and returns the fresh in-flight call.  When
  /// tracing is enabled the reissuer mints a fresh attempt span (same trace
  /// id, new span id, restamped into the wire header) into `attempt_span`;
  /// otherwise it clears it.
  using ReissueFn = std::function<PendingCallPtr(obs::Span& attempt_span)>;

  PendingReply(PendingCallPtr pending, CallContext ctx,
               sidl::TypePtr result_type);
  PendingReply(PendingCallPtr pending, CallContext ctx,
               sidl::TypePtr result_type, ReissueFn reissue, RetryPolicy retry,
               bool idempotent, std::uint64_t jitter_seed);

  /// Decode the result through a compiled plan instead of the interpreted
  /// decode+validate pair (set by the typed call path when a plan is
  /// available; the plan is shared with the cache and outlives the reply).
  void attach_result_plan(std::shared_ptr<const wire::OperationPlan> plan) {
    result_plan_ = std::move(plan);
  }

  /// Blocks until reply or deadline; decodes the result (validating it when
  /// the call was typed).  Throws RemoteFault on a fault reply, RpcError on
  /// timeout or transport failure (after exhausting any retry budget).
  wire::Value get();

  /// Attempts made so far (instrumentation; 1 on an un-retried success).
  int attempts() const noexcept { return attempts_; }

  /// Attach the client-side attempt span and latency-start for this call
  /// (set by RpcChannel::issue when observability is enabled).
  void attach_obs(obs::Span span, std::chrono::steady_clock::time_point started) {
    span_ = std::move(span);
    started_ = started;
  }

 private:
  Bytes get_frame();

  PendingCallPtr pending_;
  CallContext ctx_;
  sidl::TypePtr result_type_;  // nullptr for untyped calls
  std::shared_ptr<const wire::OperationPlan> result_plan_;  // may be null
  ReissueFn reissue_;          // null when retries are disabled
  RetryPolicy retry_;
  bool idempotent_ = false;
  Rng rng_{0};
  int attempts_ = 1;
  obs::Span span_{};  // current attempt's client span (invalid = untraced)
  std::chrono::steady_clock::time_point started_{};  // set iff metrics on
};

using PendingReplyPtr = std::shared_ptr<PendingReply>;

class RpcChannel {
 public:
  RpcChannel(Network& network, sidl::ServiceRef ref, ChannelOptions options = {});

  /// Untyped call.
  wire::Value call(const std::string& operation, std::vector<wire::Value> args);

  /// Typed call: validates arguments against `op` before sending and the
  /// result against op.result after receiving.
  wire::Value call(const sidl::OperationDesc& op, std::vector<wire::Value> args);

  /// Async forms of the two call flavours: the request is on the wire when
  /// they return; collect the result with PendingReply::get().
  PendingReplyPtr call_async(const std::string& operation,
                             std::vector<wire::Value> args);
  PendingReplyPtr call_async(const sidl::OperationDesc& op,
                             std::vector<wire::Value> args);

  /// Fetch the service's SID via the built-in "_get_sid" operation — the
  /// SID-transfer arrow of Fig. 3.  The channel remembers the SID: typed
  /// calls whose OperationDesc belongs to it go through cached compiled
  /// marshal plans.
  sidl::SidPtr fetch_sid();

  const sidl::ServiceRef& ref() const noexcept { return ref_; }
  const std::string& session() const noexcept { return session_; }

  /// Calls issued on this channel (instrumentation).
  std::uint64_t calls_made() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  /// Core issue path.  `write_body` marshals the argument frame directly
  /// into the request arena (between the message header and the trailing
  /// fault field), so client requests are built in a single buffer.
  PendingReplyPtr issue(const std::string& operation,
                        const std::function<void(ByteWriter&)>& write_body,
                        sidl::TypePtr result_type,
                        std::shared_ptr<const wire::OperationPlan> plan);

  /// The cached plan for `op` when it belongs to this channel's fetched SID
  /// (pointer identity — the test that makes (Sid, name) a sound cache
  /// key); nullptr otherwise.
  std::shared_ptr<const wire::OperationPlan> plan_for(const sidl::OperationDesc& op);

  Network& network_;
  sidl::ServiceRef ref_;
  ChannelOptions options_;
  std::string session_;
  std::mutex sid_mutex_;
  sidl::SidPtr sid_;  // set by fetch_sid()
  std::atomic<std::uint64_t> next_request_{1};
  std::atomic<std::uint64_t> calls_{0};
};

}  // namespace cosm::rpc
