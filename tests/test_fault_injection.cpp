#include "rpc/fault_injection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "common/error.h"
#include "rpc/channel.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "sidl/parser.h"
#include "trader/facade.h"
#include "trader/trader.h"

namespace cosm::rpc {
namespace {

using std::chrono::milliseconds;
using wire::Value;

TEST(FaultInjection, QuietProfilePassesThrough) {
  InProcNetwork inner;
  FaultInjectingNetwork net(inner, 1);
  auto ep = net.listen("host", [](const Bytes& b) { return b; });
  Bytes payload = {1, 2, 3};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(net.call(ep, payload, milliseconds(1000)), payload);
  }
  EXPECT_EQ(net.calls_total(), 50u);
  EXPECT_EQ(net.injected_failures(), 0u);
  EXPECT_EQ(net.injected_drops(), 0u);
}

TEST(FaultInjection, InjectedFailureSurfacesAsRpcError) {
  InProcNetwork inner;
  FaultProfile profile;
  profile.fail = 1.0;
  FaultInjectingNetwork net(inner, 1, profile);
  auto ep = net.listen("host", [](const Bytes& b) { return b; });
  try {
    net.call(ep, {1}, milliseconds(200));
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
  }
  EXPECT_EQ(net.injected_failures(), 1u);
}

TEST(FaultInjection, DroppedCallOnlyTimesOut) {
  InProcNetwork inner;
  FaultProfile profile;
  profile.drop = 1.0;
  FaultInjectingNetwork net(inner, 1, profile);
  std::atomic<int> served{0};
  auto ep = net.listen("host", [&served](const Bytes& b) {
    ++served;
    return b;
  });
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(net.call(ep, {1}, milliseconds(100)), RpcError);
  auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(waited, milliseconds(90));  // the full deadline was consumed
  EXPECT_EQ(served.load(), 0);          // the request never arrived
  EXPECT_EQ(net.injected_drops(), 1u);
}

TEST(FaultInjection, DuplicateDeliversFrameTwice) {
  InProcNetwork inner;
  FaultProfile profile;
  profile.duplicate = 1.0;
  FaultInjectingNetwork net(inner, 1, profile);
  std::atomic<int> served{0};
  auto ep = net.listen("host", [&served](const Bytes& b) {
    ++served;
    return b;
  });
  EXPECT_EQ(net.call(ep, {5}, milliseconds(1000)), Bytes{5});
  // The shadow delivery is asynchronous; give it a moment.
  for (int i = 0; i < 50 && served.load() < 2; ++i) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_EQ(served.load(), 2);
  EXPECT_EQ(net.injected_duplicates(), 1u);
}

TEST(FaultInjection, AtMostOnceServerAbsorbsDuplicates) {
  InProcNetwork inner;
  FaultProfile profile;
  profile.duplicate = 1.0;
  FaultInjectingNetwork net(inner, 1, profile);

  ServerOptions options;
  options.at_most_once = true;
  RpcServer server(net, "host", options);
  std::atomic<int> executions{0};
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid("module M { interface I { long Bump(); }; };"));
  auto object = std::make_shared<ServiceObject>(sid);
  object->on("Bump", [&executions](const std::vector<Value>&) {
    return Value::integer(++executions);
  });
  auto ref = server.add(object);

  RpcChannel channel(net, ref);
  channel.call("Bump", {});
  std::this_thread::sleep_for(milliseconds(100));  // let shadows land
  // Every frame was delivered twice, but the replay cache answered the
  // duplicates without re-running the handler.
  EXPECT_EQ(executions.load(), 1);
  EXPECT_GE(net.injected_duplicates(), 1u);
}

TEST(FaultInjection, FailNextIsDeterministic) {
  InProcNetwork inner;
  FaultInjectingNetwork net(inner, 1);  // quiet profile
  auto ep = net.listen("host", [](const Bytes& b) { return b; });
  net.fail_next(2);
  EXPECT_THROW(net.call(ep, {1}, milliseconds(200)), RpcError);
  EXPECT_THROW(net.call(ep, {1}, milliseconds(200)), RpcError);
  EXPECT_EQ(net.call(ep, {1}, milliseconds(200)), Bytes{1});
  EXPECT_EQ(net.injected_failures(), 2u);
}

TEST(FaultInjection, SameSeedSameSchedule) {
  FaultProfile profile;
  profile.fail = 0.3;
  auto schedule = [&](std::uint64_t seed) {
    InProcNetwork inner;
    FaultInjectingNetwork net(inner, seed, profile);
    auto ep = net.listen("host", [](const Bytes& b) { return b; });
    std::vector<bool> failed;
    for (int i = 0; i < 40; ++i) {
      try {
        net.call(ep, {1}, milliseconds(200));
        failed.push_back(false);
      } catch (const RpcError&) {
        failed.push_back(true);
      }
    }
    return failed;
  };
  EXPECT_EQ(schedule(99), schedule(99));
  EXPECT_NE(schedule(99), schedule(100));  // and the seed matters
}

// --- channel-level retry driven by injected faults ---

class RetryOverFaultsTest : public ::testing::Test {
 protected:
  RetryOverFaultsTest() : net(inner, 7), server(net, "host", at_most_once()) {
    auto sid = std::make_shared<sidl::Sid>(
        sidl::parse_sid("module M { interface I { long Bump(); }; };"));
    auto object = std::make_shared<ServiceObject>(sid);
    object->on("Bump", [this](const std::vector<Value>&) {
      return Value::integer(++executions);
    });
    ref = server.add(object);
  }

  static ServerOptions at_most_once() {
    ServerOptions o;
    o.at_most_once = true;
    return o;
  }

  InProcNetwork inner;
  FaultInjectingNetwork net;
  RpcServer server;
  sidl::ServiceRef ref;
  std::atomic<int> executions{0};
};

TEST_F(RetryOverFaultsTest, ChannelRetryRecoversFromTransientFailures) {
  ChannelOptions options;
  options.retry = RetryPolicy::standard();
  options.idempotent = true;
  RpcChannel channel(net, ref, options);

  net.fail_next(2);  // first two attempts die, the third lands
  PendingReplyPtr reply = channel.call_async("Bump", {});
  EXPECT_EQ(reply->get().as_int(), 1);
  EXPECT_EQ(reply->attempts(), 3);
  EXPECT_EQ(executions.load(), 1);
}

TEST_F(RetryOverFaultsTest, NonIdempotentChannelFailsFast) {
  ChannelOptions options;
  options.retry = RetryPolicy::standard();  // only_idempotent = true
  options.idempotent = false;
  RpcChannel channel(net, ref, options);

  net.fail_next(1);
  PendingReplyPtr reply = channel.call_async("Bump", {});
  EXPECT_THROW(reply->get(), RpcError);
  EXPECT_EQ(reply->attempts(), 1);  // no reissue without the idempotent mark
  EXPECT_EQ(executions.load(), 0);
}

TEST_F(RetryOverFaultsTest, AttemptTimeoutRescuesDroppedRequests) {
  ChannelOptions options;
  options.timeout = milliseconds(2000);
  options.retry = RetryPolicy::standard();
  options.retry.attempt_timeout = milliseconds(60);
  options.idempotent = true;
  RpcChannel channel(net, ref, options);

  FaultProfile drop_once;
  drop_once.drop = 1.0;
  net.set_default_profile(drop_once);
  PendingReplyPtr reply = channel.call_async("Bump", {});
  net.set_default_profile({});  // attempt 2 onward is clean
  // Attempt 1 is dropped and abandoned after ~60 ms instead of burning the
  // whole 2 s deadline; the reissue succeeds well inside it.
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(reply->get().as_int(), 1);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, milliseconds(1500));
  EXPECT_GE(reply->attempts(), 2);
}

// --- federation over a faulty network (the ISSUE acceptance scenario) ---

trader::ServiceType rental_type() {
  trader::ServiceType t;
  t.name = "CarRentalService";
  t.attributes = {{"ChargePerDay", sidl::TypeDesc::float_(), true}};
  return t;
}

TEST(FaultInjectionFederation, FederatedImportDegradesInsteadOfThrowing) {
  InProcNetwork inner;
  FaultInjectingNetwork net(inner, 1994);

  // Three remote traders behind at-most-once servers on the faulty net.
  ServerOptions options;
  options.at_most_once = true;
  std::vector<std::unique_ptr<trader::Trader>> remotes;
  std::vector<std::unique_ptr<RpcServer>> servers;
  trader::Trader root("root");
  root.types().add(rental_type());
  RetryPolicy retry = RetryPolicy::standard();
  retry.attempt_timeout = milliseconds(60);
  for (int i = 0; i < 3; ++i) {
    auto t = std::make_unique<trader::Trader>("remote" + std::to_string(i));
    t->types().add(rental_type());
    t->export_offer("CarRentalService",
                    {"offer" + std::to_string(i), "inproc://x", "CarRentalService"},
                    {{"ChargePerDay", Value::real(10.0 + i)}});
    auto server = std::make_unique<RpcServer>(net, "trader" + std::to_string(i),
                                              options);
    auto ref = server->add(trader::make_trader_service(*t));
    root.link("link" + std::to_string(i),
              std::make_shared<trader::RemoteTraderGateway>(net, ref, retry));
    remotes.push_back(std::move(t));
    servers.push_back(std::move(server));
  }

  // 5% drop + 5% delay on every link, per the acceptance criterion.
  FaultProfile faults;
  faults.drop = 0.05;
  faults.delay = 0.05;
  faults.delay_for = milliseconds(5);
  net.set_default_profile(faults);

  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.hop_limit = 1;
  std::size_t full_sweeps = 0;
  for (int i = 0; i < 25; ++i) {
    // The whole point: a faulty link degrades the result set, it never
    // throws out of the import.
    trader::ImportResult result;
    ASSERT_NO_THROW(result = root.import_ex(request));
    ASSERT_EQ(result.links.size(), 3u);
    if (result.offers.size() == 3u) ++full_sweeps;
  }
  // Retries recover nearly everything at this fault rate.
  EXPECT_GE(full_sweeps, 20u);
}

TEST(FaultInjectionFederation, DeadLinkIsTaggedThenQuarantined) {
  InProcNetwork inner;
  FaultInjectingNetwork net(inner, 7);
  trader::Trader root("root");
  root.types().add(rental_type());
  trader::FederationOptions fed;
  fed.quarantine_threshold = 2;
  fed.quarantine_ttl = milliseconds(60000);  // effectively forever here
  root.set_federation_options(fed);

  auto healthy = std::make_unique<trader::Trader>("healthy");
  healthy->types().add(rental_type());
  healthy->export_offer("CarRentalService",
                        {"good", "inproc://x", "CarRentalService"},
                        {{"ChargePerDay", Value::real(5.0)}});
  RpcServer healthy_server(net, "healthy");
  auto healthy_ref = healthy_server.add(trader::make_trader_service(*healthy));
  root.link("healthy",
            std::make_shared<trader::RemoteTraderGateway>(net, healthy_ref));

  auto dead = std::make_unique<trader::Trader>("dead");
  dead->types().add(rental_type());
  RpcServer dead_server(net, "dead");
  auto dead_ref = dead_server.add(trader::make_trader_service(*dead));
  root.link("dead",
            std::make_shared<trader::RemoteTraderGateway>(net, dead_ref));
  FaultProfile always_fail;
  always_fail.fail = 1.0;
  net.set_profile(dead_ref.endpoint, always_fail);

  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.hop_limit = 1;

  auto outcome_for = [](const trader::ImportResult& r, const std::string& link) {
    for (const auto& o : r.links) {
      if (o.link == link) return o;
    }
    return trader::LinkOutcome{};
  };

  // Sweeps 1..2: the dead link fails but the healthy offer still arrives.
  for (int i = 0; i < 2; ++i) {
    trader::ImportResult r = root.import_ex(request);
    EXPECT_EQ(r.offers.size(), 1u);
    EXPECT_TRUE(r.degraded());
    EXPECT_EQ(outcome_for(r, "dead").status,
              trader::LinkOutcome::Status::Failed);
    EXPECT_FALSE(outcome_for(r, "dead").error.empty());
    EXPECT_TRUE(outcome_for(r, "healthy").ok());
  }
  // Threshold reached: the link is now quarantined and not even queried.
  trader::ImportResult r = root.import_ex(request);
  EXPECT_EQ(outcome_for(r, "dead").status,
            trader::LinkOutcome::Status::Quarantined);
  EXPECT_EQ(r.offers.size(), 1u);
  EXPECT_TRUE(root.link_health("dead").quarantined);
  EXPECT_EQ(root.links_quarantined_total(), 1u);
}

}  // namespace
}  // namespace cosm::rpc
