#include "wire/static_codec.h"

#include "common/error.h"

namespace cosm::wire::static_stub {

void encode(ByteWriter& w, const SelectCarRequest& m) {
  w.u8(static_cast<std::uint8_t>(m.model));
  w.str(m.booking_date);
  w.svarint(m.days);
}

void encode(ByteWriter& w, const SelectCarReply& m) {
  w.u8(m.available ? 1 : 0);
  w.f64(m.total_charge);
  w.str(m.offer_code);
}

void encode(ByteWriter& w, const BookCarRequest& m) {
  w.str(m.offer_code);
  w.str(m.customer);
  w.varint(m.extras.size());
  for (const auto& e : m.extras) w.str(e);
}

void encode(ByteWriter& w, const BookCarReply& m) {
  w.u8(m.confirmed ? 1 : 0);
  w.svarint(m.booking_id);
}

SelectCarRequest decode_select_car_request(ByteReader& r) {
  SelectCarRequest m;
  std::uint8_t model = r.u8();
  if (model > 2) throw WireError("invalid CarModel discriminant");
  m.model = static_cast<CarModel>(model);
  m.booking_date = r.str();
  m.days = r.svarint();
  return m;
}

SelectCarReply decode_select_car_reply(ByteReader& r) {
  SelectCarReply m;
  m.available = r.u8() != 0;
  m.total_charge = r.f64();
  m.offer_code = r.str();
  return m;
}

BookCarRequest decode_book_car_request(ByteReader& r) {
  BookCarRequest m;
  m.offer_code = r.str();
  m.customer = r.str();
  std::uint64_t n = r.varint();
  m.extras.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) m.extras.push_back(r.str());
  return m;
}

BookCarReply decode_book_car_reply(ByteReader& r) {
  BookCarReply m;
  m.confirmed = r.u8() != 0;
  m.booking_id = r.svarint();
  return m;
}

}  // namespace cosm::wire::static_stub
