// RPC facade for the activity manager: remote clients begin, enlist,
// complete and abort activities through a SIDL-described interface, like
// every other COSM component.

#pragma once

#include "rpc/activity.h"
#include "rpc/service_object.h"

namespace cosm::rpc {

/// SIDL text of the activity manager's interface.
const std::string& activity_manager_sidl();

/// Wrap an ActivityManager (which must outlive the returned object).
ServiceObjectPtr make_activity_manager_service(ActivityManager& manager);

}  // namespace cosm::rpc
