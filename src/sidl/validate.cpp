#include "sidl/validate.h"

#include <set>

#include "common/error.h"

namespace cosm::sidl {

std::vector<std::string> validate_sid(const Sid& sid) {
  std::vector<std::string> issues;
  auto issue = [&](std::string msg) { issues.push_back(std::move(msg)); };

  if (sid.name.empty()) issue("SID has no module name");

  // Operation-level rules.
  for (const auto& op : sid.operations) {
    std::set<std::string> param_names;
    for (const auto& p : op.params) {
      if (!param_names.insert(p.name).second) {
        issue("operation '" + op.name + "' has duplicate parameter '" + p.name + "'");
      }
    }
  }

  // FSM rules.
  if (sid.fsm) {
    const FsmSpec& fsm = *sid.fsm;
    if (fsm.states.empty()) {
      issue("FSM declares no states");
    }
    std::set<std::string> states(fsm.states.begin(), fsm.states.end());
    if (states.size() != fsm.states.size()) {
      issue("FSM declares duplicate states");
    }
    if (fsm.initial.empty()) {
      issue("FSM has no initial state");
    } else if (!states.count(fsm.initial)) {
      issue("FSM initial state '" + fsm.initial + "' is not declared");
    }
    std::set<std::pair<std::string, std::string>> seen;
    for (const auto& tr : fsm.transitions) {
      if (!states.count(tr.from)) {
        issue("FSM transition source state '" + tr.from + "' is not declared");
      }
      if (!states.count(tr.to)) {
        issue("FSM transition target state '" + tr.to + "' is not declared");
      }
      if (sid.find_operation(tr.operation) == nullptr) {
        issue("FSM transition operation '" + tr.operation +
              "' is not in the service signature");
      }
      if (!seen.insert({tr.from, tr.operation}).second) {
        issue("FSM has conflicting transitions for (" + tr.from + ", " +
              tr.operation + ") — the machine must be deterministic");
      }
    }
  }

  // Trader-export rules.
  if (sid.trader_export) {
    const TraderExport& te = *sid.trader_export;
    if (te.service_type.empty()) {
      issue("trader export has empty service type (TOD)");
    }
    std::set<std::string> attrs;
    for (const auto& [name, lit] : te.attributes) {
      (void)lit;
      if (!attrs.insert(name).second) {
        issue("trader export has duplicate attribute '" + name + "'");
      }
    }
  }

  // Annotation targets should exist: operation, parameter, type, state or
  // the service itself.
  for (const auto& [element, text] : sid.annotations) {
    (void)text;
    bool known = element == sid.name || sid.find_operation(element) != nullptr ||
                 sid.find_type(element) != nullptr;
    if (!known && sid.fsm) {
      known = sid.fsm->has_state(element);
    }
    if (!known) {
      for (const auto& op : sid.operations) {
        for (const auto& p : op.params) {
          if (p.name == element) known = true;
        }
      }
    }
    if (!known) {
      issue("annotation target '" + element + "' does not name any SID element");
    }
  }

  return issues;
}

void ensure_valid(const Sid& sid) {
  auto issues = validate_sid(sid);
  if (issues.empty()) return;
  std::string msg = "SID '" + sid.name + "' is not well-formed:";
  for (const auto& i : issues) msg += "\n  - " + i;
  throw TypeError(msg);
}

}  // namespace cosm::sidl
