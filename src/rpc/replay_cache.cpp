#include "rpc/replay_cache.h"

#include "common/error.h"
#include "obs/metrics.h"

namespace cosm::rpc {

ReplayCache::ReplayCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw ContractError("ReplayCache capacity must be > 0");
}

bool ReplayCache::lookup(const Key& key, Bytes* frame_out) {
  bool hit;
  {
    std::lock_guard lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      hit = false;
    } else {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency, O(1)
      ++hits_;
      if (frame_out != nullptr) *frame_out = it->second->frame;
      hit = true;
    }
  }
  auto& reg = obs::metrics();
  if (reg.enabled()) {
    static obs::Counter& hits = reg.counter("replay.hits");
    static obs::Counter& misses = reg.counter("replay.misses");
    (hit ? hits : misses).add();
  }
  return hit;
}

void ReplayCache::insert(const Key& key, Bytes frame) {
  bool duplicate = false;
  bool evicted = false;
  {
    std::lock_guard lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      // Keep the original response, but record the save: a duplicate that
      // raced past the pre-dispatch lookup was still answered exactly once.
      ++duplicates_;
      duplicate = true;
    } else {
      lru_.push_front(Entry{key, std::move(frame)});
      index_[key] = lru_.begin();
      if (index_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++evictions_;
        evicted = true;
      }
    }
  }
  auto& reg = obs::metrics();
  if (reg.enabled()) {
    if (duplicate) {
      static obs::Counter& dups = reg.counter("replay.duplicates_suppressed");
      dups.add();
    } else {
      static obs::Counter& inserts = reg.counter("replay.inserts");
      inserts.add();
    }
    if (evicted) {
      static obs::Counter& evictions = reg.counter("replay.evictions");
      evictions.add();
    }
  }
}

std::size_t ReplayCache::size() const {
  std::lock_guard lock(mutex_);
  return index_.size();
}

}  // namespace cosm::rpc
