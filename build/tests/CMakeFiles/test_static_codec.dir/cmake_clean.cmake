file(REMOVE_RECURSE
  "CMakeFiles/test_static_codec.dir/test_static_codec.cpp.o"
  "CMakeFiles/test_static_codec.dir/test_static_codec.cpp.o.d"
  "test_static_codec"
  "test_static_codec.pdb"
  "test_static_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
