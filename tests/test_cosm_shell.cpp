// Scripted end-to-end tests for the cosm_shell interactive generic client.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace {

namespace fs = std::filesystem;

/// Run the shell with `script` on stdin; returns captured stdout+stderr.
std::string run_shell(const std::string& script, int* exit_code = nullptr) {
  fs::path dir = fs::temp_directory_path();
  fs::path in_file = dir / ("cosm-shell-in-" + std::to_string(::getpid()));
  fs::path out_file = dir / ("cosm-shell-out-" + std::to_string(::getpid()));
  std::ofstream(in_file) << script;
  std::string cmd = std::string(COSM_SHELL_PATH) + " < " + in_file.string() +
                    " > " + out_file.string() + " 2>&1";
  int status = std::system(cmd.c_str());
  if (exit_code) *exit_code = WEXITSTATUS(status);
  std::ifstream in(out_file);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  fs::remove(in_file);
  fs::remove(out_file);
  return buffer.str();
}

TEST(CosmShell, BrowsesTheDemoMarket) {
  int rc = -1;
  std::string out = run_shell("ls\nquit\n", &rc);
  EXPECT_EQ(rc, 0);
  for (const char* entry : {"HanseRentACar", "WeatherOracle", "TickerService",
                            "ImageArchive", "ImageConverter"}) {
    EXPECT_NE(out.find(entry), std::string::npos) << entry;
  }
}

TEST(CosmShell, FullBookingFlowThroughForms) {
  std::string out = run_shell(
      "bind HanseRentACar\n"
      "op SelectCar\n"
      "set selection.model VW_Golf\n"
      "set selection.booking_date 1994-06-21\n"
      "set selection.days 3\n"
      "invoke\n"
      "state\n"
      "quit\n");
  EXPECT_NE(out.find("bound to HanseRentACar"), std::string::npos);
  EXPECT_NE(out.find("available: true"), std::string::npos);
  EXPECT_NE(out.find("total_charge: 195"), std::string::npos);  // 3 * 65 DEM
  EXPECT_NE(out.find("state: SELECTED"), std::string::npos);
}

TEST(CosmShell, FsmViolationReportedNotFatal) {
  std::string out = run_shell(
      "bind TickerService\n"
      "state\n"
      "call GetQuote\n"  // wrong arity AND wrong state: rejected locally
      "quit\n");
  EXPECT_NE(out.find("state: LOGGED_OUT"), std::string::npos);
  EXPECT_NE(out.find("error:"), std::string::npos);
  EXPECT_NE(out.find("bye"), std::string::npos);  // shell survived
}

TEST(CosmShell, DeepSearchAndInfo) {
  std::string out = run_shell(
      "search forecast\n"
      "info WeatherOracle\n"
      "quit\n");
  EXPECT_NE(out.find("WeatherOracle"), std::string::npos);
  EXPECT_NE(out.find("GetForecast/2"), std::string::npos);
}

TEST(CosmShell, InvalidFieldValueRejectedLocally) {
  std::string out = run_shell(
      "bind HanseRentACar\n"
      "op SelectCar\n"
      "set selection.days many\n"
      "quit\n");
  EXPECT_NE(out.find("error:"), std::string::npos);
  EXPECT_NE(out.find("is not a valid long"), std::string::npos);
}

TEST(CosmShell, UnknownCommandAndMissingBindingGuarded) {
  std::string out = run_shell(
      "frobnicate\n"
      "state\n"
      "quit\n");
  EXPECT_NE(out.find("unknown command"), std::string::npos);
  EXPECT_NE(out.find("no binding"), std::string::npos);
}

}  // namespace
