#include "sidl/validate.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sidl/parser.h"

namespace cosm::sidl {
namespace {

Sid valid_sid() {
  return parse_sid(R"(
    module Svc {
      interface I { void Go(); void Stop(); };
      module COSM_FSM {
        states { IDLE, RUNNING };
        initial IDLE;
        transition IDLE Go RUNNING;
        transition RUNNING Stop IDLE;
      };
    };
  )");
}

TEST(Validate, ValidSidHasNoIssues) {
  EXPECT_TRUE(validate_sid(valid_sid()).empty());
  EXPECT_NO_THROW(ensure_valid(valid_sid()));
}

TEST(Validate, EmptyNameFlagged) {
  Sid sid = valid_sid();
  sid.name.clear();
  EXPECT_FALSE(validate_sid(sid).empty());
}

TEST(Validate, DuplicateParamNamesFlagged) {
  Sid sid = valid_sid();
  sid.operations[0].params = {{ParamDir::In, "x", TypeDesc::int_()},
                              {ParamDir::In, "x", TypeDesc::int_()}};
  auto issues = validate_sid(sid);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("duplicate parameter"), std::string::npos);
}

TEST(Validate, FsmUndeclaredInitial) {
  Sid sid = valid_sid();
  sid.fsm->initial = "GHOST";
  EXPECT_FALSE(validate_sid(sid).empty());
}

TEST(Validate, FsmUndeclaredTransitionStates) {
  Sid sid = valid_sid();
  sid.fsm->transitions.push_back({"GHOST", "Go", "IDLE"});
  EXPECT_FALSE(validate_sid(sid).empty());
  sid = valid_sid();
  sid.fsm->transitions.push_back({"IDLE", "Stop", "GHOST"});
  EXPECT_FALSE(validate_sid(sid).empty());
}

TEST(Validate, FsmUnknownOperation) {
  Sid sid = valid_sid();
  sid.fsm->transitions.push_back({"IDLE", "Teleport", "RUNNING"});
  auto issues = validate_sid(sid);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("Teleport"), std::string::npos);
}

TEST(Validate, FsmNondeterminismFlagged) {
  Sid sid = valid_sid();
  // Second transition for (IDLE, Go) — conflicting target.
  sid.fsm->transitions.push_back({"IDLE", "Go", "IDLE"});
  auto issues = validate_sid(sid);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("deterministic"), std::string::npos);
}

TEST(Validate, FsmDuplicateStatesFlagged) {
  Sid sid = valid_sid();
  sid.fsm->states.push_back("IDLE");
  EXPECT_FALSE(validate_sid(sid).empty());
}

TEST(Validate, FsmNoStatesFlagged) {
  Sid sid = valid_sid();
  sid.fsm->states.clear();
  sid.fsm->transitions.clear();
  sid.fsm->initial.clear();
  EXPECT_FALSE(validate_sid(sid).empty());
}

TEST(Validate, TraderExportDuplicateAttribute) {
  Sid sid = valid_sid();
  TraderExport te;
  te.service_type = "T";
  te.attributes.emplace_back("Price", Literal(1.0));
  te.attributes.emplace_back("Price", Literal(2.0));
  sid.trader_export = te;
  EXPECT_FALSE(validate_sid(sid).empty());
}

TEST(Validate, AnnotationTargetsChecked) {
  Sid sid = valid_sid();
  sid.annotations["Go"] = "fine";           // operation
  sid.annotations["Svc"] = "fine";          // service itself
  sid.annotations["IDLE"] = "fine";         // FSM state
  EXPECT_TRUE(validate_sid(sid).empty());
  sid.annotations["Bogus"] = "dangling";
  auto issues = validate_sid(sid);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("Bogus"), std::string::npos);
}

TEST(Validate, ParameterAnnotationAccepted) {
  Sid sid = parse_sid(R"(
    module M {
      interface I { void Op([in] long amount); };
      module COSM_Annotations { annotate amount "how much"; };
    };
  )");
  EXPECT_TRUE(validate_sid(sid).empty());
}

TEST(Validate, EnsureValidListsAllIssues) {
  Sid sid = valid_sid();
  sid.fsm->initial = "GHOST";
  sid.annotations["Bogus"] = "x";
  try {
    ensure_valid(sid);
    FAIL() << "expected TypeError";
  } catch (const TypeError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("GHOST"), std::string::npos);
    EXPECT_NE(msg.find("Bogus"), std::string::npos);
  }
}

}  // namespace
}  // namespace cosm::sidl
