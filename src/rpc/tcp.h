// TCP loopback network: real sockets, length-prefixed frames.
//
// Each listen() binds an ephemeral port on 127.0.0.1 and serves connections
// on dedicated threads; each connection carries a sequence of
// (u32-length-prefixed) request/response frames.  The client side caches one
// connection per endpoint.  This transport exists to demonstrate the COSM
// mechanisms over genuine socket I/O (ablation A2) — the in-proc bus is the
// default everywhere determinism matters.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rpc/network.h"

namespace cosm::rpc {

class TcpNetwork final : public Network {
 public:
  TcpNetwork() = default;
  ~TcpNetwork() override;

  std::string listen(const std::string& hint, FrameHandler handler) override;
  void unlisten(const std::string& endpoint) override;
  Bytes call(const std::string& endpoint, const Bytes& request,
             std::chrono::milliseconds timeout) override;
  std::string scheme() const override { return "tcp"; }

 private:
  struct Listener;

  void close_all();

  std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Listener>> listeners_;
  /// Cached client connections: endpoint -> connected fd.
  std::map<std::string, int> connections_;
};

}  // namespace cosm::rpc
